//! The database catalog: tables, secondary indices, views, foreign keys and
//! the logical clock.
//!
//! This is the "SQL Server" stand-in that the rest of the SkyServer
//! reproduction is built on.  It deliberately keeps the paper's
//! "no knobs" philosophy (§9.2): there is no tuning surface beyond creating
//! tables and indices; the query layer decides how to use them.

use crate::error::StorageError;
use crate::index::{BTreeIndex, IndexDef, IndexKey};
use crate::schema::TableSchema;
use crate::table::{RowId, Table, Timestamp};
use crate::table_stats::{self, TableStats};
use crate::value::Value;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A foreign-key constraint: `table(columns)` references
/// `ref_table(ref_columns)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForeignKey {
    /// Constraint name.
    pub name: String,
    /// The referencing table.
    pub table: String,
    /// The referencing columns, in order.
    pub columns: Vec<String>,
    /// The referenced table.
    pub ref_table: String,
    /// The referenced columns, in order.
    pub ref_columns: Vec<String>,
}

/// A view: a named SQL text the query layer expands at planning time
/// (the storage layer only stores and lists them).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewDef {
    /// View name.
    pub name: String,
    /// The defining SELECT text.
    pub sql: String,
    /// Human-readable description (shown in the schema browser).
    pub description: String,
}

/// Summary row for the schema browser / Table 1 reproduction.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TableSummary {
    /// Table name.
    pub name: String,
    /// Row count.
    pub rows: u64,
    /// Bytes of row data.
    pub data_bytes: u64,
    /// Bytes across all of the table's indexes.
    pub index_bytes: u64,
    /// Average row width in bytes.
    pub avg_row_bytes: u64,
    /// Number of columns.
    pub columns: usize,
    /// Number of indexes.
    pub indexes: usize,
    /// Human-readable description (shown in the schema browser).
    pub description: String,
}

/// The database: a named collection of tables, indices, views and
/// constraints, plus a monotonically increasing logical timestamp used for
/// load bookkeeping and UNDO.
///
/// `Database` is `Clone`, and the clone is a copy-on-write snapshot: table
/// segments and index trees sit behind [`Arc`]s, so cloning copies only
/// catalog metadata while sharing all bulk data.  Mutating either copy
/// afterwards detaches just the segments/indexes it touches.  This is the
/// primitive the release catalog ([`crate::release`]) builds on.
#[derive(Debug, Clone, Default)]
pub struct Database {
    name: String,
    tables: BTreeMap<String, Table>,
    /// Indices grouped by lowercase table name, shared copy-on-write
    /// between database snapshots.
    indexes: BTreeMap<String, Vec<Arc<BTreeIndex>>>,
    views: BTreeMap<String, ViewDef>,
    foreign_keys: Vec<ForeignKey>,
    /// Optimizer statistics per lowercase table name, collected by
    /// [`Database::analyze_table`].  A snapshot: single-row DML leaves them
    /// stale until the next analyze (batch ingest re-analyzes).
    stats: BTreeMap<String, TableStats>,
    clock: Timestamp,
    /// When false, FK checks are skipped (bulk load fast path); violations
    /// are detected later by [`Database::validate_foreign_keys`].
    enforce_foreign_keys: bool,
}

impl Database {
    /// Create an empty database.
    pub fn new(name: impl Into<String>) -> Self {
        Database {
            name: name.into(),
            enforce_foreign_keys: true,
            ..Default::default()
        }
    }

    /// Database name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Advance and return the logical clock.
    pub fn next_timestamp(&mut self) -> Timestamp {
        self.clock += 1;
        self.clock
    }

    /// Current value of the logical clock.
    pub fn current_timestamp(&self) -> Timestamp {
        self.clock
    }

    /// Enable or disable foreign-key enforcement on insert (bulk loads
    /// disable it and validate at the end of the load step).
    pub fn set_enforce_foreign_keys(&mut self, enforce: bool) {
        self.enforce_foreign_keys = enforce;
    }

    // ------------------------------------------------------------------
    // DDL
    // ------------------------------------------------------------------

    /// Create a table.  Fails if a table or view of that name exists.
    pub fn create_table(
        &mut self,
        name: impl Into<String>,
        schema: TableSchema,
    ) -> Result<(), StorageError> {
        let name = name.into();
        let key = name.to_ascii_lowercase();
        if self.tables.contains_key(&key) || self.views.contains_key(&key) {
            return Err(StorageError::DuplicateName(name));
        }
        self.tables.insert(key, Table::new(name, schema));
        Ok(())
    }

    /// Drop a table and its indices.  Temp tables use this when a session
    /// ends.
    pub fn drop_table(&mut self, name: &str) -> Result<(), StorageError> {
        let key = name.to_ascii_lowercase();
        if self.tables.remove(&key).is_none() {
            return Err(StorageError::UnknownTable(name.into()));
        }
        self.indexes.remove(&key);
        self.stats.remove(&key);
        Ok(())
    }

    /// Does a table with this name exist?
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(&name.to_ascii_lowercase())
    }

    /// Get a table by case-insensitive name.
    pub fn table(&self, name: &str) -> Result<&Table, StorageError> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| StorageError::UnknownTable(name.into()))
    }

    /// Mutable table access (used by the executor's DML operators; callers
    /// must maintain indices via [`Database::insert`] etc. instead whenever
    /// possible).
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table, StorageError> {
        self.tables
            .get_mut(&name.to_ascii_lowercase())
            .ok_or_else(|| StorageError::UnknownTable(name.into()))
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.values().map(|t| t.name().to_string()).collect()
    }

    /// Create a secondary index over an existing table, building it from the
    /// current contents.
    pub fn create_index(&mut self, def: IndexDef) -> Result<(), StorageError> {
        let table_key = def.table.to_ascii_lowercase();
        let table = self
            .tables
            .get(&table_key)
            .ok_or_else(|| StorageError::UnknownTable(def.table.clone()))?;
        let existing = self.indexes.entry(table_key).or_default();
        if existing
            .iter()
            .any(|i| i.def().name.eq_ignore_ascii_case(&def.name))
        {
            return Err(StorageError::DuplicateName(def.name));
        }
        let index = BTreeIndex::build(def, table)?;
        existing.push(Arc::new(index));
        Ok(())
    }

    /// All indices defined on a table.  Indexes are shared copy-on-write
    /// between database snapshots (see the type-level docs).
    pub fn indexes_for(&self, table: &str) -> &[Arc<BTreeIndex>] {
        self.indexes
            .get(&table.to_ascii_lowercase())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Find an index on `table` by name.
    pub fn index(&self, table: &str, name: &str) -> Option<&BTreeIndex> {
        self.indexes_for(table)
            .iter()
            .find(|i| i.def().name.eq_ignore_ascii_case(name))
            .map(Arc::as_ref)
    }

    /// Register a view (SQL text; expanded by the query layer).
    pub fn create_view(
        &mut self,
        name: impl Into<String>,
        sql: impl Into<String>,
        description: impl Into<String>,
    ) -> Result<(), StorageError> {
        let name = name.into();
        let key = name.to_ascii_lowercase();
        if self.tables.contains_key(&key) || self.views.contains_key(&key) {
            return Err(StorageError::DuplicateName(name));
        }
        self.views.insert(
            key,
            ViewDef {
                name,
                sql: sql.into(),
                description: description.into(),
            },
        );
        Ok(())
    }

    /// Look up a view by name.
    pub fn view(&self, name: &str) -> Option<&ViewDef> {
        self.views.get(&name.to_ascii_lowercase())
    }

    /// All views, sorted by name.
    pub fn views(&self) -> impl Iterator<Item = &ViewDef> {
        self.views.values()
    }

    /// Declare a foreign key.  Existing data is *not* validated here; call
    /// [`Database::validate_foreign_keys`] after a bulk load.
    pub fn add_foreign_key(&mut self, fk: ForeignKey) -> Result<(), StorageError> {
        if !self.has_table(&fk.table) {
            return Err(StorageError::UnknownTable(fk.table));
        }
        if !self.has_table(&fk.ref_table) {
            return Err(StorageError::UnknownTable(fk.ref_table));
        }
        self.foreign_keys.push(fk);
        Ok(())
    }

    /// All declared foreign keys.
    pub fn foreign_keys(&self) -> &[ForeignKey] {
        &self.foreign_keys
    }

    /// Foreign keys whose child side is `table`.
    pub fn foreign_keys_of(&self, table: &str) -> Vec<&ForeignKey> {
        self.foreign_keys
            .iter()
            .filter(|fk| fk.table.eq_ignore_ascii_case(table))
            .collect()
    }

    // ------------------------------------------------------------------
    // DML
    // ------------------------------------------------------------------

    /// Insert one row, maintaining all indices and (when enabled) checking
    /// foreign keys.  Returns the RowId.
    pub fn insert(&mut self, table: &str, row: Vec<Value>) -> Result<RowId, StorageError> {
        let ts = self.next_timestamp();
        self.insert_with_timestamp(table, row, ts)
    }

    /// Insert with an explicit timestamp (load steps stamp whole batches
    /// with their step window).
    pub fn insert_with_timestamp(
        &mut self,
        table: &str,
        row: Vec<Value>,
        ts: Timestamp,
    ) -> Result<RowId, StorageError> {
        if self.enforce_foreign_keys {
            self.check_foreign_keys(table, &row)?;
        }
        let key = table.to_ascii_lowercase();
        let t = self
            .tables
            .get_mut(&key)
            .ok_or_else(|| StorageError::UnknownTable(table.into()))?;
        let row_id = t.insert(row, ts)?;
        let stored = t.get(row_id).expect("row just inserted");
        if let Some(idxs) = self.indexes.get_mut(&key) {
            for idx in idxs.iter_mut() {
                Arc::make_mut(idx).insert_row(row_id, &stored)?;
            }
        }
        Ok(row_id)
    }

    /// Bulk insert; returns the number of rows inserted.  Re-analyzes the
    /// table's optimizer statistics at the end of the batch (each batch is a
    /// publish point, per the DR1 load pipeline).
    pub fn insert_many(
        &mut self,
        table: &str,
        rows: Vec<Vec<Value>>,
        ts: Timestamp,
    ) -> Result<usize, StorageError> {
        let mut n = 0;
        for row in rows {
            self.insert_with_timestamp(table, row, ts)?;
            n += 1;
        }
        self.analyze_table(table)?;
        Ok(n)
    }

    // ------------------------------------------------------------------
    // Optimizer statistics
    // ------------------------------------------------------------------

    /// Collect optimizer statistics for one table (a segment sweep; see
    /// [`crate::table_stats`]).
    pub fn analyze_table(&mut self, table: &str) -> Result<(), StorageError> {
        let key = table.to_ascii_lowercase();
        let t = self
            .tables
            .get(&key)
            .ok_or_else(|| StorageError::UnknownTable(table.into()))?;
        let stats = table_stats::analyze(t, self.clock);
        self.stats.insert(key, stats);
        Ok(())
    }

    /// Collect optimizer statistics for every table.
    pub fn analyze_all(&mut self) {
        let keys: Vec<String> = self.tables.keys().cloned().collect();
        for key in keys {
            if let Some(t) = self.tables.get(&key) {
                let stats = table_stats::analyze(t, self.clock);
                self.stats.insert(key, stats);
            }
        }
    }

    /// The most recently collected statistics for `table`, if any.
    pub fn table_stats(&self, table: &str) -> Option<&TableStats> {
        self.stats.get(&table.to_ascii_lowercase())
    }

    /// Delete a row by id, maintaining indices.  Returns true if it was live.
    pub fn delete(&mut self, table: &str, row_id: RowId) -> Result<bool, StorageError> {
        let key = table.to_ascii_lowercase();
        let t = self
            .tables
            .get_mut(&key)
            .ok_or_else(|| StorageError::UnknownTable(table.into()))?;
        let Some(row) = t.get(row_id) else {
            return Ok(false);
        };
        t.delete(row_id);
        if let Some(idxs) = self.indexes.get_mut(&key) {
            for idx in idxs.iter_mut() {
                Arc::make_mut(idx).remove_row(row_id, &row);
            }
        }
        Ok(true)
    }

    /// Delete every row of `table` whose insert timestamp lies in
    /// `[start, stop]` -- the loader's UNDO.  Returns the number removed.
    pub fn delete_by_timestamp_range(
        &mut self,
        table: &str,
        start: Timestamp,
        stop: Timestamp,
    ) -> Result<usize, StorageError> {
        let key = table.to_ascii_lowercase();
        let t = self
            .tables
            .get(&key)
            .ok_or_else(|| StorageError::UnknownTable(table.into()))?;
        let victims: Vec<RowId> = t
            .row_ids()
            .filter(|&id| {
                t.insert_timestamp(id)
                    .map(|ts| ts >= start && ts <= stop)
                    .unwrap_or(false)
            })
            .collect();
        let mut removed = 0;
        for id in victims {
            if self.delete(table, id)? {
                removed += 1;
            }
        }
        Ok(removed)
    }

    fn check_foreign_keys(&self, table: &str, row: &[Value]) -> Result<(), StorageError> {
        let child = self.table(table)?;
        for fk in self.foreign_keys_of(table) {
            let values: Vec<Value> = fk
                .columns
                .iter()
                .map(|c| {
                    child
                        .schema()
                        .column_index(c)
                        .and_then(|i| row.get(i).cloned())
                        .unwrap_or(Value::Null)
                })
                .collect();
            if values.iter().any(Value::is_null) {
                continue; // NULL FK values are not checked.
            }
            if !self.parent_exists(fk, &values)? {
                return Err(StorageError::ForeignKeyViolation {
                    table: table.to_string(),
                    constraint: fk.name.clone(),
                    value: values
                        .iter()
                        .map(Value::to_string)
                        .collect::<Vec<_>>()
                        .join(","),
                });
            }
        }
        Ok(())
    }

    fn parent_exists(&self, fk: &ForeignKey, values: &[Value]) -> Result<bool, StorageError> {
        let parent = self.table(&fk.ref_table)?;
        // Prefer an index whose key columns start with the referenced columns.
        for idx in self.indexes_for(&fk.ref_table) {
            let keys = &idx.def().key_columns;
            if keys.len() >= fk.ref_columns.len()
                && keys
                    .iter()
                    .zip(&fk.ref_columns)
                    .all(|(a, b)| a.eq_ignore_ascii_case(b))
            {
                if keys.len() == fk.ref_columns.len() {
                    return Ok(!idx.seek_exact(&IndexKey(values.to_vec())).is_empty());
                }
                return Ok(!idx.seek_prefix(&values[0]).is_empty());
            }
        }
        // Fall back to a scan.
        let positions: Vec<usize> = fk
            .ref_columns
            .iter()
            .map(|c| {
                parent.schema().column_index(c).ok_or_else(|| {
                    StorageError::ConstraintViolation(format!(
                        "foreign key {} references unknown column {c}",
                        fk.name
                    ))
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(parent
            .iter()
            .any(|(_, r)| positions.iter().zip(values).all(|(&p, v)| r[p].sql_eq(v))))
    }

    /// Validate every foreign key over the whole database (used after bulk
    /// loads that ran with enforcement off).  Returns the list of violations
    /// as human-readable strings (empty = consistent).
    pub fn validate_foreign_keys(&self) -> Vec<String> {
        let mut problems = Vec::new();
        for fk in &self.foreign_keys {
            let Ok(child) = self.table(&fk.table) else {
                continue;
            };
            let positions: Vec<usize> = fk
                .columns
                .iter()
                .filter_map(|c| child.schema().column_index(c))
                .collect();
            if positions.len() != fk.columns.len() {
                problems.push(format!("{}: child columns missing", fk.name));
                continue;
            }
            for (_, row) in child.iter() {
                let values: Vec<Value> = positions.iter().map(|&p| row[p].clone()).collect();
                if values.iter().any(Value::is_null) {
                    continue;
                }
                match self.parent_exists(fk, &values) {
                    Ok(true) => {}
                    Ok(false) => problems.push(format!(
                        "{}: value ({}) has no parent in {}",
                        fk.name,
                        values
                            .iter()
                            .map(Value::to_string)
                            .collect::<Vec<_>>()
                            .join(","),
                        fk.ref_table
                    )),
                    Err(e) => problems.push(format!("{}: {e}", fk.name)),
                }
            }
        }
        problems
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// Per-table summary (rows, bytes, index bytes) -- the data behind the
    /// paper's Table 1 and the schema browser.
    pub fn summaries(&self) -> Vec<TableSummary> {
        self.tables
            .values()
            .map(|t| {
                let idx = self.indexes_for(t.name());
                TableSummary {
                    name: t.name().to_string(),
                    rows: t.row_count() as u64,
                    data_bytes: t.data_bytes(),
                    index_bytes: idx.iter().map(|i| i.bytes()).sum(),
                    avg_row_bytes: t.avg_row_bytes(),
                    columns: t.schema().len(),
                    indexes: idx.len(),
                    description: t.description().to_string(),
                }
            })
            .collect()
    }

    /// Total data bytes across all tables.
    pub fn total_data_bytes(&self) -> u64 {
        self.tables.values().map(Table::data_bytes).sum()
    }

    /// Total index bytes across all tables.
    pub fn total_index_bytes(&self) -> u64 {
        self.indexes
            .values()
            .flat_map(|v| v.iter().map(|i| i.bytes()))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::value::DataType;

    fn plate_schema() -> TableSchema {
        TableSchema::new(vec![
            ColumnDef::new("plateID", DataType::Int),
            ColumnDef::new("ra", DataType::Float),
        ])
        .with_primary_key(&["plateID"])
    }

    fn spec_schema() -> TableSchema {
        TableSchema::new(vec![
            ColumnDef::new("specObjID", DataType::Int),
            ColumnDef::new("plateID", DataType::Int),
            ColumnDef::new("z", DataType::Float),
        ])
        .with_primary_key(&["specObjID"])
    }

    fn db() -> Database {
        let mut db = Database::new("skyserver_test");
        db.create_table("plate", plate_schema()).unwrap();
        db.create_table("specObj", spec_schema()).unwrap();
        db.create_index(IndexDef::new("pk_plate", "plate", &["plateID"]).unique())
            .unwrap();
        db.add_foreign_key(ForeignKey {
            name: "fk_spec_plate".into(),
            table: "specObj".into(),
            columns: vec!["plateID".into()],
            ref_table: "plate".into(),
            ref_columns: vec!["plateID".into()],
        })
        .unwrap();
        db
    }

    #[test]
    fn create_and_drop_tables() {
        let mut d = db();
        assert!(d.has_table("PLATE"));
        assert_eq!(d.table_names().len(), 2);
        assert!(matches!(
            d.create_table("plate", plate_schema()),
            Err(StorageError::DuplicateName(_))
        ));
        d.drop_table("specObj").unwrap();
        assert!(!d.has_table("specobj"));
        assert!(d.drop_table("specObj").is_err());
    }

    #[test]
    fn insert_maintains_indices() {
        let mut d = db();
        d.insert("plate", vec![Value::Int(1), Value::Float(180.0)])
            .unwrap();
        d.insert("plate", vec![Value::Int(2), Value::Float(190.0)])
            .unwrap();
        let idx = d.index("plate", "pk_plate").unwrap();
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.seek_exact(&IndexKey(vec![Value::Int(2)])).len(), 1);
    }

    #[test]
    fn foreign_key_enforced_on_insert() {
        let mut d = db();
        d.insert("plate", vec![Value::Int(1), Value::Float(180.0)])
            .unwrap();
        // Valid child.
        d.insert(
            "specObj",
            vec![Value::Int(100), Value::Int(1), Value::Float(0.1)],
        )
        .unwrap();
        // Dangling child.
        let err = d
            .insert(
                "specObj",
                vec![Value::Int(101), Value::Int(99), Value::Float(0.1)],
            )
            .unwrap_err();
        assert!(matches!(err, StorageError::ForeignKeyViolation { .. }));
    }

    #[test]
    fn fk_enforcement_can_be_deferred_and_validated() {
        let mut d = db();
        d.set_enforce_foreign_keys(false);
        d.insert(
            "specObj",
            vec![Value::Int(100), Value::Int(77), Value::Float(0.1)],
        )
        .unwrap();
        let problems = d.validate_foreign_keys();
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("fk_spec_plate"));
        // Fix the problem and re-validate.
        d.insert("plate", vec![Value::Int(77), Value::Float(10.0)])
            .unwrap();
        assert!(d.validate_foreign_keys().is_empty());
    }

    #[test]
    fn delete_maintains_indices() {
        let mut d = db();
        let rid = d
            .insert("plate", vec![Value::Int(5), Value::Float(1.0)])
            .unwrap();
        assert!(d.delete("plate", rid).unwrap());
        assert!(!d.delete("plate", rid).unwrap());
        assert_eq!(d.index("plate", "pk_plate").unwrap().len(), 0);
    }

    #[test]
    fn undo_by_timestamp_range_maintains_indices() {
        let mut d = db();
        d.insert_with_timestamp("plate", vec![Value::Int(1), Value::Float(1.0)], 10)
            .unwrap();
        d.insert_with_timestamp("plate", vec![Value::Int(2), Value::Float(2.0)], 20)
            .unwrap();
        d.insert_with_timestamp("plate", vec![Value::Int(3), Value::Float(3.0)], 30)
            .unwrap();
        let removed = d.delete_by_timestamp_range("plate", 15, 25).unwrap();
        assert_eq!(removed, 1);
        assert_eq!(d.table("plate").unwrap().row_count(), 2);
        assert_eq!(d.index("plate", "pk_plate").unwrap().len(), 2);
    }

    #[test]
    fn views_and_duplicates() {
        let mut d = db();
        d.create_view(
            "Galaxy",
            "SELECT * FROM photoObj WHERE type = 3",
            "galaxies",
        )
        .unwrap();
        assert!(d.view("galaxy").is_some());
        assert!(d.create_view("galaxy", "x", "dup").is_err());
        assert!(d.create_table("Galaxy", plate_schema()).is_err());
        assert_eq!(d.views().count(), 1);
    }

    #[test]
    fn summaries_report_sizes() {
        let mut d = db();
        for i in 0..100 {
            d.insert("plate", vec![Value::Int(i), Value::Float(i as f64)])
                .unwrap();
        }
        let summaries = d.summaries();
        let plate = summaries.iter().find(|s| s.name == "plate").unwrap();
        assert_eq!(plate.rows, 100);
        assert_eq!(plate.avg_row_bytes, 16);
        assert!(plate.index_bytes > 0);
        assert_eq!(plate.indexes, 1);
        assert!(d.total_data_bytes() >= plate.data_bytes);
        assert!(d.total_index_bytes() >= plate.index_bytes);
    }

    #[test]
    fn timestamps_monotone() {
        let mut d = db();
        let a = d.next_timestamp();
        let b = d.next_timestamp();
        assert!(b > a);
        assert_eq!(d.current_timestamp(), b);
    }

    #[test]
    fn unknown_table_errors() {
        let mut d = db();
        assert!(d.insert("nope", vec![]).is_err());
        assert!(d.table("nope").is_err());
        assert!(d.create_index(IndexDef::new("x", "nope", &["a"])).is_err());
    }

    #[test]
    fn stats_go_stale_under_single_row_dml_until_reanalyzed() {
        // Batch inserts are publish points and re-analyze automatically;
        // single-row DML deliberately does not (the DR1 pipeline defers
        // that cost to the next ANALYZE).  Pin both halves of the contract:
        // stats lag the table after insert/delete, and analyze_table
        // resynchronizes them.
        let mut d = db();
        let ts = d.next_timestamp();
        let rows: Vec<Vec<Value>> = (0..50)
            .map(|i| vec![Value::Int(i), Value::Float(i as f64)])
            .collect();
        d.insert_many("plate", rows, ts).unwrap();
        assert_eq!(d.table_stats("plate").unwrap().row_count, 50);

        let extra = d
            .insert("plate", vec![Value::Int(99), Value::Float(4.5)])
            .unwrap();
        let stale = d.table_stats("plate").unwrap();
        assert_eq!(
            stale.row_count, 50,
            "single-row insert must not rewrite published stats"
        );
        assert!(
            matches!(stale.column(1).unwrap().max, Value::Float(m) if m < 99.0),
            "stale max still reflects the analyzed batch"
        );

        d.analyze_table("plate").unwrap();
        let fresh = d.table_stats("plate").unwrap();
        assert_eq!(fresh.row_count, 51);
        assert_eq!(fresh.column(0).unwrap().max, Value::Int(99));

        d.delete("plate", extra).unwrap();
        assert_eq!(
            d.table_stats("plate").unwrap().row_count,
            51,
            "delete leaves stats stale too"
        );
        d.analyze_table("plate").unwrap();
        assert_eq!(d.table_stats("plate").unwrap().row_count, 50);
    }
}
