//! Execution statistics collected by scans and lookups.
//!
//! The SkyServerQA tool shows per-query execution statistics ("vital for
//! large result-sets", §4) and the paper reports CPU and elapsed time for
//! every query.  The storage layer accumulates raw counters here; the SQL
//! executor turns them into reported timings using the [`crate::iosim`]
//! hardware model plus measured wall-clock time.

use crate::iosim::{CpuCost, IoSimulator, SimTiming};
use std::time::Duration;

/// Counters accumulated while executing one statement.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ScanStats {
    /// Rows read from heap tables (full scans).
    pub rows_scanned: u64,
    /// Bytes read from heap tables.
    pub bytes_scanned: u64,
    /// Rows read through an index (seeks and index scans).
    pub rows_from_index: u64,
    /// Bytes read through indices.
    pub bytes_from_index: u64,
    /// Number of index seeks performed.
    pub index_seeks: u64,
    /// Rows produced to the client (or into a temp table).
    pub rows_returned: u64,
    /// Rows examined by join probes.
    pub join_probes: u64,
    /// Predicate evaluations performed.
    pub predicates_evaluated: u64,
    /// Whole segments skipped by zone-map pruning (no row or byte touched).
    pub segments_pruned: u64,
    /// Row batches processed by heap scans (pruned segments contribute
    /// none).
    pub batches_processed: u64,
    /// Full-row-equivalent heap bytes: what the same scan (after segment
    /// pruning) would read in a row-oriented layout.  Drives the
    /// paper-hardware projection, which models the paper's row store;
    /// `bytes_scanned` reports the column bytes the engine actually
    /// touched.
    pub logical_bytes_scanned: u64,
}

impl ScanStats {
    /// Merge another stats block into this one (parallel scan workers).
    pub fn merge(&mut self, other: &ScanStats) {
        self.rows_scanned += other.rows_scanned;
        self.bytes_scanned += other.bytes_scanned;
        self.rows_from_index += other.rows_from_index;
        self.bytes_from_index += other.bytes_from_index;
        self.index_seeks += other.index_seeks;
        self.rows_returned += other.rows_returned;
        self.join_probes += other.join_probes;
        self.predicates_evaluated += other.predicates_evaluated;
        self.segments_pruned += other.segments_pruned;
        self.batches_processed += other.batches_processed;
        self.logical_bytes_scanned += other.logical_bytes_scanned;
    }

    /// Total bytes touched.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_scanned + self.bytes_from_index
    }

    /// Total rows touched.
    pub fn total_rows(&self) -> u64 {
        self.rows_scanned + self.rows_from_index
    }
}

/// Full execution report for one statement.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ExecutionStats {
    /// Raw access-path counters.
    pub stats: ScanStats,
    /// Measured wall-clock time of the in-process execution.
    pub wall_seconds: f64,
    /// Simulated timing on the paper's hardware at the *current* data scale.
    pub simulated: SimTiming,
    /// Simulated timing scaled up to the paper's data volume (14 M photo
    /// objects), if a scale factor was provided.
    pub simulated_at_paper_scale: Option<SimTiming>,
}

impl ExecutionStats {
    /// Build a report from counters + wall time using an I/O simulator.
    ///
    /// `predicate_heavy` selects the 19-cpb cost model instead of 10 cpb.
    /// `scale_factor` (>1) projects the same access pattern to the paper's
    /// data volume.
    pub fn from_scan(
        stats: ScanStats,
        wall: Duration,
        sim: &IoSimulator,
        predicate_heavy: bool,
        scale_factor: Option<f64>,
    ) -> Self {
        let cost = if predicate_heavy {
            CpuCost::filtered_scan()
        } else {
            CpuCost::simple_scan()
        };
        let simulated = simulate(stats, sim, cost, 1.0);
        let simulated_at_paper_scale = scale_factor.map(|f| simulate(stats, sim, cost, f.max(1.0)));
        ExecutionStats {
            stats,
            wall_seconds: wall.as_secs_f64(),
            simulated,
            simulated_at_paper_scale,
        }
    }
}

fn simulate(stats: ScanStats, sim: &IoSimulator, cost: CpuCost, scale: f64) -> SimTiming {
    // The projection models the paper's row-store hardware, where a heap
    // scan reads whole rows: prefer the full-row-equivalent counter when
    // the columnar engine touched fewer bytes than a row store would.
    let seq_bytes = (stats.bytes_scanned.max(stats.logical_bytes_scanned) as f64 * scale) as u64;
    let idx_bytes = (stats.bytes_from_index as f64 * scale) as u64;
    let seeks = ((stats.index_seeks as f64) * scale.sqrt()).round() as u64;
    let seq = sim.simulate_scan(seq_bytes, cost);
    // Index access: covered columns stream ~10x denser, treat as a scan of
    // the index bytes plus per-seek costs.
    let idx_scan = sim.simulate_scan(idx_bytes, cost);
    let lookups = sim.simulate_index_lookups(seeks, 8192, true);
    SimTiming {
        cpu_seconds: seq.cpu_seconds + idx_scan.cpu_seconds + lookups.cpu_seconds,
        elapsed_seconds: seq.elapsed_seconds + idx_scan.elapsed_seconds + lookups.elapsed_seconds,
        io_bound: seq.io_bound,
        effective_mbps: seq.effective_mbps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iosim::IoSimulator;

    #[test]
    fn merge_adds_counters() {
        let mut a = ScanStats {
            rows_scanned: 10,
            bytes_scanned: 1000,
            ..Default::default()
        };
        let b = ScanStats {
            rows_scanned: 5,
            bytes_scanned: 500,
            index_seeks: 2,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.rows_scanned, 15);
        assert_eq!(a.bytes_scanned, 1500);
        assert_eq!(a.index_seeks, 2);
        assert_eq!(a.total_bytes(), 1500);
        assert_eq!(a.total_rows(), 15);
    }

    #[test]
    fn execution_stats_projects_to_paper_scale() {
        let stats = ScanStats {
            rows_scanned: 100_000,
            bytes_scanned: 200_000_000, // 200 MB
            ..Default::default()
        };
        let sim = IoSimulator::skyserver_production();
        let report = ExecutionStats::from_scan(
            stats,
            Duration::from_millis(50),
            &sim,
            false,
            Some(140.0), // 100k rows -> 14M rows
        );
        assert!(report.wall_seconds > 0.0);
        let small = report.simulated.elapsed_seconds;
        let big = report.simulated_at_paper_scale.unwrap().elapsed_seconds;
        assert!(
            big > small * 50.0,
            "paper-scale projection should be ~140x slower"
        );
    }

    #[test]
    fn predicate_heavy_costs_more_cpu() {
        let stats = ScanStats {
            bytes_scanned: 1_000_000_000,
            ..Default::default()
        };
        let sim = IoSimulator::skyserver_production();
        let cheap = ExecutionStats::from_scan(stats, Duration::ZERO, &sim, false, None);
        let heavy = ExecutionStats::from_scan(stats, Duration::ZERO, &sim, true, None);
        assert!(heavy.simulated.cpu_seconds > cheap.simulated.cpu_seconds);
    }
}
