//! # skyserver-schema
//!
//! The SDSS SkyServer relational schema (§9.1 of the paper): the
//! photographic and spectrographic snowflake tables, the sub-classing views
//! (`PhotoPrimary`, `Galaxy`, `Star`, ...), the covering indices that stand
//! in for tag tables, the foreign-key constraints, and the astronomy
//! user-defined functions (`fPhotoFlags`, `fGetNearbyObjEq`,
//! `spHTM_CoverCircleEq`, ...).
//!
//! The crate exposes two granularities:
//!
//! * [`install_schema`] / [`register_functions`] for callers that manage
//!   their own [`Database`] / [`FunctionRegistry`];
//! * [`create_engine`] which returns a ready-to-load [`SqlEngine`] with
//!   everything installed (what the loader and the web front end use).

#![forbid(unsafe_code)]

pub mod constraints;
pub mod functions;
pub mod indexes;
pub mod tables;
pub mod views;

pub use constraints::{all_foreign_keys, create_foreign_keys};
pub use functions::{register_functions, EXPLORE_URL};
pub use indexes::{all_indexes, create_indexes};
pub use tables::{all_tables, create_tables, photo_obj_schema};
pub use views::{all_views, create_views};

use skyserver_sql::{FunctionRegistry, SqlEngine};
use skyserver_storage::{Database, StorageError};

/// Install tables, views and foreign keys on an empty database.
///
/// Indexes are *not* built here: bulk loads run faster when the loader
/// builds them after the data arrives (call [`create_indexes`] then).  Use
/// [`install_schema_with_indexes`] when loading incrementally.
pub fn install_schema(db: &mut Database) -> Result<(), StorageError> {
    create_tables(db)?;
    create_views(db)?;
    create_foreign_keys(db)?;
    Ok(())
}

/// Install the full schema including all secondary indices.
pub fn install_schema_with_indexes(db: &mut Database) -> Result<(), StorageError> {
    install_schema(db)?;
    create_indexes(db)?;
    Ok(())
}

/// Build a [`SqlEngine`] with the SkyServer schema installed and every UDF
/// registered, ready for the loader to fill.
pub fn create_engine(database_name: &str) -> Result<SqlEngine, StorageError> {
    let mut db = Database::new(database_name);
    install_schema(&mut db)?;
    let mut functions = FunctionRegistry::new();
    register_functions(&mut functions);
    Ok(SqlEngine::new(db, functions))
}

/// Metadata for the schema browser: every table with its columns,
/// descriptions and indices (what SkyServerQA's object browser displays).
#[derive(Debug, Clone, serde::Serialize)]
pub struct SchemaDescription {
    pub tables: Vec<TableDescription>,
    pub views: Vec<ViewDescription>,
    pub functions: Vec<String>,
}

/// One table's metadata.
#[derive(Debug, Clone, serde::Serialize)]
pub struct TableDescription {
    pub name: String,
    pub description: String,
    pub rows: u64,
    pub columns: Vec<ColumnDescription>,
    pub indexes: Vec<String>,
    pub primary_key: Vec<String>,
}

/// One column's metadata.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ColumnDescription {
    pub name: String,
    pub data_type: String,
    pub unit: String,
    pub description: String,
}

/// One view's metadata.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ViewDescription {
    pub name: String,
    pub sql: String,
    pub description: String,
}

/// Extract the schema-browser metadata from a live database.
pub fn describe_schema(db: &Database, functions: &FunctionRegistry) -> SchemaDescription {
    let tables = db
        .table_names()
        .iter()
        .filter(|name| !name.starts_with("##"))
        .map(|name| {
            let t = db.table(name).expect("listed table exists");
            TableDescription {
                name: t.name().to_string(),
                description: t.description().to_string(),
                rows: t.row_count() as u64,
                columns: t
                    .schema()
                    .columns()
                    .iter()
                    .map(|c| ColumnDescription {
                        name: c.name.clone(),
                        data_type: c.ty.to_string(),
                        unit: c.unit.clone(),
                        description: c.description.clone(),
                    })
                    .collect(),
                indexes: db
                    .indexes_for(name)
                    .iter()
                    .map(|i| i.def().name.clone())
                    .collect(),
                primary_key: t
                    .schema()
                    .primary_key_names()
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
            }
        })
        .collect();
    let views = db
        .views()
        .map(|v| ViewDescription {
            name: v.name.clone(),
            sql: v.sql.clone(),
            description: v.description.clone(),
        })
        .collect();
    let mut fns = functions.scalar_names();
    fns.extend(functions.table_names());
    SchemaDescription {
        tables,
        views,
        functions: fns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyserver_sql::QueryLimits;

    #[test]
    fn engine_installs_cleanly() {
        let engine = create_engine("skyserver").unwrap();
        assert!(engine.db().has_table("PhotoObj"));
        assert!(engine.db().view("Galaxy").is_some());
        assert!(engine.functions().scalar("fPhotoFlags").is_some());
        assert!(engine.functions().table("fGetNearbyObjEq").is_some());
        assert!(!engine.db().foreign_keys().is_empty());
    }

    #[test]
    fn empty_schema_answers_queries() {
        let mut engine = create_engine("skyserver").unwrap();
        let r = engine.query("select count(*) from PhotoObj").unwrap();
        assert_eq!(r.scalar().unwrap().as_i64(), Some(0));
        let r = engine
            .execute(
                "select count(*) from Galaxy where modelMag_r < 20",
                QueryLimits::PUBLIC,
            )
            .unwrap();
        assert_eq!(r.result.scalar().unwrap().as_i64(), Some(0));
    }

    #[test]
    fn schema_description_lists_everything() {
        let mut db = Database::new("skyserver");
        install_schema_with_indexes(&mut db).unwrap();
        let mut functions = FunctionRegistry::new();
        register_functions(&mut functions);
        let desc = describe_schema(&db, &functions);
        assert_eq!(desc.tables.len(), all_tables().len());
        assert_eq!(desc.views.len(), all_views().len());
        assert!(desc.functions.iter().any(|f| f == "fphotoflags"));
        let photo = desc.tables.iter().find(|t| t.name == "PhotoObj").unwrap();
        assert_eq!(photo.columns.len(), 54);
        assert!(!photo.indexes.is_empty());
        assert_eq!(photo.primary_key, vec!["objID"]);
    }

    #[test]
    fn duplicate_install_fails_cleanly() {
        let mut db = Database::new("skyserver");
        install_schema(&mut db).unwrap();
        assert!(install_schema(&mut db).is_err());
    }
}
