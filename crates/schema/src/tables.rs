//! Table definitions of the SkyServer relational schema (§9.1).
//!
//! Column names match the CSV headers produced by the `skyserver-skygen`
//! pipeline exactly, so the loader can map files to tables by name.  Every
//! column is `NOT NULL` (the paper: "We also insist that all fields are
//! non-null"), and each table carries a description served by the schema
//! browser.

use skyserver_storage::{ColumnDef, DataType, Database, StorageError, TableSchema};

fn mag_columns(prefix: &str, description: &str) -> Vec<ColumnDef> {
    ['u', 'g', 'r', 'i', 'z']
        .iter()
        .map(|b| {
            ColumnDef::new(format!("{prefix}_{b}"), DataType::Float)
                .describe(format!("{description} ({b} band)"))
                .with_unit("mag")
        })
        .collect()
}

/// The `PhotoObj` table schema: every detected object with its ~50
/// representative attributes (the real table has ~400; the rest live in the
/// profile blob).
pub fn photo_obj_schema() -> TableSchema {
    let mut cols = vec![
        ColumnDef::new("objID", DataType::Int).describe("unique object identifier"),
        ColumnDef::new("parentID", DataType::Int)
            .describe("objID of the blended parent (0 if not a deblended child)"),
        ColumnDef::new("fieldID", DataType::Int).describe("field this detection belongs to"),
        ColumnDef::new("run", DataType::Int).describe("imaging run number"),
        ColumnDef::new("camcol", DataType::Int).describe("camera column 1-6"),
        ColumnDef::new("field", DataType::Int).describe("field number within the run"),
        ColumnDef::new("obj", DataType::Int).describe("object number within the field"),
        ColumnDef::new("nChild", DataType::Int).describe("number of deblended children"),
        ColumnDef::new("type", DataType::Int).describe("morphological type (3=galaxy, 6=star)"),
        ColumnDef::new("probPSF", DataType::Float)
            .describe("probability the object is a point source"),
        ColumnDef::new("flags", DataType::Int).describe("photometric status bit flags"),
        ColumnDef::new("status", DataType::Int).describe("pipeline status word"),
        ColumnDef::new("ra", DataType::Float)
            .describe("J2000 right ascension")
            .with_unit("deg"),
        ColumnDef::new("dec", DataType::Float)
            .describe("J2000 declination")
            .with_unit("deg"),
        ColumnDef::new("cx", DataType::Float).describe("unit vector x"),
        ColumnDef::new("cy", DataType::Float).describe("unit vector y"),
        ColumnDef::new("cz", DataType::Float).describe("unit vector z"),
        ColumnDef::new("htmID", DataType::Int).describe("20-deep Hierarchical Triangular Mesh id"),
        ColumnDef::new("rowv", DataType::Float)
            .describe("row-direction velocity")
            .with_unit("pix/frame"),
        ColumnDef::new("colv", DataType::Float)
            .describe("column-direction velocity")
            .with_unit("pix/frame"),
    ];
    cols.extend(mag_columns("modelMag", "magnitude of the best model fit"));
    cols.extend(mag_columns("psfMag", "PSF magnitude"));
    cols.extend(mag_columns("petroMag", "Petrosian magnitude"));
    cols.extend(mag_columns("fiberMag", "3-arcsecond fibre magnitude"));
    cols.extend(mag_columns("modelMagErr", "model magnitude error"));
    cols.extend(vec![
        ColumnDef::new("petroRad_r", DataType::Float)
            .describe("Petrosian radius (r band)")
            .with_unit("arcsec"),
        ColumnDef::new("isoA_r", DataType::Float)
            .describe("isophotal major axis (r band)")
            .with_unit("arcsec"),
        ColumnDef::new("isoB_r", DataType::Float)
            .describe("isophotal minor axis (r band)")
            .with_unit("arcsec"),
        ColumnDef::new("isoA_g", DataType::Float)
            .describe("isophotal major axis (g band)")
            .with_unit("arcsec"),
        ColumnDef::new("isoB_g", DataType::Float)
            .describe("isophotal minor axis (g band)")
            .with_unit("arcsec"),
        ColumnDef::new("q_r", DataType::Float).describe("Stokes Q ellipticity (r band)"),
        ColumnDef::new("u_r", DataType::Float).describe("Stokes U ellipticity (r band)"),
        ColumnDef::new("q_g", DataType::Float).describe("Stokes Q ellipticity (g band)"),
        ColumnDef::new("u_g", DataType::Float).describe("Stokes U ellipticity (g band)"),
    ]);
    TableSchema::new(cols).with_primary_key(&["objID"])
}

/// All tables of the SkyServer schema, in dependency (load) order, as
/// `(name, schema, description)` triples.
pub fn all_tables() -> Vec<(&'static str, TableSchema, &'static str)> {
    vec![
        (
            "Field",
            TableSchema::new(vec![
                ColumnDef::new("fieldID", DataType::Int).describe("unique field identifier"),
                ColumnDef::new("run", DataType::Int),
                ColumnDef::new("rerun", DataType::Int),
                ColumnDef::new("camcol", DataType::Int),
                ColumnDef::new("field", DataType::Int),
                ColumnDef::new("ra", DataType::Float).with_unit("deg"),
                ColumnDef::new("dec", DataType::Float).with_unit("deg"),
                ColumnDef::new("raWidth", DataType::Float).with_unit("deg"),
                ColumnDef::new("decWidth", DataType::Float).with_unit("deg"),
                ColumnDef::new("stripe", DataType::Int),
                ColumnDef::new("strip", DataType::Int),
                ColumnDef::new("quality", DataType::Int),
            ])
            .with_primary_key(&["fieldID"]),
            "Observation fields: the unit of pipeline processing (~10'x13' of sky).",
        ),
        (
            "Frame",
            TableSchema::new(vec![
                ColumnDef::new("frameID", DataType::Int),
                ColumnDef::new("fieldID", DataType::Int),
                ColumnDef::new("band", DataType::Int).describe("0..4 = u,g,r,i,z"),
                ColumnDef::new("zoom", DataType::Int).describe("image pyramid zoom level"),
                ColumnDef::new("imgBytes", DataType::Int),
            ])
            .with_primary_key(&["frameID"]),
            "One image per field per band (plus pyramid zoom levels).",
        ),
        (
            "PhotoObj",
            photo_obj_schema(),
            "Every photometric detection: stars, galaxies, duplicates and deblended children.",
        ),
        (
            "Profile",
            TableSchema::new(vec![
                ColumnDef::new("objID", DataType::Int),
                ColumnDef::new("nBins", DataType::Int),
                ColumnDef::new("profile", DataType::Bytes)
                    .describe("radial surface-brightness profile blob"),
            ])
            .with_primary_key(&["objID"]),
            "Radial light profiles stored as blobs, accessed through functions.",
        ),
        (
            "Plate",
            TableSchema::new(vec![
                ColumnDef::new("plateID", DataType::Int),
                ColumnDef::new("ra", DataType::Float).with_unit("deg"),
                ColumnDef::new("dec", DataType::Float).with_unit("deg"),
                ColumnDef::new("mjd", DataType::Int),
                ColumnDef::new("nFibers", DataType::Int),
            ])
            .with_primary_key(&["plateID"]),
            "Spectroscopic plates (~600 fibres observed at once).",
        ),
        (
            "SpecObj",
            TableSchema::new(vec![
                ColumnDef::new("specObjID", DataType::Int),
                ColumnDef::new("plateID", DataType::Int),
                ColumnDef::new("fiberID", DataType::Int),
                ColumnDef::new("objID", DataType::Int).describe("matching photometric object"),
                ColumnDef::new("ra", DataType::Float).with_unit("deg"),
                ColumnDef::new("dec", DataType::Float).with_unit("deg"),
                ColumnDef::new("htmID", DataType::Int),
                ColumnDef::new("z", DataType::Float).describe("final redshift"),
                ColumnDef::new("zErr", DataType::Float),
                ColumnDef::new("zConf", DataType::Float),
                ColumnDef::new("specClass", DataType::Int),
                ColumnDef::new("imgBytes", DataType::Int).describe("size of the spectrum GIF"),
            ])
            .with_primary_key(&["specObjID"]),
            "Measured spectra with redshifts and classifications.",
        ),
        (
            "SpecLine",
            TableSchema::new(vec![
                ColumnDef::new("specLineID", DataType::Int),
                ColumnDef::new("specObjID", DataType::Int),
                ColumnDef::new("lineID", DataType::Int),
                ColumnDef::new("wave", DataType::Float).with_unit("Angstrom"),
                ColumnDef::new("sigma", DataType::Float),
                ColumnDef::new("height", DataType::Float),
                ColumnDef::new("ew", DataType::Float).describe("equivalent width"),
            ])
            .with_primary_key(&["specLineID"]),
            "Individual spectral lines (~30 per spectrum).",
        ),
        (
            "SpecLineIndex",
            TableSchema::new(vec![
                ColumnDef::new("specLineIndexID", DataType::Int),
                ColumnDef::new("specObjID", DataType::Int),
                ColumnDef::new("name", DataType::Str),
                ColumnDef::new("ew", DataType::Float),
                ColumnDef::new("mag", DataType::Float),
            ])
            .with_primary_key(&["specLineIndexID"]),
            "Derived line-group quantities used to characterise ages and types.",
        ),
        (
            "xcRedShift",
            TableSchema::new(vec![
                ColumnDef::new("xcRedShiftID", DataType::Int),
                ColumnDef::new("specObjID", DataType::Int),
                ColumnDef::new("z", DataType::Float),
                ColumnDef::new("r", DataType::Float),
                ColumnDef::new("peak", DataType::Float),
            ])
            .with_primary_key(&["xcRedShiftID"]),
            "Cross-correlation redshift measurements.",
        ),
        (
            "elRedShift",
            TableSchema::new(vec![
                ColumnDef::new("elRedShiftID", DataType::Int),
                ColumnDef::new("specObjID", DataType::Int),
                ColumnDef::new("z", DataType::Float),
                ColumnDef::new("nLines", DataType::Int),
            ])
            .with_primary_key(&["elRedShiftID"]),
            "Emission-line redshift measurements.",
        ),
        (
            "USNO",
            TableSchema::new(vec![
                ColumnDef::new("objID", DataType::Int),
                ColumnDef::new("usnoID", DataType::Int),
                ColumnDef::new("delta", DataType::Float).with_unit("arcsec"),
                ColumnDef::new("blueMag", DataType::Float).with_unit("mag"),
                ColumnDef::new("redMag", DataType::Float).with_unit("mag"),
            ])
            .with_primary_key(&["objID"]),
            "Cross-matches against the US Naval Observatory catalog.",
        ),
        (
            "ROSAT",
            TableSchema::new(vec![
                ColumnDef::new("objID", DataType::Int),
                ColumnDef::new("rosatID", DataType::Int),
                ColumnDef::new("delta", DataType::Float).with_unit("arcsec"),
                ColumnDef::new("cps", DataType::Float).describe("X-ray counts per second"),
            ])
            .with_primary_key(&["objID"]),
            "Cross-matches against the Röntgen Satellite X-ray catalog.",
        ),
        (
            "FIRST",
            TableSchema::new(vec![
                ColumnDef::new("objID", DataType::Int),
                ColumnDef::new("firstID", DataType::Int),
                ColumnDef::new("delta", DataType::Float).with_unit("arcsec"),
                ColumnDef::new("peakFlux", DataType::Float).with_unit("mJy"),
            ])
            .with_primary_key(&["objID"]),
            "Cross-matches against the FIRST radio survey.",
        ),
        (
            "Neighbors",
            TableSchema::new(vec![
                ColumnDef::new("objID", DataType::Int),
                ColumnDef::new("neighborObjID", DataType::Int),
                ColumnDef::new("distance", DataType::Float).with_unit("arcmin"),
                ColumnDef::new("neighborType", DataType::Int),
            ])
            .with_primary_key(&["objID", "neighborObjID"]),
            "Precomputed pairs of objects within 0.5 arcminutes (materialised view for proximity searches).",
        ),
    ]
}

/// Create every table (with descriptions) in the database.
pub fn create_tables(db: &mut Database) -> Result<(), StorageError> {
    for (name, schema, description) in all_tables() {
        db.create_table(name, schema)?;
        db.table_mut(name)?.set_description(description);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyserver_skygen::{export_survey, Survey, SurveyConfig};

    #[test]
    fn photo_obj_has_the_documented_columns() {
        let schema = photo_obj_schema();
        assert_eq!(schema.len(), 54);
        for col in ["objID", "htmID", "modelMag_r", "fiberMag_z", "q_r", "rowv"] {
            assert!(schema.column(col).is_some(), "missing column {col}");
        }
        assert_eq!(schema.primary_key_names(), vec!["objID"]);
        // Everything NOT NULL, as the paper insists.
        assert!(schema.columns().iter().all(|c| !c.nullable));
    }

    #[test]
    fn all_tables_install_into_a_database() {
        let mut db = Database::new("skyserver");
        create_tables(&mut db).unwrap();
        assert_eq!(db.table_names().len(), all_tables().len());
        assert!(db.has_table("photoobj"));
        assert!(db.has_table("NEIGHBORS"));
        assert!(!db.table("PhotoObj").unwrap().description().is_empty());
    }

    #[test]
    fn schema_columns_match_generator_csv_headers() {
        // Every CSV column emitted by the generator must exist in the
        // corresponding table (by case-insensitive name), so the loader can
        // bind columns by header.
        let mut db = Database::new("skyserver");
        create_tables(&mut db).unwrap();
        let survey = Survey::generate(SurveyConfig::tiny()).unwrap();
        for csv in export_survey(&survey) {
            let table = db.table(&csv.name).unwrap();
            for column in csv.header.split(',') {
                assert!(
                    table.schema().column(column).is_some(),
                    "table {} lacks CSV column {column}",
                    csv.name
                );
            }
        }
    }
}
