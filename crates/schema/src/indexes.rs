//! Index definitions (§9.1.3).
//!
//! "Today, the SkyServer database has tens of indices... About 30% of the
//! SkyServer storage space is devoted to indices."  Indices play two roles:
//! primary keys / join keys (B-tree seeks), and *covering* column subsets
//! that replace the old hand-built tag tables.  The definitions below
//! include the covering index over (run, camcol, field) + fibre magnitudes
//! and ellipticities that makes the fast-moving-object query (Fig 12) an
//! index-only plan.

use skyserver_storage::{Database, IndexDef, StorageError};

/// All index definitions of the SkyServer database.
pub fn all_indexes() -> Vec<IndexDef> {
    vec![
        // Photo side -------------------------------------------------------
        IndexDef::new("pk_PhotoObj", "PhotoObj", &["objID"]).unique(),
        IndexDef::new("ix_PhotoObj_htmID", "PhotoObj", &["htmID"]).include(&[
            "objID",
            "ra",
            "dec",
            "type",
            "flags",
            "modelMag_r",
        ]),
        IndexDef::new("ix_PhotoObj_type", "PhotoObj", &["type"]).include(&[
            "objID",
            "flags",
            "modelMag_u",
            "modelMag_g",
            "modelMag_r",
            "modelMag_i",
            "modelMag_z",
        ]),
        IndexDef::new("ix_PhotoObj_run", "PhotoObj", &["run", "camcol", "field"]).include(&[
            "objID",
            "parentID",
            "fiberMag_u",
            "fiberMag_g",
            "fiberMag_r",
            "fiberMag_i",
            "fiberMag_z",
            "q_r",
            "u_r",
            "q_g",
            "u_g",
            "isoA_r",
            "isoB_r",
            "isoA_g",
            "isoB_g",
            "cx",
            "cy",
            "cz",
        ]),
        IndexDef::new("ix_PhotoObj_field", "PhotoObj", &["fieldID"]).include(&["objID"]),
        IndexDef::new("ix_PhotoObj_parent", "PhotoObj", &["parentID"]).include(&["objID"]),
        IndexDef::new("pk_Field", "Field", &["fieldID"]).unique(),
        IndexDef::new("pk_Frame", "Frame", &["frameID"]).unique(),
        IndexDef::new("ix_Frame_field", "Frame", &["fieldID"]).include(&["band", "zoom"]),
        IndexDef::new("pk_Profile", "Profile", &["objID"]).unique(),
        // Spectro side -----------------------------------------------------
        IndexDef::new("pk_Plate", "Plate", &["plateID"]).unique(),
        IndexDef::new("pk_SpecObj", "SpecObj", &["specObjID"]).unique(),
        IndexDef::new("ix_SpecObj_objID", "SpecObj", &["objID"]).include(&["z", "specClass"]),
        IndexDef::new("ix_SpecObj_z", "SpecObj", &["z"]).include(&["objID", "specClass"]),
        IndexDef::new("ix_SpecObj_plate", "SpecObj", &["plateID"]).include(&["fiberID"]),
        IndexDef::new("pk_SpecLine", "SpecLine", &["specLineID"]).unique(),
        IndexDef::new("ix_SpecLine_specObj", "SpecLine", &["specObjID"])
            .include(&["lineID", "wave", "ew"]),
        IndexDef::new("ix_SpecLineIndex_specObj", "SpecLineIndex", &["specObjID"]),
        IndexDef::new("ix_xcRedShift_specObj", "xcRedShift", &["specObjID"]).include(&["z"]),
        IndexDef::new("ix_elRedShift_specObj", "elRedShift", &["specObjID"]).include(&["z"]),
        // Relationship tables ------------------------------------------------
        IndexDef::new("pk_Neighbors", "Neighbors", &["objID", "neighborObjID"]).unique(),
        IndexDef::new("ix_USNO_objID", "USNO", &["objID"]),
        IndexDef::new("ix_ROSAT_objID", "ROSAT", &["objID"]),
        IndexDef::new("ix_FIRST_objID", "FIRST", &["objID"]),
    ]
}

/// Build all indexes (call after the data load for bulk efficiency, or right
/// after table creation for incremental loads).
pub fn create_indexes(db: &mut Database) -> Result<(), StorageError> {
    for def in all_indexes() {
        db.create_index(def)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::create_tables;

    #[test]
    fn indexes_install_on_empty_schema() {
        let mut db = Database::new("skyserver");
        create_tables(&mut db).unwrap();
        create_indexes(&mut db).unwrap();
        assert!(db.index("PhotoObj", "pk_PhotoObj").is_some());
        assert!(db.index("PhotoObj", "ix_PhotoObj_htmID").is_some());
        assert_eq!(
            db.indexes_for("PhotoObj").len(),
            6,
            "photoObj carries the documented six indices"
        );
        // Tens of indices in total, as the paper says.
        let total: usize = db
            .table_names()
            .iter()
            .map(|t| db.indexes_for(t).len())
            .sum();
        assert!(total >= 20);
    }

    #[test]
    fn every_index_references_real_columns() {
        let mut db = Database::new("skyserver");
        create_tables(&mut db).unwrap();
        for def in all_indexes() {
            let table = db.table(&def.table).unwrap();
            for col in def.key_columns.iter().chain(def.included_columns.iter()) {
                assert!(
                    table.schema().column(col).is_some(),
                    "index {} references unknown column {col}",
                    def.name
                );
            }
        }
    }

    #[test]
    fn fast_mover_covering_index_covers_the_query_columns() {
        let needed = [
            "run",
            "camcol",
            "field",
            "objID",
            "parentID",
            "fiberMag_r",
            "fiberMag_g",
            "fiberMag_u",
            "fiberMag_i",
            "fiberMag_z",
            "q_r",
            "u_r",
            "q_g",
            "u_g",
            "isoA_r",
            "isoB_r",
            "isoA_g",
            "isoB_g",
            "cx",
            "cy",
            "cz",
        ];
        let def = all_indexes()
            .into_iter()
            .find(|d| d.name == "ix_PhotoObj_run")
            .unwrap();
        assert!(def.covers(&needed));
    }
}
