//! The SkyServer's user-defined functions (§9.1.4).
//!
//! Scalar helpers: `fPhotoFlags`, `fPhotoType`, `fSpecClass`,
//! `fGetUrlExpId`, `fDistanceArcMinEq`.
//!
//! Table-valued spatial functions: `spHTM_CoverCircleEq` (the raw HTM range
//! cover), `fGetNearbyObjEq` (all objects within a radius, with distances),
//! `fGetNearestObjEq` (the closest object), and `fGetObjFromRectEq`
//! (all objects in an ra/dec rectangle).  They use the B-tree on
//! `PhotoObj.htmID` exactly the way the paper describes: the cover produces
//! id ranges, the ranges are scanned in the index, and candidates get an
//! exact distance check.

use skyserver_htm::{angular_distance_arcmin, cover, Convex};
use skyserver_skygen::{photo_flag_value, photo_type_value, spec_class_value};
use skyserver_sql::{FunctionRegistry, ResultSet, SqlError};
use skyserver_storage::{Database, IndexKey, Value};

/// Base URL of the object explorer (the paper's `fGetUrlExpId` returns the
/// drill-down URL of an object).
pub const EXPLORE_URL: &str = "http://skyserver.sdss.org/en/tools/explore/obj.asp?id=";

fn arg_f64(args: &[Value], i: usize, name: &str) -> Result<f64, SqlError> {
    args.get(i)
        .and_then(Value::as_f64)
        .ok_or_else(|| SqlError::Execution(format!("{name}: argument {i} must be numeric")))
}

fn arg_str(args: &[Value], i: usize, name: &str) -> Result<String, SqlError> {
    args.get(i)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| SqlError::Execution(format!("{name}: argument {i} must be a string")))
}

/// Register every SkyServer UDF on a function registry.
pub fn register_functions(registry: &mut FunctionRegistry) {
    // ---------------------------------------------------------------- scalar
    registry.register_scalar("dbo.fPhotoFlags", |args| {
        let name = arg_str(args, 0, "fPhotoFlags")?;
        photo_flag_value(&name)
            .map(|v| Value::Int(v as i64))
            .ok_or_else(|| SqlError::Execution(format!("fPhotoFlags: unknown flag {name:?}")))
    });
    registry.register_scalar("dbo.fPhotoType", |args| {
        let name = arg_str(args, 0, "fPhotoType")?;
        photo_type_value(&name)
            .map(Value::Int)
            .ok_or_else(|| SqlError::Execution(format!("fPhotoType: unknown type {name:?}")))
    });
    registry.register_scalar("dbo.fSpecClass", |args| {
        let name = arg_str(args, 0, "fSpecClass")?;
        spec_class_value(&name)
            .map(Value::Int)
            .ok_or_else(|| SqlError::Execution(format!("fSpecClass: unknown class {name:?}")))
    });
    registry.register_scalar("dbo.fGetUrlExpId", |args| {
        let id = args
            .first()
            .and_then(Value::as_i64)
            .ok_or_else(|| SqlError::Execution("fGetUrlExpId: objID must be an integer".into()))?;
        Ok(Value::str(format!("{EXPLORE_URL}{id}")))
    });
    registry.register_scalar("dbo.fDistanceArcMinEq", |args| {
        let ra1 = arg_f64(args, 0, "fDistanceArcMinEq")?;
        let dec1 = arg_f64(args, 1, "fDistanceArcMinEq")?;
        let ra2 = arg_f64(args, 2, "fDistanceArcMinEq")?;
        let dec2 = arg_f64(args, 3, "fDistanceArcMinEq")?;
        Ok(Value::Float(angular_distance_arcmin(ra1, dec1, ra2, dec2)))
    });

    // ----------------------------------------------------------- table-valued
    registry.register_table(
        "spHTM_CoverCircleEq",
        &["htmIDstart", "htmIDend", "full"],
        |_db, args| {
            let ra = arg_f64(args, 0, "spHTM_CoverCircleEq")?;
            let dec = arg_f64(args, 1, "spHTM_CoverCircleEq")?;
            let radius_arcmin = arg_f64(args, 2, "spHTM_CoverCircleEq")?;
            let region = Convex::circle_arcmin(ra, dec, radius_arcmin);
            let ranges = cover(&region);
            let mut rs =
                ResultSet::empty(vec!["htmIDstart".into(), "htmIDend".into(), "full".into()]);
            for r in ranges.ranges() {
                rs.rows.push(vec![
                    Value::Int(r.lo as i64),
                    Value::Int(r.hi as i64),
                    Value::Bool(r.full),
                ]);
            }
            Ok(rs)
        },
    );

    let nearby_columns = ["objID", "run", "camcol", "field", "type", "distance"];
    registry.register_table("fGetNearbyObjEq", &nearby_columns, |db, args| {
        let ra = arg_f64(args, 0, "fGetNearbyObjEq")?;
        let dec = arg_f64(args, 1, "fGetNearbyObjEq")?;
        let radius_arcmin = arg_f64(args, 2, "fGetNearbyObjEq")?;
        nearby_objects(db, ra, dec, radius_arcmin)
    });
    registry.register_table("fGetNearestObjEq", &nearby_columns, |db, args| {
        let ra = arg_f64(args, 0, "fGetNearestObjEq")?;
        let dec = arg_f64(args, 1, "fGetNearestObjEq")?;
        let radius_arcmin = arg_f64(args, 2, "fGetNearestObjEq")?;
        let mut rs = nearby_objects(db, ra, dec, radius_arcmin)?;
        rs.rows.sort_by(|a, b| a[5].total_cmp(&b[5]));
        rs.rows.truncate(1);
        Ok(rs)
    });
    registry.register_table(
        "fGetObjFromRectEq",
        &["objID", "ra", "dec", "type"],
        |db, args| {
            let ra_min = arg_f64(args, 0, "fGetObjFromRectEq")?;
            let ra_max = arg_f64(args, 1, "fGetObjFromRectEq")?;
            let dec_min = arg_f64(args, 2, "fGetObjFromRectEq")?;
            let dec_max = arg_f64(args, 3, "fGetObjFromRectEq")?;
            if ra_min >= ra_max || dec_min >= dec_max {
                return Err(SqlError::Execution(
                    "fGetObjFromRectEq: empty rectangle".into(),
                ));
            }
            let region = Convex::rect(ra_min, ra_max, dec_min, dec_max);
            let candidates = spatial_candidates(db, &region)?;
            let mut rs = ResultSet::empty(vec![
                "objID".into(),
                "ra".into(),
                "dec".into(),
                "type".into(),
            ]);
            for c in candidates {
                if region.contains_radec(c.ra, c.dec) {
                    rs.rows.push(vec![
                        Value::Int(c.obj_id),
                        Value::Float(c.ra),
                        Value::Float(c.dec),
                        Value::Int(c.obj_type),
                    ]);
                }
            }
            Ok(rs)
        },
    );
}

/// A PhotoObj candidate pulled through the HTM index.
struct Candidate {
    obj_id: i64,
    run: i64,
    camcol: i64,
    field: i64,
    obj_type: i64,
    ra: f64,
    dec: f64,
}

/// Objects within `radius_arcmin` of `(ra, dec)`, with exact distances.
fn nearby_objects(
    db: &Database,
    ra: f64,
    dec: f64,
    radius_arcmin: f64,
) -> Result<ResultSet, SqlError> {
    if radius_arcmin <= 0.0 {
        return Err(SqlError::Execution(
            "fGetNearbyObjEq: radius must be positive arcminutes".into(),
        ));
    }
    let region = Convex::circle_arcmin(ra, dec, radius_arcmin);
    let candidates = spatial_candidates(db, &region)?;
    let mut rs = ResultSet::empty(vec![
        "objID".into(),
        "run".into(),
        "camcol".into(),
        "field".into(),
        "type".into(),
        "distance".into(),
    ]);
    for c in candidates {
        let distance = angular_distance_arcmin(ra, dec, c.ra, c.dec);
        if distance <= radius_arcmin {
            rs.rows.push(vec![
                Value::Int(c.obj_id),
                Value::Int(c.run),
                Value::Int(c.camcol),
                Value::Int(c.field),
                Value::Int(c.obj_type),
                Value::Float(distance),
            ]);
        }
    }
    rs.rows.sort_by(|a, b| a[5].total_cmp(&b[5]));
    Ok(rs)
}

/// Pull candidate objects for a region through the `htmID` B-tree (or a full
/// scan when the index is missing, e.g. before the load finishes).
fn spatial_candidates(db: &Database, region: &Convex) -> Result<Vec<Candidate>, SqlError> {
    let table = db.table("PhotoObj")?;
    let schema = table.schema();
    let col = |name: &str| {
        schema
            .column_index(name)
            .ok_or_else(|| SqlError::Plan(format!("PhotoObj lacks column {name}")))
    };
    let (i_obj, i_run, i_camcol, i_field, i_type, i_ra, i_dec) = (
        col("objID")?,
        col("run")?,
        col("camcol")?,
        col("field")?,
        col("type")?,
        col("ra")?,
        col("dec")?,
    );
    let make = |row: &[Value]| Candidate {
        obj_id: row[i_obj].as_i64().unwrap_or(0),
        run: row[i_run].as_i64().unwrap_or(0),
        camcol: row[i_camcol].as_i64().unwrap_or(0),
        field: row[i_field].as_i64().unwrap_or(0),
        obj_type: row[i_type].as_i64().unwrap_or(0),
        ra: row[i_ra].as_f64().unwrap_or(0.0),
        dec: row[i_dec].as_f64().unwrap_or(0.0),
    };
    let htm_index = db
        .indexes_for("PhotoObj")
        .iter()
        .find(|ix| ix.def().key_columns[0].eq_ignore_ascii_case("htmID"));
    let mut out = Vec::new();
    match htm_index {
        Some(index) => {
            let ranges = cover(region);
            for r in ranges.ranges() {
                let lo = IndexKey(vec![Value::Int(r.lo as i64)]);
                // seek_range bounds are inclusive; the cover's hi is
                // exclusive, so subtract one trixel.
                let hi = IndexKey(vec![Value::Int((r.hi - 1) as i64)]);
                for (_, entry) in index.seek_range(Some(&lo), Some(&hi)) {
                    if let Some(row) = table.get(entry.row_id) {
                        out.push(make(&row));
                    }
                }
            }
        }
        None => {
            for (_, row) in table.iter() {
                out.push(make(&row));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::indexes::create_indexes;
    use crate::tables::create_tables;
    use skyserver_htm::{lookup_id, SDSS_DEPTH};

    fn db_with_objects() -> Database {
        let mut db = Database::new("skyserver_test");
        create_tables(&mut db).unwrap();
        // Insert a handful of objects around (185, -0.5).
        let schema = crate::tables::photo_obj_schema();
        let positions = [
            (185.0, -0.5),
            (185.005, -0.5), // 0.3 arcmin away in ra
            (185.0, -0.51),  // 0.6 arcmin away in dec
            (185.2, -0.5),   // 12 arcmin away
            (190.0, 2.0),    // far away
        ];
        db.set_enforce_foreign_keys(false);
        for (i, (ra, dec)) in positions.iter().enumerate() {
            let mut row = Vec::new();
            for c in schema.columns() {
                let v = match c.name.as_str() {
                    "objID" => Value::Int(i as i64 + 1),
                    "ra" => Value::Float(*ra),
                    "dec" => Value::Float(*dec),
                    "htmID" => Value::Int(lookup_id(*ra, *dec, SDSS_DEPTH) as i64),
                    "type" => Value::Int(if i % 2 == 0 { 3 } else { 6 }),
                    "run" | "camcol" | "field" | "fieldID" => Value::Int(1),
                    name if name.starts_with("modelMag")
                        || name.starts_with("psfMag")
                        || name.starts_with("petroMag")
                        || name.starts_with("fiberMag") =>
                    {
                        Value::Float(18.0)
                    }
                    _ => match c.ty {
                        skyserver_storage::DataType::Int => Value::Int(0),
                        skyserver_storage::DataType::Float => Value::Float(0.0),
                        skyserver_storage::DataType::Str => Value::str(""),
                        skyserver_storage::DataType::Bytes => Value::bytes([]),
                        skyserver_storage::DataType::Bool => Value::Bool(false),
                    },
                };
                row.push(v);
            }
            db.insert("PhotoObj", row).unwrap();
        }
        create_indexes(&mut db).unwrap();
        db
    }

    fn registry() -> FunctionRegistry {
        let mut r = FunctionRegistry::new();
        register_functions(&mut r);
        r
    }

    #[test]
    fn scalar_functions_work() {
        let r = registry();
        let f = r.scalar("fPhotoFlags").unwrap();
        assert_eq!(f(&[Value::str("saturated")]).unwrap(), Value::Int(16));
        assert!(f(&[Value::str("bogus")]).is_err());
        let f = r.scalar("fPhotoType").unwrap();
        assert_eq!(f(&[Value::str("galaxy")]).unwrap(), Value::Int(3));
        let f = r.scalar("fGetUrlExpId").unwrap();
        let url = f(&[Value::Int(42)]).unwrap();
        assert!(url.to_string().ends_with("id=42"));
        let f = r.scalar("fDistanceArcMinEq").unwrap();
        let d = f(&[
            Value::Float(185.0),
            Value::Float(0.0),
            Value::Float(185.0),
            Value::Float(1.0),
        ])
        .unwrap();
        assert!((d.as_f64().unwrap() - 60.0).abs() < 1e-6);
    }

    #[test]
    fn nearby_objects_respects_the_radius_and_sorts_by_distance() {
        let db = db_with_objects();
        let r = registry();
        let f = &r.table("fGetNearbyObjEq").unwrap().func;
        let rs = f(
            &db,
            &[Value::Float(185.0), Value::Float(-0.5), Value::Float(1.0)],
        )
        .unwrap();
        // Objects 1 (0'), 2 (~0.3') and 3 (0.6') are within 1 arcminute.
        assert_eq!(rs.len(), 3);
        let d = rs.column_values("distance");
        assert!(d[0].as_f64().unwrap() < d[1].as_f64().unwrap());
        assert!(d[2].as_f64().unwrap() <= 1.0);
        // Wider radius picks up the 12-arcminute neighbour too.
        let rs = f(
            &db,
            &[Value::Float(185.0), Value::Float(-0.5), Value::Float(15.0)],
        )
        .unwrap();
        assert_eq!(rs.len(), 4);
    }

    #[test]
    fn nearest_object_is_the_closest_one() {
        let db = db_with_objects();
        let r = registry();
        let f = &r.table("fGetNearestObjEq").unwrap().func;
        let rs = f(
            &db,
            &[Value::Float(185.004), Value::Float(-0.5), Value::Float(5.0)],
        )
        .unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.cell(0, "objID"), Some(&Value::Int(2)));
    }

    #[test]
    fn rect_function_filters_by_rectangle() {
        let db = db_with_objects();
        let r = registry();
        let f = &r.table("fGetObjFromRectEq").unwrap().func;
        let rs = f(
            &db,
            &[
                Value::Float(184.9),
                Value::Float(185.1),
                Value::Float(-0.6),
                Value::Float(-0.4),
            ],
        )
        .unwrap();
        assert_eq!(rs.len(), 3);
        assert!(f(
            &db,
            &[
                Value::Float(2.0),
                Value::Float(1.0),
                Value::Float(0.0),
                Value::Float(1.0)
            ]
        )
        .is_err());
    }

    #[test]
    fn htm_cover_function_returns_ranges() {
        let db = db_with_objects();
        let r = registry();
        let f = &r.table("spHTM_CoverCircleEq").unwrap().func;
        let rs = f(
            &db,
            &[Value::Float(185.0), Value::Float(-0.5), Value::Float(1.0)],
        )
        .unwrap();
        assert!(!rs.is_empty());
        for row in &rs.rows {
            assert!(row[0].as_i64().unwrap() < row[1].as_i64().unwrap());
        }
    }

    #[test]
    fn bad_arguments_are_rejected() {
        let db = db_with_objects();
        let r = registry();
        let f = &r.table("fGetNearbyObjEq").unwrap().func;
        assert!(f(
            &db,
            &[Value::str("x"), Value::Float(0.0), Value::Float(1.0)]
        )
        .is_err());
        assert!(f(
            &db,
            &[Value::Float(185.0), Value::Float(-0.5), Value::Float(-1.0)]
        )
        .is_err());
    }
}
