//! Foreign-key constraints (§9.1.3).
//!
//! "the database design includes a fairly complete set of foreign key
//! declarations to insure that every profile has an object; every object is
//! within a valid field, and so on.  These integrity constraints are
//! invaluable tools in detecting errors during loading."

use skyserver_storage::{Database, ForeignKey, StorageError};

/// All foreign keys of the schema.
pub fn all_foreign_keys() -> Vec<ForeignKey> {
    let fk =
        |name: &str, table: &str, column: &str, ref_table: &str, ref_column: &str| ForeignKey {
            name: name.to_string(),
            table: table.to_string(),
            columns: vec![column.to_string()],
            ref_table: ref_table.to_string(),
            ref_columns: vec![ref_column.to_string()],
        };
    vec![
        fk("fk_Frame_Field", "Frame", "fieldID", "Field", "fieldID"),
        fk(
            "fk_PhotoObj_Field",
            "PhotoObj",
            "fieldID",
            "Field",
            "fieldID",
        ),
        fk(
            "fk_Profile_PhotoObj",
            "Profile",
            "objID",
            "PhotoObj",
            "objID",
        ),
        fk("fk_SpecObj_Plate", "SpecObj", "plateID", "Plate", "plateID"),
        fk(
            "fk_SpecObj_PhotoObj",
            "SpecObj",
            "objID",
            "PhotoObj",
            "objID",
        ),
        fk(
            "fk_SpecLine_SpecObj",
            "SpecLine",
            "specObjID",
            "SpecObj",
            "specObjID",
        ),
        fk(
            "fk_SpecLineIndex_SpecObj",
            "SpecLineIndex",
            "specObjID",
            "SpecObj",
            "specObjID",
        ),
        fk(
            "fk_xcRedShift_SpecObj",
            "xcRedShift",
            "specObjID",
            "SpecObj",
            "specObjID",
        ),
        fk(
            "fk_elRedShift_SpecObj",
            "elRedShift",
            "specObjID",
            "SpecObj",
            "specObjID",
        ),
        fk(
            "fk_Neighbors_PhotoObj",
            "Neighbors",
            "objID",
            "PhotoObj",
            "objID",
        ),
        fk("fk_USNO_PhotoObj", "USNO", "objID", "PhotoObj", "objID"),
        fk("fk_ROSAT_PhotoObj", "ROSAT", "objID", "PhotoObj", "objID"),
        fk("fk_FIRST_PhotoObj", "FIRST", "objID", "PhotoObj", "objID"),
    ]
}

/// Declare every foreign key on the database.
pub fn create_foreign_keys(db: &mut Database) -> Result<(), StorageError> {
    for fk in all_foreign_keys() {
        db.add_foreign_key(fk)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::create_tables;

    #[test]
    fn foreign_keys_install() {
        let mut db = Database::new("skyserver");
        create_tables(&mut db).unwrap();
        create_foreign_keys(&mut db).unwrap();
        assert_eq!(db.foreign_keys().len(), all_foreign_keys().len());
        assert_eq!(db.foreign_keys_of("SpecObj").len(), 2);
    }

    #[test]
    fn every_fk_references_existing_tables_and_columns() {
        let mut db = Database::new("skyserver");
        create_tables(&mut db).unwrap();
        for fk in all_foreign_keys() {
            let child = db.table(&fk.table).unwrap();
            let parent = db.table(&fk.ref_table).unwrap();
            for c in &fk.columns {
                assert!(
                    child.schema().column(c).is_some(),
                    "{}: bad child column {c}",
                    fk.name
                );
            }
            for c in &fk.ref_columns {
                assert!(
                    parent.schema().column(c).is_some(),
                    "{}: bad parent column {c}",
                    fk.name
                );
            }
        }
    }

    #[test]
    fn profile_and_field_constraints_match_the_paper() {
        // "every profile has an object; every object is within a valid field"
        let fks = all_foreign_keys();
        assert!(fks
            .iter()
            .any(|f| f.table == "Profile" && f.ref_table == "PhotoObj"));
        assert!(fks
            .iter()
            .any(|f| f.table == "PhotoObj" && f.ref_table == "Field"));
    }
}
