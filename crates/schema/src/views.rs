//! Views: the SQL stand-in for the ObjectivityDB sub-classing (§9.1.3).
//!
//! "views are defined on the PhotoObj table: photoPrimary (PhotoObj with
//! flags('primary' & 'OK run')), Star (photoPrimary with type='star'),
//! Galaxy (photoPrimary with type='galaxy').  Most users work in terms of
//! these views rather than the base table."

use skyserver_skygen::{PhotoFlag, PhotoType, SpecClass};
use skyserver_storage::{Database, StorageError};

/// `(name, SQL body, description)` for every view.
pub fn all_views() -> Vec<(String, String, &'static str)> {
    let primary = PhotoFlag::Primary as u64;
    let ok_run = PhotoFlag::OkRun as u64;
    let secondary = PhotoFlag::Secondary as u64;
    let galaxy = PhotoType::Galaxy as i64;
    let star = PhotoType::Star as i64;
    let unknown = PhotoType::Unknown as i64;
    let spec_qso = SpecClass::Qso as i64;
    let spec_hiz = SpecClass::HizQso as i64;
    vec![
        (
            "PhotoPrimary".to_string(),
            format!(
                "select * from PhotoObj where (flags & {primary}) > 0 and (flags & {ok_run}) > 0"
            ),
            "Best (primary) detection of every object from an acceptable run.",
        ),
        (
            "PhotoSecondary".to_string(),
            format!("select * from PhotoObj where (flags & {secondary}) > 0"),
            "Duplicate detections from strip and stripe overlaps.",
        ),
        (
            "Galaxy".to_string(),
            format!("select * from PhotoPrimary where type = {galaxy}"),
            "Primary objects classified as galaxies.",
        ),
        (
            "Star".to_string(),
            format!("select * from PhotoPrimary where type = {star}"),
            "Primary objects classified as stars.",
        ),
        (
            "UnknownObj".to_string(),
            format!("select * from PhotoPrimary where type = {unknown}"),
            "Primary objects with an unknown classification.",
        ),
        (
            "SpecQso".to_string(),
            format!("select * from SpecObj where specClass = {spec_qso} or specClass = {spec_hiz}"),
            "Spectra classified as quasars.",
        ),
    ]
}

/// Register every view on the database.
pub fn create_views(db: &mut Database) -> Result<(), StorageError> {
    for (name, sql, description) in all_views() {
        db.create_view(name, sql, description)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::create_tables;

    #[test]
    fn views_install() {
        let mut db = Database::new("skyserver");
        create_tables(&mut db).unwrap();
        create_views(&mut db).unwrap();
        assert!(db.view("galaxy").is_some());
        assert!(db.view("photoprimary").is_some());
        assert_eq!(db.views().count(), all_views().len());
    }

    #[test]
    fn galaxy_view_builds_on_photo_primary() {
        let (_, sql, _) = all_views()
            .into_iter()
            .find(|(n, _, _)| n == "Galaxy")
            .unwrap();
        assert!(sql.contains("PhotoPrimary"));
        assert!(sql.contains("type = 3"));
    }

    #[test]
    fn primary_view_tests_both_flags() {
        let (_, sql, _) = all_views()
            .into_iter()
            .find(|(n, _, _)| n == "PhotoPrimary")
            .unwrap();
        assert!(sql.contains("& 1"));
        assert!(sql.contains("& 128"));
    }
}
