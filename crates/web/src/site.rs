//! The SkyServer web site: routes and page handlers (§2, §5).
//!
//! The page families mirror Figure 1 of the paper: a famous-places gallery,
//! the navigation (pan/zoom) tool, the object explorer, the SQL search pages
//! with the public limits, the schema browser that feeds SkyServerQA, and
//! the three language branches (English, Japanese, German).

use crate::formats::OutputFormat;
use crate::http::{HttpServer, Request, Response};
use crate::traffic::{LogRecord, Section};
use skyserver::{SkyServer, SkyServerError};
use std::sync::Arc;
use std::sync::Mutex;
use std::time::Instant;

/// The web application: a shared SkyServer plus a request log.
pub struct SkyServerSite {
    sky: Mutex<SkyServer>,
    log: Mutex<Vec<LogRecord>>,
    started: Instant,
    session_counter: Mutex<u64>,
}

/// The language branches of the site (§5: English, German, Japanese).
pub const LANGUAGES: [&str; 3] = ["en", "jp", "de"];

impl SkyServerSite {
    /// Wrap a loaded SkyServer.
    pub fn new(sky: SkyServer) -> Arc<SkyServerSite> {
        Arc::new(SkyServerSite {
            sky: Mutex::new(sky),
            log: Mutex::new(Vec::new()),
            started: Instant::now(),
            session_counter: Mutex::new(0),
        })
    }

    /// The request log accumulated so far (feeds the traffic analyser).
    pub fn request_log(&self) -> Vec<LogRecord> {
        self.log.lock().unwrap().clone()
    }

    /// Start an HTTP server for this site on the given port (0 = ephemeral).
    pub fn serve(self: &Arc<Self>, port: u16) -> std::io::Result<HttpServer> {
        let site = Arc::clone(self);
        HttpServer::start(port, move |req| site.handle(req))
    }

    /// Route one request.
    pub fn handle(&self, req: &Request) -> Response {
        let response = self.route(req);
        self.record(req, response.status == 200);
        response
    }

    fn record(&self, req: &Request, ok: bool) {
        let section = section_of_path(&req.path);
        let mut counter = self.session_counter.lock().unwrap();
        *counter += 1;
        let day = (self.started.elapsed().as_secs() / 86_400) as u32;
        self.log.lock().unwrap().push(LogRecord {
            day,
            session: *counter,
            section,
            page_view: ok,
            crawler: false,
        });
    }

    fn route(&self, req: &Request) -> Response {
        let path = req.path.trim_end_matches('/');
        // Language branches share the same handlers.
        let normalized = LANGUAGES
            .iter()
            .find_map(|lang| path.strip_prefix(&format!("/{lang}")))
            .unwrap_or(path);
        match normalized {
            "" => self.home(path),
            "/tools/places" | "/tools/places.asp" => self.famous_places(),
            "/tools/explore" | "/tools/explore/obj.asp" => self.explore(req),
            "/tools/navi" | "/tools/navi.asp" => self.navigator(req),
            "/tools/search/x_sql" | "/tools/search/x_sql.asp" => self.sql_search(req),
            "/help/browser" | "/help/docs/browser.asp" | "/skyserverqa/metadata" => {
                self.schema_browser()
            }
            "/traffic" => self.traffic_page(),
            _ => Response::not_found(&req.path),
        }
    }

    fn home(&self, path: &str) -> Response {
        let lang = LANGUAGES
            .iter()
            .find(|l| path.starts_with(&format!("/{l}")))
            .copied()
            .unwrap_or("en");
        let greeting = match lang {
            "jp" => "SDSS SkyServer e youkoso",
            "de" => "Willkommen beim SDSS SkyServer",
            _ => "Welcome to the SDSS SkyServer",
        };
        Response::html(format!(
            "<html><head><title>SkyServer</title></head><body>\
             <h1>{greeting}</h1>\
             <ul>\
             <li><a href=\"/{lang}/tools/places\">Famous places</a></li>\
             <li><a href=\"/{lang}/tools/navi?ra=181&dec=-0.8&zoom=1\">Navigate the sky</a></li>\
             <li><a href=\"/{lang}/tools/search/x_sql?cmd=select top 10 objID, ra, dec from PhotoObj\">SQL search</a></li>\
             <li><a href=\"/{lang}/help/browser\">Schema browser</a></li>\
             </ul></body></html>"
        ))
    }

    fn famous_places(&self) -> Response {
        let mut sky = self.sky.lock().unwrap();
        match sky.query("select top 12 objID, ra, dec, modelMag_r from Galaxy order by modelMag_r")
        {
            Ok(result) => {
                let mut html = String::from("<html><body><h1>Famous places</h1><ul>");
                for row in &result.rows {
                    let id = row[0].as_i64().unwrap_or(0);
                    html.push_str(&format!(
                        "<li>Galaxy {id} at ({:.4}, {:.4}) r={:.2} \
                         <a href=\"/en/tools/explore?id={id}\">explore</a></li>",
                        row[1].as_f64().unwrap_or(0.0),
                        row[2].as_f64().unwrap_or(0.0),
                        row[3].as_f64().unwrap_or(0.0),
                    ));
                }
                html.push_str("</ul></body></html>");
                Response::html(html)
            }
            Err(e) => sql_error(e),
        }
    }

    fn explore(&self, req: &Request) -> Response {
        let Some(id) = req.param("id").and_then(|s| s.parse::<i64>().ok()) else {
            return Response::bad_request("explore needs an integer ?id= parameter");
        };
        let mut sky = self.sky.lock().unwrap();
        match sky.explore(id) {
            Ok(summary) => Response::ok(
                "application/json; charset=utf-8",
                serde_json::to_vec(&summary).unwrap_or_default(),
            ),
            Err(SkyServerError::NotFound(_)) => Response::not_found(&format!("object {id}")),
            Err(e) => sql_error(e),
        }
    }

    fn navigator(&self, req: &Request) -> Response {
        let ra = req
            .param("ra")
            .and_then(|s| s.parse::<f64>().ok())
            .unwrap_or(181.0);
        let dec = req
            .param("dec")
            .and_then(|s| s.parse::<f64>().ok())
            .unwrap_or(-0.8);
        let zoom = req
            .param("zoom")
            .and_then(|s| s.parse::<u32>().ok())
            .unwrap_or(1)
            .min(3);
        // The visible radius shrinks as the user zooms in (4 levels, §5).
        let radius_arcmin = 60.0 / f64::from(1 << zoom);
        let mut sky = self.sky.lock().unwrap();
        match sky.nearby_objects(ra, dec, radius_arcmin) {
            Ok(result) => {
                let objects: Vec<serde_json::Value> = result
                    .rows
                    .iter()
                    .map(|r| {
                        serde_json::json!({
                            "objID": r[0].as_i64(),
                            "type": r[1].as_i64(),
                            "distance_arcmin": r[2].as_f64(),
                        })
                    })
                    .collect();
                Response::ok(
                    "application/json; charset=utf-8",
                    serde_json::json!({
                        "ra": ra,
                        "dec": dec,
                        "zoom": zoom,
                        "radius_arcmin": radius_arcmin,
                        "objects": objects,
                    })
                    .to_string(),
                )
            }
            Err(e) => sql_error(e),
        }
    }

    fn sql_search(&self, req: &Request) -> Response {
        let Some(sql) = req.param("cmd") else {
            return Response::bad_request("the SQL search page needs a ?cmd= parameter");
        };
        let format = OutputFormat::parse(req.param("format").unwrap_or("grid"));
        let mut sky = self.sky.lock().unwrap();
        // The public page enforces the 1,000 row / 30 second limits (§4).
        match sky.execute_public(sql) {
            Ok(outcome) => {
                let mut body = format.render(&outcome.result);
                if outcome.result.truncated && format == OutputFormat::Grid {
                    body.push_str("\n(truncated to the public 1000-row limit)\n");
                }
                Response::ok(format.content_type(), body)
            }
            Err(e) => sql_error(e),
        }
    }

    fn schema_browser(&self) -> Response {
        let sky = self.sky.lock().unwrap();
        let description = sky.schema_description();
        Response::ok(
            "application/json; charset=utf-8",
            serde_json::to_vec(&description).unwrap_or_default(),
        )
    }

    fn traffic_page(&self) -> Response {
        let log = self.log.lock().unwrap();
        Response::ok(
            "application/json; charset=utf-8",
            serde_json::json!({ "requests": log.len() }).to_string(),
        )
    }
}

fn sql_error(e: SkyServerError) -> Response {
    Response::bad_request(&format!("query failed: {e}"))
}

fn section_of_path(path: &str) -> Section {
    if path.starts_with("/jp") {
        Section::Japanese
    } else if path.starts_with("/de") {
        Section::German
    } else if path.contains("/proj/") || path.contains("/edu") {
        Section::Education
    } else if path.contains("places") {
        Section::FamousPlaces
    } else if path.contains("navi") {
        Section::Navigator
    } else if path.contains("explore") {
        Section::Explorer
    } else if path.contains("x_sql") || path.contains("search") {
        Section::SqlSearch
    } else if path.contains("help") || path.contains("browser") {
        Section::Help
    } else {
        Section::Home
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::parse_request;
    use skyserver::SkyServerBuilder;

    fn site() -> Arc<SkyServerSite> {
        let sky = SkyServerBuilder::new().tiny().build().unwrap();
        SkyServerSite::new(sky)
    }

    fn get(site: &SkyServerSite, path_and_query: &str) -> Response {
        let raw = format!("GET {path_and_query} HTTP/1.1\r\n");
        site.handle(&parse_request(&raw).unwrap())
    }

    #[test]
    fn home_pages_in_three_languages() {
        let site = site();
        for lang in LANGUAGES {
            let r = get(&site, &format!("/{lang}/"));
            assert_eq!(r.status, 200, "language {lang}");
        }
        assert_eq!(get(&site, "/").status, 200);
        assert_eq!(get(&site, "/nonexistent").status, 404);
    }

    #[test]
    fn famous_places_lists_bright_galaxies() {
        let site = site();
        let r = get(&site, "/en/tools/places");
        assert_eq!(r.status, 200);
        let html = String::from_utf8(r.body).unwrap();
        assert!(html.contains("explore?id="));
    }

    #[test]
    fn sql_search_respects_format_and_limits() {
        let site = site();
        let r = get(
            &site,
            "/en/tools/search/x_sql?cmd=select+count(*)+as+n+from+PhotoObj&format=json",
        );
        assert_eq!(r.status, 200);
        assert!(r.content_type.contains("json"));
        let json: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
        assert_eq!(json["columns"][0], "n");
        // A big query gets truncated by the public limit.
        let r = get(
            &site,
            "/en/tools/search/x_sql?cmd=select+objID+from+PhotoObj&format=json",
        );
        let json: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
        assert_eq!(json["rows"].as_array().unwrap().len(), 1000);
        assert_eq!(json["truncated"], serde_json::json!(true));
        // Malformed SQL is a 400, not a panic.
        let r = get(&site, "/en/tools/search/x_sql?cmd=selec+nonsense");
        assert_eq!(r.status, 400);
        let r = get(&site, "/en/tools/search/x_sql");
        assert_eq!(r.status, 400);
    }

    #[test]
    fn explorer_and_navigator_return_json() {
        let site = site();
        // Find a real object id through the SQL endpoint first.
        let r = get(
            &site,
            "/en/tools/search/x_sql?cmd=select+top+1+objID+from+PhotoObj&format=json",
        );
        let json: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
        let id = json["rows"][0][0].as_i64().unwrap();
        let r = get(&site, &format!("/en/tools/explore?id={id}"));
        assert_eq!(r.status, 200);
        let explored: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
        assert_eq!(explored["obj_id"].as_i64().unwrap(), id);
        assert!(explored["attributes"].as_array().unwrap().len() > 50);
        // Unknown object and bad parameter.
        assert_eq!(get(&site, "/en/tools/explore?id=-5").status, 404);
        assert_eq!(get(&site, "/en/tools/explore").status, 400);
        // Navigator.
        let r = get(&site, "/en/tools/navi?ra=181&dec=-0.8&zoom=2");
        assert_eq!(r.status, 200);
        let nav: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
        assert_eq!(nav["zoom"], serde_json::json!(2));
        assert!(nav["objects"].is_array());
    }

    #[test]
    fn schema_browser_feeds_skyserverqa() {
        let site = site();
        let r = get(&site, "/skyserverqa/metadata");
        assert_eq!(r.status, 200);
        let json: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
        let tables = json["tables"].as_array().unwrap();
        assert!(tables.iter().any(|t| t["name"] == "PhotoObj"));
        assert!(json["views"].as_array().unwrap().len() >= 5);
        assert!(!json["functions"].as_array().unwrap().is_empty());
    }

    #[test]
    fn requests_are_logged_for_the_traffic_analyser() {
        let site = site();
        get(&site, "/en/tools/places");
        get(&site, "/jp/");
        get(&site, "/en/tools/search/x_sql?cmd=select+1");
        let log = site.request_log();
        assert_eq!(log.len(), 3);
        assert_eq!(log[0].section, Section::FamousPlaces);
        assert_eq!(log[1].section, Section::Japanese);
        assert_eq!(log[2].section, Section::SqlSearch);
    }

    #[test]
    fn end_to_end_over_a_real_socket() {
        let site = site();
        let server = site.serve(0).unwrap();
        let (status, body) = crate::http::http_get(
            server.addr(),
            "/en/tools/search/x_sql?cmd=select+count(*)+from+Plate&format=csv",
        )
        .unwrap();
        assert_eq!(status, 200);
        assert!(body.lines().count() >= 2);
        server.stop();
    }
}
