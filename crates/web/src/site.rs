//! The SkyServer web site: routes and page handlers (§2, §5).
//!
//! The page families mirror Figure 1 of the paper: a famous-places gallery,
//! the navigation (pan/zoom) tool, the object explorer, the SQL search pages
//! with the public limits, the schema browser that feeds SkyServerQA, the
//! three language branches (English, Japanese, German), and the batch-query
//! job endpoints (`/x_job/*` plus the `/tools/jobs` "My Jobs" page).
//!
//! Concurrency model: the site holds `Arc<RwLock<Arc<SkyServer>>>`.  Request
//! handlers clone the inner `Arc` snapshot and immediately drop the lock,
//! then run the query on the engine's shared `&self` read path — so any
//! number of requests execute concurrently and a long query never blocks the
//! others.  Batch jobs snapshot the same slot from their own worker pool
//! (see [`crate::jobs`]).  Writers (data loads, DDL, release publishes) go
//! through [`SkyServerSite::with_admin`], which forks the catalog
//! copy-on-write, mutates the fork off to the side and swaps it in
//! atomically — in-flight queries and running batch jobs finish on their
//! pinned snapshot, nothing drains and nothing is cancelled.

use crate::api;
use crate::api::handlers::{
    cancel_job, cone_payload, explore_payload, job_result_payload, job_status_json,
    job_status_payload, json_document, public_query_on, submit_job, ANONYMOUS,
};
use crate::api::{ApiError, ApiRequest, Zoom};
use crate::cache::{normalize_sql, CachedBody, ResultCache, RowCache};
use crate::formats::OutputFormat;
use crate::governor::{Governor, GovernorConfig};
use crate::http::{HttpServer, Request, Response};
use crate::jobs::{JobQueue, JobQueueConfig, JobRunner};
use crate::traffic::{LogRecord, Section};
use skyserver::{SkyServer, Value};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// How many rendered SQL results the site keeps (the paper's popular-places
/// pages are a handful of hot queries, so a small cache covers them).
const RESULT_CACHE_CAPACITY: usize = 128;

/// Byte budget of the rendered-result cache: entry count alone does not
/// bound memory when individual bodies approach the 1 MiB per-entry cap.
const RESULT_CACHE_BYTE_BUDGET: usize = 8 << 20;

/// The web application: a shared SkyServer plus a request log, a
/// rendered-result cache and the batch-query job tier.
pub struct SkyServerSite {
    /// Shared with the job-queue runner closure: batch workers snapshot
    /// the same catalog slot the request handlers do.
    sky: Arc<RwLock<Arc<SkyServer>>>,
    log: Mutex<Vec<LogRecord>>,
    started: Instant,
    session_counter: AtomicU64,
    cache: ResultCache,
    /// Materialized result sets for the API's cursor walks: page N+1 of a
    /// paginated query reads memory instead of re-running the scan.
    rows: RowCache,
    jobs: Arc<JobQueue>,
    /// Admission control + deadline policy for the public query path.
    governor: Governor,
    /// Serialises administrative writes: each one forks the current
    /// catalog, mutates the fork off to the side and swaps it in
    /// atomically, so admins must not interleave their forks.
    admin: Mutex<()>,
    /// Live-head catalog generation, bumped on every admin swap.  Head
    /// cache keys embed it, so an in-flight request that renders from the
    /// *old* catalog can only insert under the old generation — its entry
    /// is unreadable after the swap instead of serving stale data.
    generation: AtomicU64,
}

/// The language branches of the site (§5: English, German, Japanese).
pub const LANGUAGES: [&str; 3] = ["en", "jp", "de"];

impl SkyServerSite {
    /// Wrap a loaded SkyServer.
    pub fn new(sky: SkyServer) -> Arc<SkyServerSite> {
        SkyServerSite::new_with_cache(sky, RESULT_CACHE_CAPACITY)
    }

    /// Wrap a loaded SkyServer with an explicit result-cache capacity
    /// (0 disables the cache — used by the benchmark's no-cache baseline).
    pub fn new_with_cache(sky: SkyServer, cache_capacity: usize) -> Arc<SkyServerSite> {
        SkyServerSite::new_with(sky, cache_capacity, JobQueueConfig::default())
    }

    /// Wrap a loaded SkyServer with explicit cache and job-tier settings.
    pub fn new_with(
        sky: SkyServer,
        cache_capacity: usize,
        job_config: JobQueueConfig,
    ) -> Arc<SkyServerSite> {
        SkyServerSite::new_with_governor(sky, cache_capacity, job_config, GovernorConfig::default())
    }

    /// Wrap a loaded SkyServer with explicit cache, job-tier and
    /// admission-control settings (the overload benchmark and the chaos
    /// suite shrink the in-flight cap and the deadline).
    pub fn new_with_governor(
        sky: SkyServer,
        cache_capacity: usize,
        job_config: JobQueueConfig,
        governor_config: GovernorConfig,
    ) -> Arc<SkyServerSite> {
        let sky = Arc::new(RwLock::new(Arc::new(sky)));
        // Batch jobs run against the same catalog slot the handlers read:
        // each job snapshots the current Arc, so jobs see a consistent
        // catalog for their whole run and admin writes wait for them
        // (exactly like in-flight interactive requests).
        let job_slot = Arc::clone(&sky);
        let runner: Arc<JobRunner> = Arc::new(move |sql, limits, monitor| {
            let snapshot = job_slot
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .clone();
            snapshot
                .execute_batch(sql, limits, monitor)
                .map(|outcome| outcome.result)
        });
        Arc::new(SkyServerSite {
            sky,
            log: Mutex::new(Vec::new()),
            started: Instant::now(),
            session_counter: AtomicU64::new(0),
            cache: ResultCache::with_byte_budget(cache_capacity, RESULT_CACHE_BYTE_BUDGET),
            rows: RowCache::new(cache_capacity, RESULT_CACHE_BYTE_BUDGET),
            jobs: JobQueue::start(job_config, runner),
            governor: Governor::new(governor_config),
            admin: Mutex::new(()),
            generation: AtomicU64::new(0),
        })
    }

    /// The admission controller over the public query path.
    pub fn governor(&self) -> &Governor {
        &self.governor
    }

    /// The batch-query job tier (submit/status/fetch/cancel also have HTTP
    /// endpoints under `/x_job/`).
    pub fn jobs(&self) -> &JobQueue {
        &self.jobs
    }

    /// A read snapshot of the server (shared with the API handler layer).
    /// The returned `Arc` stays valid for the whole request even if an
    /// admin swap happens concurrently.
    pub(crate) fn sky(&self) -> Arc<SkyServer> {
        self.sky
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// The materialized-rows cache backing API cursor walks.
    pub(crate) fn rows_cache(&self) -> &RowCache {
        &self.rows
    }

    /// The cache-key prefix for a request pinned to `release` (`None` =
    /// the live head).  Head keys embed the catalog generation, so a
    /// publish makes every pre-publish head entry unreadable; pinned keys
    /// are generation-free — a published release is immutable, its cached
    /// renderings never go stale.
    pub(crate) fn release_tag(&self, release: Option<&str>) -> String {
        match release {
            Some(r) => format!("rel:{}", r.to_ascii_lowercase()),
            None => format!("rel:head:{}", self.generation.load(Ordering::Acquire)),
        }
    }

    /// Invalidate the live-head cache entries after an admin swap.  The
    /// generation bump is the correctness mechanism (stale keys become
    /// unreadable even if a slow request inserts one afterwards); the
    /// retain pass just frees their memory early.  Entries pinned to a
    /// published release survive — releases are immutable.
    fn invalidate_head_entries(&self) {
        self.generation.fetch_add(1, Ordering::AcqRel);
        self.cache.retain(|key| !key.starts_with("rel:head:"));
        self.rows.retain(|key| !key.starts_with("rel:head:"));
    }

    /// Run an administrative write (data load, DDL, `PUBLISH RELEASE`)
    /// and publish the result atomically.  The write builds the **next**
    /// catalog off to the side: the current catalog is forked
    /// copy-on-write (metadata cost only — every immutable segment and
    /// index is shared), `f` mutates the fork, and the serving slot swaps
    /// to it in one pointer store.
    ///
    /// Nothing drains and nothing is cancelled: in-flight interactive
    /// queries and **running batch jobs** hold `Arc` snapshots of the old
    /// catalog and simply finish on it — readers never observe a
    /// half-applied write and a minutes-long batch scan never blocks (or
    /// is sacrificed to) an admin write.  Head-release cache entries are
    /// invalidated via a generation bump; entries pinned to a published
    /// release survive.
    pub fn with_admin<R>(&self, f: impl FnOnce(&mut SkyServer) -> R) -> R {
        // Serialise admins so no fork can lose a concurrent admin's write.
        let _admin = self
            .admin
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut next = self.sky().fork();
        let result = f(&mut next);
        let mut slot = self
            .sky
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *slot = Arc::new(next);
        drop(slot);
        self.invalidate_head_entries();
        result
    }

    /// Replace the served catalog wholesale (e.g. after an offline
    /// rebuild).  Atomic like [`SkyServerSite::with_admin`]: the slot
    /// swaps in one pointer store, in-flight requests and running batch
    /// jobs finish on their old snapshot, and only head-release cache
    /// entries are invalidated.
    pub fn replace(&self, sky: SkyServer) {
        let _admin = self
            .admin
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut slot = self
            .sky
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *slot = Arc::new(sky);
        drop(slot);
        self.invalidate_head_entries();
    }

    /// Result-cache hit/miss counters.
    pub fn cache_stats(&self) -> crate::cache::CacheStats {
        self.cache.stats()
    }

    /// The request log accumulated so far (feeds the traffic analyser).
    pub fn request_log(&self) -> Vec<LogRecord> {
        self.log
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// Start an HTTP server for this site on the given port (0 = ephemeral).
    pub fn serve(self: &Arc<Self>, port: u16) -> std::io::Result<HttpServer> {
        self.serve_with(port, crate::http::ServerConfig::default())
    }

    /// Start an HTTP server with an explicit serving configuration (worker
    /// pool size, keep-alive and header limits).
    pub fn serve_with(
        self: &Arc<Self>,
        port: u16,
        config: crate::http::ServerConfig,
    ) -> std::io::Result<HttpServer> {
        let site = Arc::clone(self);
        HttpServer::start_with(port, config, move |req| site.handle(req))
    }

    /// Route one request.
    pub fn handle(&self, req: &Request) -> Response {
        let response = self.route(req);
        self.record(req, response.status);
        response
    }

    fn record(&self, req: &Request, status: u16) {
        let section = section_of_path(&req.path);
        let session = self.session_counter.fetch_add(1, Ordering::Relaxed) + 1;
        let day = (self.started.elapsed().as_secs() / 86_400) as u32;
        self.log
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(LogRecord {
                day,
                session,
                section,
                // API traffic is machine clients, never page views; its
                // non-200 responses are counted via `status` instead.
                page_view: status == 200 && section != Section::Api,
                crawler: false,
                status,
            });
    }

    fn route(&self, req: &Request) -> Response {
        let path = req.path.trim_end_matches('/');
        // The programmatic surface dispatches through the typed router
        // (no language branches there: the API speaks JSON, not prose).
        if path == "/api" || path.starts_with("/api/") {
            return api::dispatch(self, req);
        }
        // The legacy pages are GET-only (the transport forwards every
        // method so the API above can answer with its envelope).
        if req.method != "GET" {
            return Response::with_status(
                405,
                &format!("method {} is not allowed on this page", req.method),
            );
        }
        // Language branches share the same handlers.
        let normalized = LANGUAGES
            .iter()
            .find_map(|lang| path.strip_prefix(&format!("/{lang}")))
            .unwrap_or(path);
        match normalized {
            "" => self.home(path),
            "/tools/places" | "/tools/places.asp" => self.famous_places(),
            "/tools/explore" | "/tools/explore/obj.asp" => self.explore(req),
            "/tools/navi" | "/tools/navi.asp" => self.navigator(req),
            "/tools/search/x_sql" | "/tools/search/x_sql.asp" => self.sql_search(req),
            "/help/browser" | "/help/docs/browser.asp" | "/skyserverqa/metadata" => {
                self.schema_browser()
            }
            "/traffic" => self.traffic_page(),
            "/x_job/submit" => self.job_submit(req),
            "/x_job/status" => self.job_status(req),
            "/x_job/fetch" => self.job_fetch(req),
            "/x_job/cancel" => self.job_cancel(req),
            "/tools/jobs" => self.my_jobs(req),
            _ => Response::not_found(&req.path),
        }
    }

    fn home(&self, path: &str) -> Response {
        let lang = LANGUAGES
            .iter()
            .find(|l| path.starts_with(&format!("/{l}")))
            .copied()
            .unwrap_or("en");
        let greeting = match lang {
            "jp" => "SDSS SkyServer e youkoso",
            "de" => "Willkommen beim SDSS SkyServer",
            _ => "Welcome to the SDSS SkyServer",
        };
        Response::html(format!(
            "<html><head><title>SkyServer</title></head><body>\
             <h1>{greeting}</h1>\
             <ul>\
             <li><a href=\"/{lang}/tools/places\">Famous places</a></li>\
             <li><a href=\"/{lang}/tools/navi?ra=181&dec=-0.8&zoom=1\">Navigate the sky</a></li>\
             <li><a href=\"/{lang}/tools/search/x_sql?cmd=select top 10 objID, ra, dec from PhotoObj\">SQL search</a></li>\
             <li><a href=\"/{lang}/tools/jobs\">My Jobs (batch queries)</a></li>\
             <li><a href=\"/{lang}/help/browser\">Schema browser</a></li>\
             </ul></body></html>"
        ))
    }

    fn famous_places(&self) -> Response {
        let sky = self.sky();
        match sky.query("select top 12 objID, ra, dec, modelMag_r from Galaxy order by modelMag_r")
        {
            Ok(result) => {
                let mut html = String::from("<html><body><h1>Famous places</h1><ul>");
                let f64_at =
                    |row: &[Value], i: usize| row.get(i).and_then(Value::as_f64).unwrap_or(0.0);
                for row in &result.rows {
                    let id = row.first().and_then(Value::as_i64).unwrap_or(0);
                    html.push_str(&format!(
                        "<li>Galaxy {id} at ({:.4}, {:.4}) r={:.2} \
                         <a href=\"/en/tools/explore?id={id}\">explore</a></li>",
                        f64_at(row, 1),
                        f64_at(row, 2),
                        f64_at(row, 3),
                    ));
                }
                html.push_str("</ul></body></html>");
                Response::html(html)
            }
            Err(e) => legacy_error_with_prefix("query failed: ", &ApiError::from(e)),
        }
    }

    fn explore(&self, req: &Request) -> Response {
        // A thin adapter over the API's typed operation: the same
        // extractor (so `?id=abc` is a clean 400, not a silent miss) and
        // the same payload; only the error rendering is the legacy
        // plain-text shape.
        let params = ApiRequest::legacy(req);
        let id: i64 = match params.require("id") {
            Ok(id) => id,
            Err(e) => return legacy_error(&e),
        };
        let release = req.param("release");
        match explore_payload(self, id, release).and_then(|summary| json_document(&summary)) {
            Ok(response) => response,
            Err(e) => legacy_error(&e),
        }
    }

    fn navigator(&self, req: &Request) -> Response {
        // Typed extraction with the legacy defaults for *absent* params;
        // malformed or out-of-range values are a 400 with a readable
        // message (the page used to clamp/default silently and render
        // the wrong sky position).
        let params = ApiRequest::legacy(req);
        let parsed = (|| -> Result<(f64, f64, u32), ApiError> {
            let ra = params.optional::<f64>("ra")?.unwrap_or(181.0);
            api::check_range("ra", ra, 0.0, 360.0)?;
            let dec = params.optional::<f64>("dec")?.unwrap_or(-0.8);
            api::check_range("dec", dec, -90.0, 90.0)?;
            let Zoom(zoom) = params.optional::<Zoom>("zoom")?.unwrap_or(Zoom(1));
            Ok((ra, dec, zoom))
        })();
        let (ra, dec, zoom) = match parsed {
            Ok(p) => p,
            Err(e) => return legacy_error(&e),
        };
        // The visible radius shrinks as the user zooms in (4 levels, §5).
        let radius_arcmin = 60.0 / f64::from(1 << zoom);
        match cone_payload(self, ra, dec, radius_arcmin, None) {
            Ok(result) => {
                let objects: Vec<serde_json::Value> = result
                    .rows
                    .iter()
                    .map(|r| {
                        serde_json::json!({
                            "objID": r.first().and_then(Value::as_i64),
                            "type": r.get(1).and_then(Value::as_i64),
                            "distance_arcmin": r.get(2).and_then(Value::as_f64),
                        })
                    })
                    .collect();
                Response::ok(
                    "application/json; charset=utf-8",
                    serde_json::json!({
                        "ra": ra,
                        "dec": dec,
                        "zoom": zoom,
                        "radius_arcmin": radius_arcmin,
                        "objects": objects,
                    })
                    .to_string(),
                )
            }
            Err(e) => legacy_error(&e),
        }
    }

    fn sql_search(&self, req: &Request) -> Response {
        let Some(sql) = req.param("cmd") else {
            return Response::bad_request("the SQL search page needs a ?cmd= parameter");
        };
        // The legacy page keeps the forgiving format fallback (unknown
        // names render as the grid — existing links must keep working);
        // `/api/v1/query` is the strict surface.
        let format = OutputFormat::parse(req.param("format").unwrap_or("grid"));
        // `?release=drN` pins the page to a published data release; the
        // cache key carries the release tag so a pinned rendering survives
        // later publishes while head renderings are invalidated.
        let release = req.param("release");
        let cache_key = format!(
            "{}|{:?}|{}",
            self.release_tag(release),
            format,
            normalize_sql(sql)
        );
        if let Some(cached) = self.cache.get(&cache_key) {
            return Response::ok(&cached.content_type, cached.body.clone());
        }
        // Same typed operation as the API's /query handler: the public
        // 1,000 row / 30 second limits on the engine's shared read path.
        match public_query_on(self, sql, release) {
            Ok(outcome) => {
                let mut body = format.render(&outcome.result);
                if outcome.result.truncated && format == OutputFormat::Grid {
                    body.push_str("\n(truncated to the public 1000-row limit)\n");
                }
                self.cache.insert(
                    cache_key,
                    CachedBody {
                        content_type: format.content_type().to_string(),
                        body: body.clone().into_bytes(),
                    },
                );
                Response::ok(format.content_type(), body)
            }
            Err(e) => legacy_error_with_prefix("query failed: ", &e),
        }
    }

    fn schema_browser(&self) -> Response {
        let sky = self.sky();
        let description = sky.schema_description();
        // The QA page carries the schema plus the serving-tier health
        // numbers: result-cache hits/misses and engine counters.
        let mut json = serde_json::to_value(&description);
        if let serde_json::Value::Object(map) = &mut json {
            map.insert(
                "result_cache".to_string(),
                serde_json::to_value(&self.cache.stats()),
            );
            map.insert(
                "row_cache".to_string(),
                serde_json::to_value(&self.rows.stats()),
            );
            map.insert(
                "engine".to_string(),
                serde_json::to_value(&sky.engine_stats()),
            );
            map.insert(
                "governor".to_string(),
                serde_json::to_value(&self.governor.stats()),
            );
        }
        Response::ok("application/json; charset=utf-8", json.to_string())
    }

    fn traffic_page(&self) -> Response {
        let log = self
            .log
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // API traffic is attributed separately from page views, and its
        // structured error responses separately again (§7's taxonomy
        // gains a machine-client column).
        let api_hits = log.iter().filter(|r| r.section == Section::Api).count();
        let api_errors = log
            .iter()
            .filter(|r| r.section == Section::Api && r.status != 200 && r.status != 201)
            .count();
        Response::ok(
            "application/json; charset=utf-8",
            serde_json::json!({
                "requests": log.len(),
                "api_hits": api_hits,
                "api_errors": api_errors,
            })
            .to_string(),
        )
    }

    // ----------------------------------------------------------------------
    // The batch-query job endpoints (the CasJobs surface).
    // ----------------------------------------------------------------------

    /// `/x_job/submit?cmd=...[&submitter=...]`: enqueue a read-only script
    /// as a batch job and return its id.  Thin adapter over the API's
    /// job-submission operation (`POST /api/v1/jobs` is the REST shape).
    fn job_submit(&self, req: &Request) -> Response {
        let Some(sql) = req.param("cmd") else {
            return Response::bad_request("job submission needs a ?cmd= parameter");
        };
        let submitter = req.param("submitter").unwrap_or(ANONYMOUS);
        match submit_job(self, submitter, sql) {
            Ok(id) => Response::ok(
                "application/json; charset=utf-8",
                serde_json::json!({ "job_id": id, "state": "queued" }).to_string(),
            ),
            Err(e) => legacy_error(&e),
        }
    }

    /// `/x_job/status?id=...`: state + progress + queue position.
    fn job_status(&self, req: &Request) -> Response {
        let params = ApiRequest::legacy(req);
        let id: u64 = match params.require("id") {
            Ok(id) => id,
            Err(e) => return legacy_error(&e),
        };
        match job_status_payload(self, id) {
            Ok(status) => Response::ok(
                "application/json; charset=utf-8",
                job_status_json(&status).to_string(),
            ),
            Err(e) => legacy_error(&e),
        }
    }

    /// `/x_job/fetch?id=...[&format=csv|json|xml|fits|grid]`: the stored
    /// result of a finished job, rendered through the shared formatters.
    /// Unknown (or TTL-expired) ids are a 404, matching the status
    /// endpoint; a job in the wrong state for fetching is a 400.
    fn job_fetch(&self, req: &Request) -> Response {
        let params = ApiRequest::legacy(req);
        let id: u64 = match params.require("id") {
            Ok(id) => id,
            Err(e) => return legacy_error(&e),
        };
        let format = OutputFormat::parse(req.param("format").unwrap_or("csv"));
        match job_result_payload(self, id) {
            Ok(result) => Response::ok(format.content_type(), format.render(&result)),
            Err(e) => legacy_error(&e),
        }
    }

    /// `/x_job/cancel?id=...`: cancel a queued or running job.
    fn job_cancel(&self, req: &Request) -> Response {
        let params = ApiRequest::legacy(req);
        let id: u64 = match params.require("id") {
            Ok(id) => id,
            Err(e) => return legacy_error(&e),
        };
        match cancel_job(self, id) {
            Ok(state) => Response::ok(
                "application/json; charset=utf-8",
                serde_json::json!({ "job_id": id, "state": state.as_str() }).to_string(),
            ),
            Err(e) => legacy_error(&e),
        }
    }

    /// `/tools/jobs[?submitter=...]`: the "My Jobs" HTML page.
    fn my_jobs(&self, req: &Request) -> Response {
        let submitter = req.param("submitter");
        let jobs = self.jobs.jobs(submitter);
        let mut html = String::from(
            "<html><head><title>My Jobs</title></head><body><h1>My Jobs</h1>\
             <p>Submit long-running SQL as a batch job: \
             <code>/x_job/submit?cmd=...</code></p>\
             <table border=\"1\"><tr><th>id</th><th>submitter</th><th>state</th>\
             <th>queue</th><th>progress</th><th>rows</th><th>actions</th></tr>",
        );
        for job in &jobs {
            let queue = job
                .queue_position
                .map(|p| format!("#{}", p + 1))
                .unwrap_or_default();
            let rows = job
                .result_rows
                .map(|r| {
                    if job.truncated {
                        format!("{r} (truncated)")
                    } else {
                        r.to_string()
                    }
                })
                .unwrap_or_default();
            let actions = if job.state.is_finished() {
                if job.state == crate::jobs::JobState::Done {
                    format!(
                        "<a href=\"/x_job/fetch?id={}&format=csv\">fetch csv</a>",
                        job.id
                    )
                } else {
                    // Error text can echo attacker-controlled SQL fragments
                    // (string literals survive into parse errors verbatim).
                    html_escape(job.error.as_deref().unwrap_or_default())
                }
            } else {
                format!("<a href=\"/x_job/cancel?id={}\">cancel</a>", job.id)
            };
            html.push_str(&format!(
                "<tr><td><a href=\"/x_job/status?id={id}\">{id}</a></td><td>{submitter}</td>\
                 <td>{state}</td><td>{queue}</td><td>{progress} rows</td><td>{rows}</td>\
                 <td>{actions}</td></tr>",
                id = job.id,
                submitter = html_escape(&job.submitter),
                state = job.state,
                progress = job.rows_processed,
            ));
        }
        html.push_str("</table></body></html>");
        Response::html(html)
    }
}

impl Drop for SkyServerSite {
    fn drop(&mut self) {
        // Stop the batch workers (cancelling any running scan); without
        // this, worker threads holding `Arc<JobQueue>` would outlive the
        // site.
        self.jobs.shutdown();
    }
}

/// User-supplied strings on the My Jobs page share the formats module's
/// element-content escaper.
use crate::formats::escape_xml as html_escape;

/// Render a structured [`ApiError`] in the legacy plain-text shape the
/// `.asp`-era pages answer with.  The legacy status vocabulary is
/// narrower than the API's: resources keep 404, quotas keep 429 and
/// overload keeps 503 (both with a `Retry-After` hint, like the API
/// envelope), but every other failure class (408 timeout, 422 SQL, 409
/// state conflicts, 403 read-only ...) collapses to the historical 400
/// so existing clients and tests see exactly the old contract.
fn legacy_error(e: &ApiError) -> Response {
    legacy_error_with_prefix("", e)
}

/// [`legacy_error`] with a message prefix (the SQL page has always said
/// "query failed: ...").
fn legacy_error_with_prefix(prefix: &str, e: &ApiError) -> Response {
    let status = match e.status {
        404 => 404,
        429 => 429,
        500 => 500,
        503 => 503,
        _ => 400,
    };
    let response = Response::with_status(status, &format!("{prefix}{}", e.message));
    if status == 429 || status == 503 {
        return response.with_header("Retry-After", crate::api::RETRY_AFTER_SECONDS);
    }
    response
}

fn section_of_path(path: &str) -> Section {
    if path == "/api" || path.starts_with("/api/") {
        Section::Api
    } else if path.starts_with("/jp") {
        Section::Japanese
    } else if path.starts_with("/de") {
        Section::German
    } else if path.contains("/proj/") || path.contains("/edu") {
        Section::Education
    } else if path.contains("x_job") || path.contains("/tools/jobs") {
        Section::BatchJobs
    } else if path.contains("places") {
        Section::FamousPlaces
    } else if path.contains("navi") {
        Section::Navigator
    } else if path.contains("explore") {
        Section::Explorer
    } else if path.contains("x_sql") || path.contains("search") {
        Section::SqlSearch
    } else if path.contains("help") || path.contains("browser") {
        Section::Help
    } else {
        Section::Home
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{parse_request, HttpClient};
    use skyserver::SkyServerBuilder;

    fn site() -> Arc<SkyServerSite> {
        let sky = SkyServerBuilder::new().tiny().build().unwrap();
        SkyServerSite::new(sky)
    }

    fn get(site: &SkyServerSite, path_and_query: &str) -> Response {
        let raw = format!("GET {path_and_query} HTTP/1.1\r\n");
        site.handle(&parse_request(&raw).unwrap())
    }

    #[test]
    fn home_pages_in_three_languages() {
        let site = site();
        for lang in LANGUAGES {
            let r = get(&site, &format!("/{lang}/"));
            assert_eq!(r.status, 200, "language {lang}");
        }
        assert_eq!(get(&site, "/").status, 200);
        assert_eq!(get(&site, "/nonexistent").status, 404);
    }

    #[test]
    fn famous_places_lists_bright_galaxies() {
        let site = site();
        let r = get(&site, "/en/tools/places");
        assert_eq!(r.status, 200);
        let html = String::from_utf8(r.body).unwrap();
        assert!(html.contains("explore?id="));
    }

    #[test]
    fn sql_search_respects_format_and_limits() {
        let site = site();
        let r = get(
            &site,
            "/en/tools/search/x_sql?cmd=select+count(*)+as+n+from+PhotoObj&format=json",
        );
        assert_eq!(r.status, 200);
        assert!(r.content_type.contains("json"));
        let json: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
        assert_eq!(json["columns"][0], "n");
        // A big query gets truncated by the public limit.
        let r = get(
            &site,
            "/en/tools/search/x_sql?cmd=select+objID+from+PhotoObj&format=json",
        );
        let json: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
        assert_eq!(json["rows"].as_array().unwrap().len(), 1000);
        assert_eq!(json["truncated"], serde_json::json!(true));
        // Malformed SQL is a 400, not a panic.
        let r = get(&site, "/en/tools/search/x_sql?cmd=selec+nonsense");
        assert_eq!(r.status, 400);
        let r = get(&site, "/en/tools/search/x_sql");
        assert_eq!(r.status, 400);
    }

    #[test]
    fn sql_search_rejects_writes_on_the_public_page() {
        let site = site();
        let r = get(&site, "/en/tools/search/x_sql?cmd=drop+table+PhotoObj");
        assert_eq!(r.status, 400);
        let body = String::from_utf8(r.body).unwrap();
        assert!(body.contains("read-only"), "{body}");
        // The table is still there.
        let r = get(
            &site,
            "/en/tools/search/x_sql?cmd=select+count(*)+from+PhotoObj&format=json",
        );
        assert_eq!(r.status, 200);
    }

    #[test]
    fn result_cache_hits_repeat_queries_and_admin_writes_invalidate() {
        let site = site();
        let q = "/en/tools/search/x_sql?cmd=select+count(*)+as+n+from+notes_cache&format=json";
        site.with_admin(|sky| {
            sky.execute("create table notes_cache (id bigint not null)")
                .unwrap();
            sky.execute("insert into notes_cache (id) values (1), (2)")
                .unwrap();
        });
        let r = get(&site, q);
        assert_eq!(r.status, 200);
        let first: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
        assert_eq!(first["rows"][0][0], serde_json::json!(2));
        assert_eq!(site.cache_stats().hits, 0);
        // Same query (different whitespace/case) is a cache hit.
        let r = get(
            &site,
            "/en/tools/search/x_sql?cmd=SELECT++count(*)+AS+n+FROM+notes_cache&format=json",
        );
        assert_eq!(r.status, 200);
        assert_eq!(site.cache_stats().hits, 1);
        // An admin write clears the cache; the next read sees fresh data.
        site.with_admin(|sky| {
            sky.execute("insert into notes_cache (id) values (3)")
                .unwrap();
        });
        let r = get(&site, q);
        let fresh: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
        assert_eq!(fresh["rows"][0][0], serde_json::json!(3));
    }

    #[test]
    fn explorer_and_navigator_return_json() {
        let site = site();
        // Find a real object id through the SQL endpoint first.
        let r = get(
            &site,
            "/en/tools/search/x_sql?cmd=select+top+1+objID+from+PhotoObj&format=json",
        );
        let json: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
        let id = json["rows"][0][0].as_i64().unwrap();
        let r = get(&site, &format!("/en/tools/explore?id={id}"));
        assert_eq!(r.status, 200);
        let explored: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
        assert_eq!(explored["obj_id"].as_i64().unwrap(), id);
        assert!(explored["attributes"].as_array().unwrap().len() > 50);
        // Unknown object and bad parameter.
        assert_eq!(get(&site, "/en/tools/explore?id=-5").status, 404);
        assert_eq!(get(&site, "/en/tools/explore").status, 400);
        // Navigator.
        let r = get(&site, "/en/tools/navi?ra=181&dec=-0.8&zoom=2");
        assert_eq!(r.status, 200);
        let nav: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
        assert_eq!(nav["zoom"], serde_json::json!(2));
        assert!(nav["objects"].is_array());
    }

    #[test]
    fn schema_browser_feeds_skyserverqa() {
        let site = site();
        let r = get(&site, "/skyserverqa/metadata");
        assert_eq!(r.status, 200);
        let json: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
        let tables = json["tables"].as_array().unwrap();
        assert!(tables.iter().any(|t| t["name"] == "PhotoObj"));
        assert!(json["views"].as_array().unwrap().len() >= 5);
        assert!(!json["functions"].as_array().unwrap().is_empty());
        // The serving-tier counters ride along.
        assert!(json["result_cache"]["hits"].is_number());
        assert!(json["result_cache"]["misses"].is_number());
        assert!(json["engine"]["selects"].is_number());
    }

    #[test]
    fn requests_are_logged_for_the_traffic_analyser() {
        let site = site();
        get(&site, "/en/tools/places");
        get(&site, "/jp/");
        get(&site, "/en/tools/search/x_sql?cmd=select+1");
        let log = site.request_log();
        assert_eq!(log.len(), 3);
        assert_eq!(log[0].section, Section::FamousPlaces);
        assert_eq!(log[1].section, Section::Japanese);
        assert_eq!(log[2].section, Section::SqlSearch);
    }

    #[test]
    fn end_to_end_over_a_real_socket() {
        let site = site();
        let server = site.serve(0).unwrap();
        let (status, body) = crate::http::http_get(
            server.addr(),
            "/en/tools/search/x_sql?cmd=select+count(*)+from+Plate&format=csv",
        )
        .unwrap();
        assert_eq!(status, 200);
        assert!(body.lines().count() >= 2);
        server.stop();
    }

    /// The §7 smoke test: ~8 concurrent clients issuing distinct queries
    /// over keep-alive connections against one running site.  Every
    /// response must be correct and the request log must record all of
    /// them (no lost updates).
    #[test]
    fn concurrent_sql_clients_share_the_read_path() {
        let site = site();
        let server = site.serve(0).unwrap();
        let addr = server.addr();
        const CLIENTS: u64 = 8;
        const REQUESTS: u64 = 5;
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                std::thread::spawn(move || {
                    let mut client = HttpClient::connect(addr).unwrap();
                    for r in 0..REQUESTS {
                        // Distinct per-(client, request) queries: TOP n over
                        // the pk index returns exactly n rows.
                        let n = (c * REQUESTS + r) % 9 + 1;
                        let (status, body) = client
                            .get(&format!(
                                "/en/tools/search/x_sql?cmd=select+top+{n}+objID+from+PhotoObj&format=json"
                            ))
                            .unwrap();
                        assert_eq!(status, 200, "client {c} request {r}: {body}");
                        let json: serde_json::Value = serde_json::from_str(&body).unwrap();
                        assert_eq!(
                            json["rows"].as_array().unwrap().len(),
                            n as usize,
                            "client {c} request {r} got the wrong result"
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let log = site.request_log();
        assert_eq!(
            log.len(),
            (CLIENTS * REQUESTS) as usize,
            "the request log lost updates under concurrency"
        );
        assert!(log.iter().all(|r| r.section == Section::SqlSearch));
        server.stop();
    }

    /// The end-to-end batch-tier test over a real socket: submit a job,
    /// poll it to completion, fetch the CSV; then cancel a long-running
    /// scan mid-flight and observe `Cancelled` with a halted progress
    /// counter.  (Also a named CI step, like the §7 concurrency smoke
    /// test.)
    #[test]
    fn http_job_lifecycle_end_to_end() {
        let site = site();
        let server = site.serve(0).unwrap();
        let addr = server.addr();
        let poll_state = |id: i64| -> (String, u64) {
            let (status, body) =
                crate::http::http_get(addr, &format!("/x_job/status?id={id}")).unwrap();
            assert_eq!(status, 200, "{body}");
            let json: serde_json::Value = serde_json::from_str(&body).unwrap();
            (
                json["state"].as_str().unwrap().to_string(),
                json["rows_processed"].as_u64().unwrap(),
            )
        };
        let wait_for_state = |id: i64, wanted: &str| {
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
            loop {
                let (state, _) = poll_state(id);
                if state == wanted {
                    break;
                }
                assert!(
                    std::time::Instant::now() < deadline,
                    "job {id} stuck before {wanted} (currently {state})"
                );
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
        };

        // 1. Submit a quick batch query and poll it to completion.
        let (status, body) = crate::http::http_get(
            addr,
            "/x_job/submit?cmd=select+top+20+objID,ra+from+PhotoObj+order+by+objID&submitter=alice",
        )
        .unwrap();
        assert_eq!(status, 200, "{body}");
        let json: serde_json::Value = serde_json::from_str(&body).unwrap();
        let quick = json["job_id"].as_i64().unwrap();
        wait_for_state(quick, "done");

        // 2. Fetch the stored result as CSV through the shared formatters.
        let (status, csv) =
            crate::http::http_get(addr, &format!("/x_job/fetch?id={quick}&format=csv")).unwrap();
        assert_eq!(status, 200);
        assert_eq!(csv.lines().count(), 21, "header + 20 rows:\n{csv}");
        assert!(csv.lines().next().unwrap().contains("objID"));

        // 3. Submit a long-running scan (millions of paced nested-loop
        //    probes — it cannot finish before the cancel below).
        let (status, body) = crate::http::http_get(
            addr,
            "/x_job/submit?cmd=select+count(*)+from+PhotoObj+a+join+PhotoObj+b+on+a.objID+%3C+b.objID&submitter=alice",
        )
        .unwrap();
        assert_eq!(status, 200, "{body}");
        let json: serde_json::Value = serde_json::from_str(&body).unwrap();
        let slow = json["job_id"].as_i64().unwrap();

        // 4. Wait until it is running and has visible progress, cancel it,
        //    and observe the Cancelled state.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        loop {
            let (state, progress) = poll_state(slow);
            if state == "running" && progress > 0 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "job {slow} never showed progress ({state}, {progress})"
            );
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        let (status, body) =
            crate::http::http_get(addr, &format!("/x_job/cancel?id={slow}")).unwrap();
        assert_eq!(status, 200, "{body}");
        wait_for_state(slow, "cancelled");

        // 5. The scan actually stopped: the progress counter is frozen.
        let (_, frozen) = poll_state(slow);
        std::thread::sleep(std::time::Duration::from_millis(40));
        let (state, after) = poll_state(slow);
        assert_eq!(state, "cancelled");
        assert_eq!(after, frozen, "progress advanced after cancellation");

        // 6. Fetching a cancelled job is a clear error, unknown ids 404,
        //    and the My Jobs page shows both jobs.
        let (status, body) =
            crate::http::http_get(addr, &format!("/x_job/fetch?id={slow}")).unwrap();
        assert_eq!(status, 400);
        assert!(body.contains("cancelled"), "{body}");
        let (status, _) = crate::http::http_get(addr, "/x_job/status?id=99999").unwrap();
        assert_eq!(status, 404);
        // Fetch agrees with status on unknown ids.
        let (status, _) = crate::http::http_get(addr, "/x_job/fetch?id=99999").unwrap();
        assert_eq!(status, 404);
        let (status, html) = crate::http::http_get(addr, "/tools/jobs?submitter=alice").unwrap();
        assert_eq!(status, 200);
        assert!(html.contains("done"), "{html}");
        assert!(html.contains("cancelled"), "{html}");
        server.stop();
    }

    #[test]
    fn job_writes_are_rejected_and_bad_requests_are_400() {
        let site = site();
        // A write submitted as a batch job fails with the read-only error
        // (jobs run on the engine's shared read path by construction).
        let id = site
            .jobs()
            .submit("mallory", "drop table PhotoObj")
            .unwrap();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while !site.jobs().status(id).unwrap().state.is_finished() {
            assert!(std::time::Instant::now() < deadline);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let status = site.jobs().status(id).unwrap();
        assert_eq!(status.state, crate::jobs::JobState::Failed);
        assert!(status.error.as_deref().unwrap().contains("read-only"));
        // The table survived.
        let r = get(
            &site,
            "/en/tools/search/x_sql?cmd=select+count(*)+from+PhotoObj&format=json",
        );
        assert_eq!(r.status, 200);
        // Malformed endpoint parameters are 400s, not panics.
        assert_eq!(get(&site, "/x_job/submit").status, 400);
        assert_eq!(get(&site, "/x_job/status?id=abc").status, 400);
        assert_eq!(get(&site, "/x_job/cancel").status, 400);
        assert_eq!(get(&site, "/x_job/fetch").status, 400);
    }

    #[test]
    fn admin_publish_lets_running_batch_jobs_finish_on_their_snapshot() {
        // Faster pacing than the default so the O(N²) scan still finishes
        // in test time while leaving plenty of overlap with the admin write.
        let sky = SkyServerBuilder::new().tiny().build().unwrap();
        let site = SkyServerSite::new_with(
            sky,
            RESULT_CACHE_CAPACITY,
            crate::jobs::JobQueueConfig {
                pace: std::time::Duration::from_micros(100),
                ..Default::default()
            },
        );
        let count = |site: &SkyServerSite| {
            site.sky()
                .query("select count(*) from PhotoObj")
                .unwrap()
                .scalar()
                .unwrap()
                .as_i64()
                .unwrap()
        };
        let n = count(&site);
        // A self-join over the 500 smallest objIDs: big enough (~125k pairs)
        // to still be running when the publish lands, small enough to stay
        // inside the batch memory budget and finish.
        let ids = site
            .sky()
            .query("select top 500 objID from PhotoObj order by objID")
            .unwrap();
        let k = ids.rows.len() as i64;
        let bound = ids.rows.last().unwrap()[0].as_i64().unwrap();
        // Deleting the smallest objID shrinks the joined set, so a job that
        // (wrongly) saw the post-publish catalog would count fewer pairs.
        let victim = ids.rows[0][0].as_i64().unwrap();
        let id = site
            .jobs()
            .submit(
                "ops",
                &format!(
                    "select count(*) from PhotoObj a join PhotoObj b \
                     on a.objID < b.objID where b.objID <= {bound}"
                ),
            )
            .unwrap();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        loop {
            let s = site.jobs().status(id).unwrap();
            if s.state == crate::jobs::JobState::Running && s.rows_processed > 0 {
                break;
            }
            assert!(std::time::Instant::now() < deadline);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        // Mutate the catalog and publish while the scan is mid-flight: the
        // admin write builds the next catalog off to the side and swaps it
        // in atomically, so it neither waits out nor cancels the job.
        let started = std::time::Instant::now();
        site.with_admin(|sky| {
            sky.execute(&format!("delete from PhotoObj where objID = {victim}"))
                .unwrap();
            sky.publish_release("dr2").unwrap();
        });
        assert!(
            started.elapsed() < std::time::Duration::from_secs(10),
            "admin write waited out the batch scan"
        );
        // The job completes — on the snapshot it pinned at start, so its
        // pair count reflects the catalog *before* the delete.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(120);
        while !site.jobs().status(id).unwrap().state.is_finished() {
            assert!(std::time::Instant::now() < deadline);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let status = site.jobs().status(id).unwrap();
        assert_eq!(
            status.state,
            crate::jobs::JobState::Done,
            "job error: {:?}",
            status.error
        );
        let result = site.jobs().result(id).unwrap();
        assert_eq!(
            result.scalar().unwrap().as_i64().unwrap(),
            k * (k - 1) / 2,
            "job must see its pinned pre-publish snapshot"
        );
        // New requests see the published head immediately.
        assert_eq!(count(&site), n - 1);
        assert!(site.sky().release_names().contains(&"dr2".to_string()));
    }

    #[test]
    fn my_jobs_escapes_html_in_error_messages() {
        let site = site();
        // Parse errors echo string literals verbatim, so a submitted query
        // can smuggle HTML into job.error; the My Jobs page must escape it.
        let id = site.jobs().submit("eve", "select 1 '<b>boom</b>'").unwrap();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while !site.jobs().status(id).unwrap().state.is_finished() {
            assert!(std::time::Instant::now() < deadline);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert_eq!(
            site.jobs().status(id).unwrap().state,
            crate::jobs::JobState::Failed
        );
        let r = get(&site, "/tools/jobs");
        let html = String::from_utf8(r.body).unwrap();
        assert!(!html.contains("<b>boom</b>"), "unescaped error:\n{html}");
        assert!(html.contains("&lt;b&gt;boom&lt;/b&gt;"), "{html}");
    }

    #[test]
    fn admin_writes_coexist_with_concurrent_readers() {
        let site = site();
        std::thread::scope(|scope| {
            let reader_site = &site;
            let reader = scope.spawn(move || {
                for _ in 0..20 {
                    let r = get(
                        reader_site,
                        "/en/tools/search/x_sql?cmd=select+count(*)+from+PhotoObj&format=json",
                    );
                    assert_eq!(r.status, 200);
                }
            });
            for i in 0..5 {
                site.with_admin(|sky| {
                    sky.execute(&format!("create table admin_t{i} (id bigint not null)"))
                        .unwrap();
                });
            }
            reader.join().unwrap();
        });
        // The admin DDL landed.
        let r = get(
            &site,
            "/en/tools/search/x_sql?cmd=select+count(*)+from+admin_t0&format=json",
        );
        assert_eq!(r.status, 200);
    }
}
