//! # skyserver-web
//!
//! The SkyServer web front end (§2, §4, §5, §7 of the paper):
//!
//! * a dependency-free HTTP server ([`http`]) standing in for IIS + ASP,
//!   with a bounded worker pool, HTTP/1.1 keep-alive, POST bodies and a
//!   capped request head,
//! * the versioned programmatic surface ([`api`]): a declarative typed
//!   router under `/api/v1` with extractors, a machine-readable error
//!   envelope, cursor pagination, content negotiation and a generated
//!   self-description (`GET /api/v1`),
//! * an LRU query-result cache ([`cache`]) keyed by normalized SQL +
//!   output format, serving the paper's popular-places workload from
//!   memory,
//! * the site routes ([`site`]): famous places, navigator, object explorer,
//!   SQL search with the public 1,000-row / 30-second limits, the schema
//!   browser that feeds SkyServerQA, and the three language branches,
//! * the asynchronous batch-query job tier ([`jobs`]): a CasJobs-style
//!   queue with its own bounded worker pool, per-submitter quotas, stored
//!   results with TTL expiry, and cancellation/progress via the SQL
//!   engine's `QueryMonitor`,
//! * the result output formats ([`formats`]): grid, CSV, XML, JSON and a
//!   FITS-style ASCII table,
//! * the resource governor ([`governor`]): admission control over the
//!   interactive query path — an in-flight cap shedding excess load with
//!   `503` + `Retry-After`, and the per-request deadline every admitted
//!   query carries into the executor,
//! * the site-traffic simulator and analyser ([`traffic`]) that regenerate
//!   Figure 5 and the §7 operations statistics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod cache;
pub mod formats;
pub mod governor;
pub mod http;
pub mod jobs;
pub mod site;
pub mod traffic;

pub use api::{ApiError, Router, API_PREFIX, ERROR_CODES};
pub use cache::{normalize_sql, CacheStats, ResultCache, RowCache};
pub use formats::{to_csv, to_fits_ascii, to_json, to_xml, AcceptNegotiation, OutputFormat};
pub use governor::{Governor, GovernorConfig, GovernorStats};
pub use http::{
    http_get, http_request, parse_request, url_decode, HttpClient, HttpServer, Request, Response,
    ServerConfig,
};
pub use jobs::{JobQueue, JobQueueConfig, JobState, JobStatus};
pub use site::{SkyServerSite, LANGUAGES};
pub use traffic::{
    analyze_traffic, render_figure5, simulate_traffic, DailyTraffic, LogRecord, Section,
    TrafficConfig, TrafficReport,
};
