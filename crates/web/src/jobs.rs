//! The asynchronous batch-query job tier (the CasJobs shape).
//!
//! The public SkyServer served two very different query populations from
//! one pool: interactive page queries that must answer in milliseconds,
//! and ad-hoc analytic SQL that scans large tables for minutes.  §4's
//! interactive limits (1,000 rows / 30 seconds) cap the damage, but the
//! operational answer in the real system was a **batch tier**: submit the
//! expensive query as a *job*, poll its progress, fetch the stored result
//! later — so long scans never occupy an interactive worker.
//!
//! [`JobQueue`] is that tier:
//!
//! * a **bounded worker pool** separate from the HTTP workers drains a
//!   FIFO queue of submitted jobs,
//! * each job runs on the engine's shared read path with a
//!   [`QueryMonitor`] attached, so its **progress** (rows processed) is
//!   observable, it can be **cancelled** mid-scan, and it is **paced**
//!   ([`JobQueueConfig::pace`]) to cede CPU to interactive traffic,
//! * finished jobs keep their result set in memory (row-capped by
//!   [`JobQueueConfig::max_result_rows`]) until a **TTL** expires,
//! * per-submitter **quotas** bound both the number of queued/running
//!   jobs and the bytes of stored results.
//!
//! The job lifecycle:
//!
//! ```text
//!            submit            worker picks up           query ends
//!   (new) ─────────▶ Queued ──────────────────▶ Running ───────────▶ Done
//!                      │                           │                   │
//!                      │ cancel                    │ cancel /          │ TTL
//!                      ▼                           ▼ error             ▼
//!                  Cancelled ◀───────────── Cancelled / Failed     (removed)
//! ```

use skyserver::{QueryLimits, QueryMonitor, ResultSet, SkyServerError, Value};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How a job is executed: the site supplies a closure that runs a
/// read-only script against the current catalog snapshot under the given
/// limits, reporting to (and honouring) the monitor.
pub type JobRunner =
    dyn Fn(&str, QueryLimits, &QueryMonitor) -> Result<ResultSet, SkyServerError> + Send + Sync;

/// Tuning knobs of the batch tier.
#[derive(Debug, Clone)]
pub struct JobQueueConfig {
    /// Batch worker threads (separate from the HTTP worker pool).  Keeping
    /// this small is the point: at most `workers` heavy scans compete with
    /// interactive traffic, no matter how many jobs are queued.
    pub workers: usize,
    /// Maximum jobs one submitter may have queued or running.
    pub max_active_per_submitter: usize,
    /// Maximum bytes of stored (finished) results per submitter; further
    /// submissions are refused until results expire.
    pub max_stored_bytes_per_submitter: u64,
    /// Row cap applied to every job's result set (batch jobs escape the
    /// interactive 1,000-row limit but not *all* limits).
    pub max_result_rows: usize,
    /// Wall-clock budget per job, propagated as a deadline on the job's
    /// [`QueryMonitor`] (the same mechanism the interactive tier uses).
    /// Batch jobs escape the interactive 30-second limit, but an unbounded
    /// query would occupy one of the few batch workers forever — and a
    /// running job's catalog snapshot keeps the segments of a superseded
    /// release alive.  `None` disables the bound.
    pub max_seconds: Option<f64>,
    /// Memory budget per job (the executor's `max_bytes`): batch jobs get
    /// a larger budget than the interactive 64 MiB, but still bounded so
    /// one job cannot OOM the batch tier.  `None` disables the bound.
    pub max_bytes: Option<u64>,
    /// How long a finished job (and its stored result) is kept.
    pub ttl: Duration,
    /// Pacing sleep applied per executor row batch: the duty-cycle brake
    /// that keeps batch scans from starving interactive queries.  Zero
    /// disables pacing.
    pub pace: Duration,
}

impl Default for JobQueueConfig {
    fn default() -> Self {
        JobQueueConfig {
            workers: 2,
            max_active_per_submitter: 4,
            max_stored_bytes_per_submitter: 4 << 20,
            max_result_rows: 100_000,
            max_seconds: Some(600.0),
            max_bytes: Some(256 << 20),
            ttl: Duration::from_secs(600),
            pace: Duration::from_micros(500),
        }
    }
}

/// The lifecycle state of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Waiting for a batch worker.
    Queued,
    /// A batch worker is executing the query.
    Running,
    /// Finished successfully; the result is stored until the TTL expires.
    Done,
    /// The query errored; the message is kept until the TTL expires.
    Failed,
    /// Cancelled while queued or running.
    Cancelled,
}

impl JobState {
    /// Lower-case name used in JSON payloads and the My Jobs page.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Has the job reached a terminal state?
    pub fn is_finished(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }
}

impl std::fmt::Display for JobState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A point-in-time snapshot of one job, safe to hand to a status page.
#[derive(Debug, Clone)]
pub struct JobStatus {
    /// Job identifier (monotonically increasing per queue).
    pub id: u64,
    /// Who submitted the job.
    pub submitter: String,
    /// The submitted SQL.
    pub sql: String,
    /// Current lifecycle state.
    pub state: JobState,
    /// Position in the queue (0 = next to run) while `Queued`.
    pub queue_position: Option<usize>,
    /// Rows scanned / probed so far (live while `Running`).
    pub rows_processed: u64,
    /// Rows in the stored result (only when `Done`).
    pub result_rows: Option<usize>,
    /// Approximate bytes of the stored result (only when `Done`).
    pub result_bytes: u64,
    /// Whether the result hit the batch row cap.
    pub truncated: bool,
    /// The error message (only when `Failed`).
    pub error: Option<String>,
    /// Seconds spent queued before a worker picked the job up.
    pub waited_seconds: f64,
    /// Seconds of execution (live while `Running`, final afterwards).
    pub run_seconds: Option<f64>,
}

struct JobRecord {
    id: u64,
    submitter: String,
    sql: String,
    state: JobState,
    monitor: Arc<QueryMonitor>,
    /// `Arc` so fetches hand out a refcount bump instead of deep-cloning a
    /// potentially 100k-row result while the jobs mutex is held.
    result: Option<Arc<ResultSet>>,
    result_bytes: u64,
    truncated: bool,
    error: Option<String>,
    submitted: Instant,
    started: Option<Instant>,
    finished: Option<Instant>,
}

impl JobRecord {
    fn status(&self, queue_position: Option<usize>) -> JobStatus {
        JobStatus {
            id: self.id,
            submitter: self.submitter.clone(),
            sql: self.sql.clone(),
            state: self.state,
            queue_position,
            rows_processed: self.monitor.rows_processed(),
            result_rows: self.result.as_ref().map(|r| r.len()),
            result_bytes: self.result_bytes,
            truncated: self.truncated,
            error: self.error.clone(),
            waited_seconds: match (self.started, self.finished) {
                (Some(started), _) => started.duration_since(self.submitted).as_secs_f64(),
                // Cancelled while still queued: the wait ended at the
                // cancel, not "now" (it must not keep growing).
                (None, Some(finished)) => finished.duration_since(self.submitted).as_secs_f64(),
                (None, None) => self.submitted.elapsed().as_secs_f64(),
            },
            run_seconds: self.started.map(|started| {
                self.finished
                    .map(|finished| finished.duration_since(started))
                    .unwrap_or_else(|| started.elapsed())
                    .as_secs_f64()
            }),
        }
    }
}

#[derive(Default)]
struct Inner {
    jobs: HashMap<u64, JobRecord>,
    queue: VecDeque<u64>,
    shutdown: bool,
}

/// The batch-query job service: a FIFO queue drained by a bounded worker
/// pool, with per-submitter quotas and TTL garbage collection.
pub struct JobQueue {
    inner: Mutex<Inner>,
    work_ready: Condvar,
    config: JobQueueConfig,
    next_id: AtomicU64,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl JobQueue {
    /// Start the job service: spawns [`JobQueueConfig::workers`] batch
    /// worker threads that execute submitted jobs through `runner`.
    pub fn start(config: JobQueueConfig, runner: Arc<JobRunner>) -> Arc<JobQueue> {
        let queue = Arc::new(JobQueue {
            inner: Mutex::new(Inner::default()),
            work_ready: Condvar::new(),
            config: config.clone(),
            next_id: AtomicU64::new(1),
            workers: Mutex::new(Vec::new()),
        });
        let mut workers = queue
            .workers
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for _ in 0..config.workers.max(1) {
            let queue = Arc::clone(&queue);
            let runner = Arc::clone(&runner);
            workers.push(std::thread::spawn(move || {
                JobQueue::worker_loop(&queue, runner.as_ref())
            }));
        }
        drop(workers);
        queue
    }

    /// The configuration the queue runs with.
    pub fn config(&self) -> &JobQueueConfig {
        &self.config
    }

    /// Stop the worker pool: cancels every running job, wakes idle
    /// workers, and joins them.  Queued jobs stay `Queued` but will never
    /// run.  Called by the site on drop; idempotent.
    pub fn shutdown(&self) {
        {
            let mut inner = self
                .inner
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            inner.shutdown = true;
            for job in inner.jobs.values() {
                if job.state == JobState::Running {
                    job.monitor.cancel();
                }
            }
        }
        self.work_ready.notify_all();
        for handle in self
            .workers
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .drain(..)
        {
            let _ = handle.join();
        }
    }

    /// Submit a read-only SQL script as a batch job.  Returns the job id,
    /// or a quota error explaining which per-submitter limit was hit.
    pub fn submit(&self, submitter: &str, sql: &str) -> Result<u64, String> {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        Self::collect_expired(&mut inner, &self.config);
        let active = inner
            .jobs
            .values()
            .filter(|j| j.submitter == submitter && !j.state.is_finished())
            .count();
        if active >= self.config.max_active_per_submitter {
            return Err(format!(
                "quota exceeded: {submitter} already has {active} queued or running jobs \
                 (limit {}); wait for one to finish or cancel it",
                self.config.max_active_per_submitter
            ));
        }
        let stored: u64 = inner
            .jobs
            .values()
            .filter(|j| j.submitter == submitter)
            .map(|j| j.result_bytes)
            .sum();
        if stored >= self.config.max_stored_bytes_per_submitter {
            return Err(format!(
                "quota exceeded: {submitter} has {stored} bytes of stored results \
                 (limit {}); fetch them or wait for them to expire",
                self.config.max_stored_bytes_per_submitter
            ));
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        inner.jobs.insert(
            id,
            JobRecord {
                id,
                submitter: submitter.to_string(),
                sql: sql.to_string(),
                state: JobState::Queued,
                monitor: Arc::new(QueryMonitor::new()),
                result: None,
                result_bytes: 0,
                truncated: false,
                error: None,
                submitted: Instant::now(),
                started: None,
                finished: None,
            },
        );
        inner.queue.push_back(id);
        drop(inner);
        self.work_ready.notify_one();
        Ok(id)
    }

    /// A snapshot of one job (`None` if unknown or already expired).
    pub fn status(&self, id: u64) -> Option<JobStatus> {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        Self::collect_expired(&mut inner, &self.config);
        let position = inner.queue.iter().position(|&q| q == id);
        inner.jobs.get(&id).map(|j| j.status(position))
    }

    /// The stored result of a `Done` job (shared, not copied).  Errors
    /// explain every other state (unknown/expired, still pending, failed,
    /// cancelled).
    pub fn result(&self, id: u64) -> Result<Arc<ResultSet>, String> {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        Self::collect_expired(&mut inner, &self.config);
        let Some(job) = inner.jobs.get(&id) else {
            return Err(format!("no job {id} (unknown id, or its result expired)"));
        };
        match job.state {
            JobState::Done => match job.result.as_ref() {
                Some(result) => Ok(Arc::clone(result)),
                None => Err(format!("job {id} finished without a stored result")),
            },
            JobState::Queued | JobState::Running => Err(format!(
                "job {id} is still {}; poll its status until it is done",
                job.state
            )),
            JobState::Failed => Err(format!(
                "job {id} failed: {}",
                job.error.as_deref().unwrap_or("unknown error")
            )),
            JobState::Cancelled => Err(format!("job {id} was cancelled")),
        }
    }

    /// Cancel a job.  A queued job is cancelled immediately; a running job
    /// has its monitor cancelled and transitions once the executor stops
    /// (poll the status to observe `Cancelled`).  Returns the state after
    /// the cancel request, `None` for unknown ids.
    pub fn cancel(&self, id: u64) -> Option<JobState> {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        Self::collect_expired(&mut inner, &self.config);
        let job = inner.jobs.get_mut(&id)?;
        match job.state {
            JobState::Queued => {
                job.state = JobState::Cancelled;
                job.finished = Some(Instant::now());
                let state = job.state;
                inner.queue.retain(|&q| q != id);
                Some(state)
            }
            JobState::Running => {
                job.monitor.cancel();
                Some(JobState::Running)
            }
            finished => Some(finished),
        }
    }

    /// Snapshots of every job, newest first, optionally filtered to one
    /// submitter (the My Jobs page).
    pub fn jobs(&self, submitter: Option<&str>) -> Vec<JobStatus> {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        Self::collect_expired(&mut inner, &self.config);
        let mut out: Vec<JobStatus> = inner
            .jobs
            .values()
            .filter(|j| submitter.is_none_or(|s| j.submitter == s))
            .map(|j| j.status(inner.queue.iter().position(|&q| q == j.id)))
            .collect();
        out.sort_by_key(|s| std::cmp::Reverse(s.id));
        out
    }

    /// Drop finished jobs whose TTL has expired (called opportunistically
    /// from every public operation, so no dedicated GC thread is needed).
    fn collect_expired(inner: &mut Inner, config: &JobQueueConfig) {
        inner.jobs.retain(|_, job| {
            !job.state.is_finished()
                || job
                    .finished
                    .map(|finished| finished.elapsed() < config.ttl)
                    .unwrap_or(true)
        });
    }

    fn worker_loop(queue: &JobQueue, runner: &JobRunner) {
        loop {
            // Wait for a runnable job (or shutdown).
            let (id, sql, monitor) = {
                let mut inner = queue
                    .inner
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                loop {
                    if inner.shutdown {
                        return;
                    }
                    // Cancelled-while-queued jobs are removed from the
                    // queue eagerly, but tolerate any stale id.
                    let runnable = inner.queue.pop_front().and_then(|id| {
                        let job = inner.jobs.get_mut(&id)?;
                        (job.state == JobState::Queued).then(|| {
                            job.state = JobState::Running;
                            job.started = Some(Instant::now());
                            (id, job.sql.clone(), Arc::clone(&job.monitor))
                        })
                    });
                    if let Some(found) = runnable {
                        break found;
                    }
                    if inner.queue.is_empty() {
                        inner = queue
                            .work_ready
                            .wait(inner)
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                    }
                }
            };
            monitor.set_pace(queue.config.pace);
            // The wall budget rides on the monitor as a deadline — the
            // same propagation path the interactive and API tiers use —
            // so the executor enforces it at every row-batch tick.
            if let Some(budget) = queue.config.max_seconds {
                monitor.set_deadline(Duration::from_secs_f64(budget.max(0.0)));
            }
            let limits = QueryLimits {
                max_rows: Some(queue.config.max_result_rows),
                max_seconds: None,
                max_bytes: queue.config.max_bytes,
            };
            // A panicking runner (or an armed `jobs.runner` failpoint) must
            // fail the *job*, not the worker: the pool would silently
            // shrink otherwise and the queue would eventually stall.
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                skyserver::storage::failpoints::check("jobs.runner")
                    .map_err(|m| SkyServerError::Sql(skyserver::SqlError::Execution(m)))?;
                runner(&sql, limits, &monitor)
            }))
            .unwrap_or_else(|_| {
                Err(SkyServerError::Sql(skyserver::SqlError::Execution(
                    "the batch worker caught a panic while running this job".into(),
                )))
            });
            let mut inner = queue
                .inner
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            // The job can only disappear via TTL GC, which never collects
            // non-finished jobs — but a lost record must not kill a worker.
            if let Some(job) = inner.jobs.get_mut(&id) {
                job.finished = Some(Instant::now());
                match outcome {
                    // A cancel can race with the query's final batch: the
                    // executor may complete before ever seeing the flag.
                    // The contract is that a 200 from cancel() ends in
                    // `Cancelled`, so the flag wins over the result.
                    Ok(_) if monitor.is_cancelled() => {
                        job.state = JobState::Cancelled;
                    }
                    Ok(result) => {
                        job.result_bytes = approx_result_bytes(&result);
                        job.truncated = result.truncated;
                        job.result = Some(Arc::new(result));
                        job.state = JobState::Done;
                    }
                    Err(_) if monitor.is_cancelled() => {
                        job.state = JobState::Cancelled;
                    }
                    Err(e) => {
                        job.error = Some(e.to_string());
                        job.state = JobState::Failed;
                    }
                }
            }
        }
    }
}

/// Approximate in-memory size of a stored result (for the per-submitter
/// stored-bytes quota; an estimate is enough to bound memory).
pub fn approx_result_bytes(result: &ResultSet) -> u64 {
    let header: u64 = result.columns.iter().map(|c| c.len() as u64).sum();
    let cells: u64 = result
        .rows
        .iter()
        .flat_map(|row| row.iter())
        .map(|v| match v {
            Value::Null | Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 8,
            Value::Str(s) => s.len() as u64,
            Value::Bytes(b) => b.len() as u64,
        })
        .sum();
    header + cells + (result.rows.len() as u64) * 8
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyserver_storage::Value;

    /// A runner that needs no SkyServer: interprets the "sql" as a row
    /// count and fabricates that many rows, ticking the monitor per row
    /// so cancellation and progress behave like the real executor.
    fn fake_runner() -> Arc<JobRunner> {
        Arc::new(|sql, limits, monitor| {
            if let Some(msg) = sql.strip_prefix("fail:") {
                return Err(SkyServerError::NotFound(msg.to_string()));
            }
            let rows: usize = sql.parse().unwrap_or(0);
            let mut out = ResultSet {
                columns: vec!["n".to_string()],
                rows: Vec::new(),
                truncated: false,
            };
            for i in 0..rows {
                if monitor.is_cancelled() {
                    return Err(SkyServerError::Sql(skyserver::SqlError::Cancelled));
                }
                // The wall budget arrives as a monitor deadline, exactly
                // as the real executor's checkpoint sees it.
                if monitor.deadline_expired() {
                    return Err(SkyServerError::Sql(skyserver::SqlError::LimitExceeded(
                        "query exceeded its wall-clock budget deadline".into(),
                    )));
                }
                monitor.add_rows(1);
                let pace = monitor.pace();
                if !pace.is_zero() {
                    std::thread::sleep(pace);
                }
                if limits.max_rows.is_none_or(|max| out.rows.len() < max) {
                    out.rows.push(vec![Value::Int(i as i64)]);
                } else {
                    out.truncated = true;
                }
            }
            Ok(out)
        })
    }

    fn wait_for<F: Fn() -> bool>(what: &str, cond: F) {
        let deadline = Instant::now() + Duration::from_secs(10);
        while !cond() {
            assert!(Instant::now() < deadline, "timed out waiting for {what}");
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    fn quick_config() -> JobQueueConfig {
        JobQueueConfig {
            workers: 1,
            // The fake runner paces per *row*, so the 2M-row "long" jobs
            // the cancellation tests rely on cannot finish before the
            // cancel lands, while few-row jobs stay instantaneous.
            pace: Duration::from_micros(50),
            ttl: Duration::from_secs(60),
            ..JobQueueConfig::default()
        }
    }

    #[test]
    fn lifecycle_submit_run_fetch() {
        let queue = JobQueue::start(quick_config(), fake_runner());
        let id = queue.submit("alice", "5").unwrap();
        wait_for("job done", || {
            queue.status(id).unwrap().state == JobState::Done
        });
        let status = queue.status(id).unwrap();
        assert_eq!(status.result_rows, Some(5));
        assert_eq!(status.rows_processed, 5);
        assert!(status.result_bytes > 0);
        assert!(!status.truncated);
        assert!(status.run_seconds.is_some());
        let result = queue.result(id).unwrap();
        assert_eq!(result.len(), 5);
        queue.shutdown();
    }

    #[test]
    fn failed_jobs_keep_their_error() {
        let queue = JobQueue::start(quick_config(), fake_runner());
        let id = queue.submit("alice", "fail:boom").unwrap();
        wait_for("job failed", || {
            queue.status(id).unwrap().state == JobState::Failed
        });
        let err = queue.result(id).unwrap_err();
        assert!(err.contains("boom"), "{err}");
        queue.shutdown();
    }

    #[test]
    fn row_cap_truncates_results() {
        let config = JobQueueConfig {
            max_result_rows: 3,
            ..quick_config()
        };
        let queue = JobQueue::start(config, fake_runner());
        let id = queue.submit("alice", "10").unwrap();
        wait_for("job done", || {
            queue.status(id).unwrap().state == JobState::Done
        });
        let status = queue.status(id).unwrap();
        assert_eq!(status.result_rows, Some(3));
        assert!(status.truncated);
        queue.shutdown();
    }

    #[test]
    fn cancel_queued_and_running_jobs() {
        let queue = JobQueue::start(quick_config(), fake_runner());
        // A slow job (paced per row through the queue's pace? use many rows)
        // occupies the single worker; the second job stays queued.
        let running = queue.submit("alice", "2000000").unwrap();
        let queued = queue.submit("alice", "5").unwrap();
        wait_for("first job running", || {
            queue.status(running).unwrap().state == JobState::Running
        });
        // Cancel the queued job: immediate.
        assert_eq!(queue.cancel(queued), Some(JobState::Cancelled));
        assert_eq!(queue.status(queued).unwrap().state, JobState::Cancelled);
        // Its reported wait time froze at the cancel instead of growing.
        let waited = queue.status(queued).unwrap().waited_seconds;
        std::thread::sleep(Duration::from_millis(15));
        assert_eq!(queue.status(queued).unwrap().waited_seconds, waited);
        // Cancel the running job: lands at the next monitor check.
        wait_for("progress", || {
            queue.status(running).unwrap().rows_processed > 0
        });
        queue.cancel(running);
        wait_for("running job cancelled", || {
            queue.status(running).unwrap().state == JobState::Cancelled
        });
        // Progress halted after cancellation.
        let frozen = queue.status(running).unwrap().rows_processed;
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(queue.status(running).unwrap().rows_processed, frozen);
        assert!(queue.result(running).unwrap_err().contains("cancelled"));
        queue.shutdown();
    }

    #[test]
    fn queue_positions_are_reported_fifo() {
        let queue = JobQueue::start(quick_config(), fake_runner());
        let a = queue.submit("alice", "2000000").unwrap();
        wait_for("first job running", || {
            queue.status(a).unwrap().state == JobState::Running
        });
        let b = queue.submit("bob", "1").unwrap();
        let c = queue.submit("carol", "1").unwrap();
        assert_eq!(queue.status(b).unwrap().queue_position, Some(0));
        assert_eq!(queue.status(c).unwrap().queue_position, Some(1));
        assert_eq!(queue.status(a).unwrap().queue_position, None);
        let all = queue.jobs(None);
        assert_eq!(all.len(), 3);
        assert_eq!(all[0].id, c, "newest first");
        assert_eq!(queue.jobs(Some("bob")).len(), 1);
        queue.cancel(a);
        queue.shutdown();
    }

    #[test]
    fn per_submitter_active_quota_is_enforced() {
        let config = JobQueueConfig {
            max_active_per_submitter: 2,
            ..quick_config()
        };
        let queue = JobQueue::start(config, fake_runner());
        let blocker = queue.submit("alice", "2000000").unwrap();
        let _second = queue.submit("alice", "1").unwrap();
        let err = queue.submit("alice", "1").unwrap_err();
        assert!(err.contains("quota"), "{err}");
        // Another submitter is unaffected.
        assert!(queue.submit("bob", "1").is_ok());
        // Cancelling frees the slot.
        queue.cancel(blocker);
        wait_for("blocker cancelled", || {
            queue.status(blocker).unwrap().state == JobState::Cancelled
        });
        assert!(queue.submit("alice", "1").is_ok());
        queue.shutdown();
    }

    #[test]
    fn stored_bytes_quota_is_enforced() {
        let config = JobQueueConfig {
            max_stored_bytes_per_submitter: 64,
            ..quick_config()
        };
        let queue = JobQueue::start(config, fake_runner());
        let id = queue.submit("alice", "20").unwrap();
        wait_for("job done", || {
            queue.status(id).unwrap().state == JobState::Done
        });
        assert!(queue.status(id).unwrap().result_bytes >= 64);
        let err = queue.submit("alice", "1").unwrap_err();
        assert!(err.contains("stored results"), "{err}");
        assert!(queue.submit("bob", "1").is_ok());
        queue.shutdown();
    }

    #[test]
    fn runtime_budget_fails_runaway_jobs() {
        let config = JobQueueConfig {
            max_seconds: Some(0.02),
            ..quick_config()
        };
        let queue = JobQueue::start(config, fake_runner());
        let id = queue.submit("alice", "2000000").unwrap();
        wait_for("job failed on its time budget", || {
            queue.status(id).unwrap().state == JobState::Failed
        });
        let err = queue.status(id).unwrap().error.unwrap();
        assert!(err.contains("budget"), "{err}");
        queue.shutdown();
    }

    #[test]
    fn ttl_collects_finished_jobs() {
        let config = JobQueueConfig {
            ttl: Duration::from_millis(30),
            ..quick_config()
        };
        let queue = JobQueue::start(config, fake_runner());
        let id = queue.submit("alice", "3").unwrap();
        wait_for("job done", || {
            queue.status(id).is_some_and(|s| s.state == JobState::Done)
        });
        std::thread::sleep(Duration::from_millis(60));
        assert!(queue.status(id).is_none(), "expired job still visible");
        assert!(queue.result(id).unwrap_err().contains("expired"));
        // Expiry also releases the stored-bytes quota.
        assert!(queue.submit("alice", "1").is_ok());
        queue.shutdown();
    }

    #[test]
    fn shutdown_cancels_running_work() {
        let queue = JobQueue::start(quick_config(), fake_runner());
        let id = queue.submit("alice", "2000000").unwrap();
        wait_for("running", || {
            queue.status(id).unwrap().state == JobState::Running
        });
        // Must return promptly (the running scan is cancelled, not awaited
        // to completion — 2M paced rows would take far longer than CI).
        queue.shutdown();
        assert!(queue.status(id).unwrap().state.is_finished());
    }
}
