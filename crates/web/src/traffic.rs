//! Site-traffic simulation and analysis (§7, Figure 5).
//!
//! The paper reports seven months of operations: ~2.5 M hits, ~1 M page
//! views, ~70 K sessions; ~4 % Japanese and 3 % German sub-web traffic,
//! ~8 % education traffic; ~30 % crawler traffic; two network outages; a TV
//! show that produced a 20x spike; 99.83 % availability over 14 reboots.
//! We obviously cannot replay the real 2001 logs, so this module contains
//! (a) a log **simulator** that generates a statistically similar seven
//! months of requests and (b) the **analyser** that turns any request log
//! into the daily hits / page views / sessions series of Figure 5 plus the
//! §7 summary statistics.  The analyser is the same code path a real
//! deployment of the HTTP server would feed.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Site sections, used to attribute traffic the way §7 does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Section {
    /// The home page.
    Home,
    /// The famous-places gallery.
    FamousPlaces,
    /// The pan/zoom navigation tool.
    Navigator,
    /// The object explorer.
    Explorer,
    /// The SQL search pages.
    SqlSearch,
    /// The asynchronous batch-query endpoints (`/x_job/*`, My Jobs).
    BatchJobs,
    /// The versioned programmatic surface (`/api/v1/*`): machine clients,
    /// not page views.
    Api,
    /// The education projects.
    Education,
    /// The Japanese sub-web.
    Japanese,
    /// The German sub-web.
    German,
    /// Help and documentation (incl. the schema browser).
    Help,
}

/// One logged request.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LogRecord {
    /// Day index since the site opened (0-based).
    pub day: u32,
    /// Session identifier.
    pub session: u64,
    /// Which part of the site was hit.
    pub section: Section,
    /// True if the request is a full page view (false = embedded asset hit
    /// or a programmatic `/api` call).
    pub page_view: bool,
    /// True if the client is a crawler.
    pub crawler: bool,
    /// HTTP status of the response (the simulator always records 200; the
    /// live site records the real status so non-200 API responses are
    /// countable separately from page views).
    pub status: u16,
}

/// Traffic simulation parameters (defaults reproduce §7).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TrafficConfig {
    /// RNG seed (the simulation is deterministic per seed).
    pub seed: u64,
    /// Number of days to simulate (the paper covers ~7 months).
    pub days: u32,
    /// Human sessions per day once the site has ramped up.
    pub base_sessions_per_day: f64,
    /// Page views per human session.
    pub pages_per_session: f64,
    /// Asset hits per page view (images, css, ...).
    pub hits_per_page: f64,
    /// Fraction of *sessions* from crawlers.  Crawler sessions fetch many
    /// more pages than humans, so the default is tuned to make ~30 % of the
    /// *hits* crawler traffic, as §7 reports.
    pub crawler_fraction: f64,
    /// Fraction of page views on the education projects (paper: ~8 %).
    pub education_fraction: f64,
    /// Fraction of page views on the Japanese mirror (paper: ~4 %).
    pub japanese_fraction: f64,
    /// Fraction of page views on the German mirror (paper: ~3 %).
    pub german_fraction: f64,
    /// Day of the television feature (20x spike); None to disable.
    pub tv_spike_day: Option<u32>,
    /// Days on which the network was unreachable (paper: 22 June, 26 July).
    pub outage_days: Vec<u32>,
    /// Number of reboots over the period (paper: 14, ~0.17 % downtime).
    pub reboots: u32,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            seed: 2001,
            days: 214, // June 2001 .. December 2001: ~7 months
            base_sessions_per_day: 330.0,
            pages_per_session: 14.0,
            hits_per_page: 1.7,
            crawler_fraction: 0.175,
            education_fraction: 0.11,
            japanese_fraction: 0.055,
            german_fraction: 0.042,
            tv_spike_day: Some(123), // the 2 October 2001 TV show
            outage_days: vec![21, 55],
            reboots: 14,
        }
    }
}

/// Simulate a request log.
pub fn simulate_traffic(config: &TrafficConfig) -> Vec<LogRecord> {
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut log = Vec::new();
    let mut session_counter = 0u64;
    for day in 0..config.days {
        if config.outage_days.contains(&day) {
            continue; // the network was down: nothing reaches the server
        }
        // Ramp-up over the first month, then steady state with weekly rhythm
        // (classes use the site on weekdays).
        let ramp = ((day as f64 + 5.0) / 30.0).min(1.0);
        let weekday = day % 7;
        let weekly = if weekday < 5 { 1.1 } else { 0.7 };
        let spike = match config.tv_spike_day {
            Some(d) if day == d => 20.0,
            Some(d) if day == d + 1 => 6.0,
            Some(d) if day == d + 2 => 2.5,
            _ => 1.0,
        };
        let sessions_today =
            (config.base_sessions_per_day * ramp * weekly * spike * rng.gen_range(0.75..1.25))
                .round() as u64;
        for _ in 0..sessions_today {
            session_counter += 1;
            let crawler = rng.gen_bool(config.crawler_fraction);
            let pages = if crawler {
                rng.gen_range(5..60)
            } else {
                (config.pages_per_session * rng.gen_range(0.3..2.0)).round() as u64
            };
            for _ in 0..pages.max(1) {
                let section = pick_section(&mut rng, config, crawler);
                log.push(LogRecord {
                    day,
                    session: session_counter,
                    section,
                    page_view: true,
                    crawler,
                    status: 200,
                });
                // Asset hits attached to this page view.
                let hits = (config.hits_per_page * rng.gen_range(0.0..2.0)).round() as u64;
                for _ in 0..hits {
                    log.push(LogRecord {
                        day,
                        session: session_counter,
                        section,
                        page_view: false,
                        crawler,
                        status: 200,
                    });
                }
            }
        }
    }
    log
}

fn pick_section(rng: &mut ChaCha8Rng, config: &TrafficConfig, crawler: bool) -> Section {
    let x: f64 = rng.gen_range(0.0..1.0);
    if crawler {
        // Crawlers walk the data pages.
        return if x < 0.6 {
            Section::Explorer
        } else {
            Section::Navigator
        };
    }
    let edu = config.education_fraction;
    let jp = config.japanese_fraction;
    let de = config.german_fraction;
    if x < edu {
        Section::Education
    } else if x < edu + jp {
        Section::Japanese
    } else if x < edu + jp + de {
        Section::German
    } else if x < edu + jp + de + 0.25 {
        Section::FamousPlaces
    } else if x < edu + jp + de + 0.45 {
        Section::Navigator
    } else if x < edu + jp + de + 0.60 {
        Section::Explorer
    } else if x < edu + jp + de + 0.72 {
        Section::SqlSearch
    } else if x < edu + jp + de + 0.82 {
        Section::Help
    } else {
        Section::Home
    }
}

/// One day of the Figure 5 series.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct DailyTraffic {
    /// Day index since the site opened (0-based).
    pub day: u32,
    /// Raw HTTP hits (pages + embedded assets).
    pub hits: u64,
    /// Full page views.
    pub page_views: u64,
    /// Distinct sessions.
    pub sessions: u64,
}

/// The §7 summary plus the Figure 5 daily series.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TrafficReport {
    /// The Figure 5 daily series.
    pub daily: Vec<DailyTraffic>,
    /// Hits over the whole period.
    pub total_hits: u64,
    /// Page views over the whole period.
    pub total_page_views: u64,
    /// Sessions over the whole period.
    pub total_sessions: u64,
    /// Fraction of page views in the education section.
    pub education_share: f64,
    /// Fraction of page views in the Japanese sub-web.
    pub japanese_share: f64,
    /// Fraction of page views in the German sub-web.
    pub german_share: f64,
    /// Fraction of raw hits from crawlers.
    pub crawler_share: f64,
    /// Raw hits on the `/api/v1` programmatic surface (machine clients,
    /// attributed separately from page views).
    pub api_hits: u64,
    /// The subset of [`TrafficReport::api_hits`] that answered non-200
    /// (structured API errors are workload too, but a different kind).
    pub api_errors: u64,
    /// Average page views per day over the period.
    pub pages_per_day: f64,
    /// Peak-day hits over median-day hits (the TV spike shows up here).
    pub peak_to_median: f64,
    /// Days with zero traffic (network outages).
    pub outage_days: Vec<u32>,
    /// Availability over the period given the configured reboot count
    /// (patches ~5 minutes, power/operations outages ~hours).
    pub availability: f64,
}

/// Analyse a request log into the Figure 5 / §7 report.
pub fn analyze_traffic(log: &[LogRecord], config: &TrafficConfig) -> TrafficReport {
    let days = config.days;
    let mut daily: Vec<DailyTraffic> = (0..days)
        .map(|day| DailyTraffic {
            day,
            ..Default::default()
        })
        .collect();
    let mut sessions_per_day: Vec<std::collections::HashSet<u64>> =
        vec![std::collections::HashSet::new(); days as usize];
    let mut education = 0u64;
    let mut japanese = 0u64;
    let mut german = 0u64;
    let mut crawler_hits = 0u64;
    let mut total_page_views = 0u64;
    let mut api_hits = 0u64;
    let mut api_errors = 0u64;
    for r in log {
        let Some(d) = daily.get_mut(r.day as usize) else {
            continue;
        };
        d.hits += 1;
        if r.crawler {
            crawler_hits += 1;
        }
        if r.section == Section::Api {
            api_hits += 1;
            if r.status != 200 && r.status != 201 {
                api_errors += 1;
            }
        }
        if r.page_view {
            d.page_views += 1;
            total_page_views += 1;
            match r.section {
                Section::Education => education += 1,
                Section::Japanese => japanese += 1,
                Section::German => german += 1,
                _ => {}
            }
        }
        if let Some(day) = sessions_per_day.get_mut(r.day as usize) {
            day.insert(r.session);
        }
    }
    for (d, s) in daily.iter_mut().zip(&sessions_per_day) {
        d.sessions = s.len() as u64;
    }
    let total_hits: u64 = daily.iter().map(|d| d.hits).sum();
    let total_sessions: u64 = daily.iter().map(|d| d.sessions).sum();
    let mut hit_counts: Vec<u64> = daily.iter().map(|d| d.hits).filter(|&h| h > 0).collect();
    hit_counts.sort_unstable();
    let median = hit_counts.get(hit_counts.len() / 2).copied().unwrap_or(0);
    let peak = hit_counts.last().copied().unwrap_or(0);
    let outage_days: Vec<u32> = daily
        .iter()
        .filter(|d| d.hits == 0)
        .map(|d| d.day)
        .collect();
    // Availability: 8 software reboots at ~5 minutes, the rest at ~2 hours
    // (the paper's patch vs power split), over the whole period.
    let software = config.reboots.min(8) as f64 * 5.0 / 60.0;
    let hardware = config.reboots.saturating_sub(8) as f64 * 2.0;
    let downtime_hours = software + hardware;
    let availability = 1.0 - downtime_hours / (f64::from(days) * 24.0);
    TrafficReport {
        total_hits,
        total_page_views,
        total_sessions,
        education_share: ratio(education, total_page_views),
        japanese_share: ratio(japanese, total_page_views),
        german_share: ratio(german, total_page_views),
        crawler_share: ratio(crawler_hits, total_hits),
        api_hits,
        api_errors,
        pages_per_day: total_page_views as f64 / f64::from(days.max(1)),
        peak_to_median: if median > 0 {
            peak as f64 / median as f64
        } else {
            0.0
        },
        outage_days,
        availability,
        daily,
    }
}

fn ratio(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 / whole as f64
    }
}

/// Render the Figure 5 series as a text table (one row per day).
pub fn render_figure5(report: &TrafficReport) -> String {
    let mut out = String::from("day  hits     page_views  sessions\n");
    for d in &report.daily {
        out.push_str(&format!(
            "{:>3}  {:>8}  {:>10}  {:>8}\n",
            d.day, d.hits, d.page_views, d.sessions
        ));
    }
    out.push_str(&format!(
        "\ntotal hits {}  page views {}  sessions {}  (crawlers {:.0}%, edu {:.1}%, jp {:.1}%, de {:.1}%)\n",
        report.total_hits,
        report.total_page_views,
        report.total_sessions,
        report.crawler_share * 100.0,
        report.education_share * 100.0,
        report.japanese_share * 100.0,
        report.german_share * 100.0
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> TrafficReport {
        let config = TrafficConfig::default();
        let log = simulate_traffic(&config);
        analyze_traffic(&log, &config)
    }

    #[test]
    fn totals_match_the_papers_order_of_magnitude() {
        let r = report();
        // Paper: ~2.5M hits, ~1M page views, ~70k sessions over 7 months.
        assert!(
            (1_500_000..4_500_000).contains(&r.total_hits),
            "hits {}",
            r.total_hits
        );
        assert!(
            (600_000..1_800_000).contains(&r.total_page_views),
            "page views {}",
            r.total_page_views
        );
        assert!(
            (40_000..120_000).contains(&r.total_sessions),
            "sessions {}",
            r.total_sessions
        );
        // Hits > page views > sessions each day.
        for d in &r.daily {
            assert!(d.hits >= d.page_views);
            assert!(d.page_views >= d.sessions || d.hits == 0);
        }
    }

    #[test]
    fn shares_match_section7() {
        let r = report();
        assert!(
            (0.2..0.4).contains(&r.crawler_share),
            "crawlers {}",
            r.crawler_share
        );
        assert!(
            (0.05..0.12).contains(&r.education_share),
            "edu {}",
            r.education_share
        );
        assert!((0.02..0.06).contains(&r.japanese_share));
        assert!((0.015..0.05).contains(&r.german_share));
        // Sustained usage of about 4,000 pages/day (paper's steady state);
        // the simulated average includes the ramp-up so allow a wide band.
        assert!(
            (2_000.0..8_000.0).contains(&r.pages_per_day),
            "pages/day {}",
            r.pages_per_day
        );
    }

    #[test]
    fn spike_and_outages_are_visible() {
        let r = report();
        assert!(
            r.peak_to_median > 8.0,
            "TV spike should stand out, got {}",
            r.peak_to_median
        );
        assert_eq!(r.outage_days, vec![21, 55]);
        assert!(r.availability > 0.995 && r.availability < 1.0);
    }

    #[test]
    fn simulation_is_deterministic() {
        let config = TrafficConfig::default();
        let a = simulate_traffic(&config);
        let b = simulate_traffic(&config);
        assert_eq!(a.len(), b.len());
        assert_eq!(a[1000], b[1000]);
    }

    #[test]
    fn figure5_rendering_has_one_line_per_day() {
        let config = TrafficConfig {
            days: 10,
            ..TrafficConfig::default()
        };
        let log = simulate_traffic(&config);
        let r = analyze_traffic(&log, &config);
        let text = render_figure5(&r);
        assert_eq!(text.lines().count(), 1 + 10 + 2);
        assert!(text.contains("total hits"));
    }

    #[test]
    fn api_hits_are_attributed_separately_from_page_views() {
        let config = TrafficConfig {
            days: 1,
            ..TrafficConfig::default()
        };
        let record = |section, page_view, status| LogRecord {
            day: 0,
            session: 1,
            section,
            page_view,
            crawler: false,
            status,
        };
        let log = vec![
            record(Section::Api, false, 200),
            record(Section::Api, false, 422),
            record(Section::Api, false, 201),
            record(Section::Home, true, 200),
        ];
        let r = analyze_traffic(&log, &config);
        assert_eq!(r.api_hits, 3);
        assert_eq!(r.api_errors, 1, "only the 422 is an API error");
        assert_eq!(r.total_page_views, 1, "API hits are not page views");
        assert_eq!(r.total_hits, 4);
    }

    #[test]
    fn analyzer_handles_an_empty_log() {
        let config = TrafficConfig {
            days: 5,
            ..TrafficConfig::default()
        };
        let r = analyze_traffic(&[], &config);
        assert_eq!(r.total_hits, 0);
        assert_eq!(r.outage_days.len(), 5);
    }
}
