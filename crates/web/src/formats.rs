//! Result output formats (§4).
//!
//! SkyServerQA "provides results in three formats: Grid Based for quick
//! viewing, Column Separated Values (CSV) ASCII for use in spreadsheets and
//! text tools, XML for applications that can read XML data, FITS, a file
//! format widely used in astronomy."  The web SQL page exposes the same
//! formats plus JSON (for the modern tooling this reproduction targets).

use skyserver_sql::ResultSet;
use skyserver_storage::{csv_escape, Value};

/// The outcome of `Accept`-header negotiation
/// ([`OutputFormat::from_accept`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcceptNegotiation {
    /// A listed media type maps to this format.
    Format(OutputFormat),
    /// The client takes anything (`*/*`, or no/empty header): the caller
    /// picks its default.
    Any,
    /// Nothing listed is servable; the API answers `406`.
    Unacceptable,
}

/// The supported output formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputFormat {
    /// Human-readable aligned grid (the default).
    Grid,
    /// RFC 4180-style comma-separated values.
    Csv,
    /// Simple row/column XML.
    Xml,
    /// `{"columns": [...], "rows": [[...]]}` JSON.
    Json,
    /// A FITS-style ASCII table (80-column header cards).
    Fits,
}

impl OutputFormat {
    /// Every supported format, in documentation order.
    pub const ALL: [OutputFormat; 5] = [
        OutputFormat::Grid,
        OutputFormat::Csv,
        OutputFormat::Xml,
        OutputFormat::Json,
        OutputFormat::Fits,
    ];

    /// The lower-case name used in `?format=` parameters and the API spec.
    pub fn name(self) -> &'static str {
        match self {
            OutputFormat::Grid => "grid",
            OutputFormat::Csv => "csv",
            OutputFormat::Xml => "xml",
            OutputFormat::Json => "json",
            OutputFormat::Fits => "fits",
        }
    }

    /// Parse the `format=` query parameter strictly: `None` for unknown
    /// names.  The `/api/v1` surface turns `None` into a structured `400`
    /// listing the supported formats.
    pub fn try_parse(s: &str) -> Option<OutputFormat> {
        match s.to_ascii_lowercase().as_str() {
            "grid" => Some(OutputFormat::Grid),
            "csv" => Some(OutputFormat::Csv),
            "xml" => Some(OutputFormat::Xml),
            "json" => Some(OutputFormat::Json),
            "fits" => Some(OutputFormat::Fits),
            _ => None,
        }
    }

    /// Parse the `format=` query parameter with the legacy fallback:
    /// unknown names render as the grid (the `.asp`-era pages always
    /// produced *something*; existing links must keep working).
    pub fn parse(s: &str) -> OutputFormat {
        OutputFormat::try_parse(s).unwrap_or(OutputFormat::Grid)
    }

    /// Content negotiation from an `Accept` header value: the first media
    /// type we can serve wins (listed order, q-values ignored).
    pub fn from_accept(header: &str) -> AcceptNegotiation {
        let mut saw_item = false;
        for item in header.split(',') {
            let media = item
                .split(';')
                .next()
                .unwrap_or("")
                .trim()
                .to_ascii_lowercase();
            if media.is_empty() {
                continue;
            }
            saw_item = true;
            match media.as_str() {
                "*/*" | "application/*" => return AcceptNegotiation::Any,
                "application/json" => return AcceptNegotiation::Format(OutputFormat::Json),
                "text/csv" => return AcceptNegotiation::Format(OutputFormat::Csv),
                "application/xml" | "text/xml" => {
                    return AcceptNegotiation::Format(OutputFormat::Xml)
                }
                "text/plain" | "text/*" => return AcceptNegotiation::Format(OutputFormat::Grid),
                "application/fits" | "image/fits" => {
                    return AcceptNegotiation::Format(OutputFormat::Fits)
                }
                _ => {}
            }
        }
        if saw_item {
            AcceptNegotiation::Unacceptable
        } else {
            // An empty Accept header is the same as no header.
            AcceptNegotiation::Any
        }
    }

    /// The HTTP content type of the format.
    pub fn content_type(self) -> &'static str {
        match self {
            OutputFormat::Grid => "text/plain; charset=utf-8",
            OutputFormat::Csv => "text/csv; charset=utf-8",
            OutputFormat::Xml => "application/xml; charset=utf-8",
            OutputFormat::Json => "application/json; charset=utf-8",
            OutputFormat::Fits => "text/plain; charset=utf-8",
        }
    }

    /// Render a result set in this format.
    pub fn render(self, result: &ResultSet) -> String {
        match self {
            OutputFormat::Grid => result.to_grid(),
            OutputFormat::Csv => to_csv(result),
            OutputFormat::Xml => to_xml(result),
            OutputFormat::Json => to_json(result),
            OutputFormat::Fits => to_fits_ascii(result),
        }
    }
}

/// CSV: header line plus one line per row.  Header names go through the
/// same escaping as data fields — a column alias containing a comma or
/// quote must not corrupt the row structure.
pub fn to_csv(result: &ResultSet) -> String {
    let mut out = String::new();
    let header: Vec<String> = result.columns.iter().map(|c| csv_escape(c)).collect();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in &result.rows {
        let line: Vec<String> = row.iter().map(Value::to_csv_field).collect();
        out.push_str(&line.join(","));
        out.push('\n');
    }
    out
}

/// Simple XML: `<root><row><col>value</col>...</row>...</root>`.
pub fn to_xml(result: &ResultSet) -> String {
    let mut out = String::from("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<result>\n");
    for row in &result.rows {
        out.push_str("  <row>");
        for (name, value) in result.columns.iter().zip(row) {
            let tag = sanitize_tag(name);
            out.push_str(&format!(
                "<{tag}>{}</{tag}>",
                escape_xml(&value.to_string())
            ));
        }
        out.push_str("</row>\n");
    }
    out.push_str("</result>\n");
    out
}

/// JSON: `{"columns": [...], "rows": [[...], ...]}`.
pub fn to_json(result: &ResultSet) -> String {
    let rows: Vec<Vec<serde_json::Value>> = result
        .rows
        .iter()
        .map(|row| row.iter().map(value_to_json).collect())
        .collect();
    serde_json::json!({
        "columns": result.columns,
        "rows": rows,
        "truncated": result.truncated,
    })
    .to_string()
}

/// One storage value as a JSON value (shared with the API envelope).
pub(crate) fn value_to_json(v: &Value) -> serde_json::Value {
    match v {
        Value::Null => serde_json::Value::Null,
        Value::Int(i) => serde_json::json!(i),
        Value::Float(f) => serde_json::json!(f),
        Value::Bool(b) => serde_json::json!(b),
        Value::Str(s) => serde_json::json!(s.as_ref()),
        Value::Bytes(b) => serde_json::json!(skyserver_storage::hex_encode(b)),
    }
}

/// A FITS-like ASCII table: an 80-column-card header describing the columns
/// followed by fixed-width data rows.  (Real FITS is binary; the paper's
/// tool emits files astronomers feed to their own software -- the header
/// card structure is what matters for recognisability.)
pub fn to_fits_ascii(result: &ResultSet) -> String {
    let mut out = String::new();
    // Pad *and* clamp to the 80-column card width: an over-long column
    // name must not emit an over-long card.
    let card = |text: &str| {
        let clamped: String = text.chars().take(80).collect();
        format!("{clamped:<80}\n")
    };
    out.push_str(&card(
        "SIMPLE  =                    T / SkyServer-RS ASCII table",
    ));
    out.push_str(&card("XTENSION= 'TABLE   '"));
    out.push_str(&card(&format!("TFIELDS = {:>20}", result.columns.len())));
    out.push_str(&card(&format!("NAXIS2  = {:>20}", result.rows.len())));
    for (i, name) in result.columns.iter().enumerate() {
        out.push_str(&card(&format!("TTYPE{:<3}= '{name}'", i + 1)));
    }
    out.push_str(&card("END"));
    for row in &result.rows {
        let line: Vec<String> = row
            .iter()
            .map(|v| format!("{:>16}", v.to_string()))
            .collect();
        out.push_str(&line.join(" "));
        out.push('\n');
    }
    out
}

fn sanitize_tag(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned
        .chars()
        .next()
        .map(|c| c.is_ascii_digit())
        .unwrap_or(true)
    {
        format!("c_{cleaned}")
    } else {
        cleaned
    }
}

/// Escape `&`, `<` and `>` for XML/HTML element content (shared with the
/// site's HTML pages; not sufficient for attribute contexts).
pub(crate) fn escape_xml(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rs() -> ResultSet {
        ResultSet {
            columns: vec!["objID".into(), "ra".into(), "name".into()],
            rows: vec![
                vec![Value::Int(1), Value::Float(185.5), Value::str("M<64>")],
                vec![
                    Value::Int(2),
                    Value::Float(186.0),
                    Value::str("plain, comma"),
                ],
            ],
            truncated: false,
        }
    }

    #[test]
    fn format_parsing_and_content_types() {
        assert_eq!(OutputFormat::parse("CSV"), OutputFormat::Csv);
        assert_eq!(OutputFormat::parse("fits"), OutputFormat::Fits);
        assert_eq!(OutputFormat::parse("anything"), OutputFormat::Grid);
        assert!(OutputFormat::Json.content_type().contains("json"));
        assert!(OutputFormat::Csv.content_type().contains("csv"));
        // The strict parser refuses what the legacy parser defaults.
        assert_eq!(OutputFormat::try_parse("anything"), None);
        assert_eq!(OutputFormat::try_parse("Json"), Some(OutputFormat::Json));
        for format in OutputFormat::ALL {
            assert_eq!(OutputFormat::try_parse(format.name()), Some(format));
        }
    }

    #[test]
    fn accept_header_negotiation() {
        assert_eq!(
            OutputFormat::from_accept("application/json"),
            AcceptNegotiation::Format(OutputFormat::Json)
        );
        assert_eq!(
            OutputFormat::from_accept("text/html, text/csv;q=0.9"),
            AcceptNegotiation::Format(OutputFormat::Csv)
        );
        assert_eq!(OutputFormat::from_accept("*/*"), AcceptNegotiation::Any);
        assert_eq!(OutputFormat::from_accept(""), AcceptNegotiation::Any);
        assert_eq!(
            OutputFormat::from_accept("text/xml"),
            AcceptNegotiation::Format(OutputFormat::Xml)
        );
        assert_eq!(
            OutputFormat::from_accept("image/png"),
            AcceptNegotiation::Unacceptable
        );
    }

    #[test]
    fn csv_quotes_fields_with_commas() {
        let csv = to_csv(&rs());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "objID,ra,name");
        assert_eq!(lines.len(), 3);
        assert!(lines[2].contains("\"plain, comma\""));
    }

    #[test]
    fn csv_escapes_header_aliases_with_commas_and_quotes() {
        let result = ResultSet {
            columns: vec!["ra, dec".into(), "the \"best\" mag".into(), "plain".into()],
            rows: vec![vec![Value::Int(1), Value::Int(2), Value::Int(3)]],
            truncated: false,
        };
        let csv = to_csv(&result);
        let lines: Vec<&str> = csv.lines().collect();
        // Three columns must stay three fields: quoted, with doubled quotes.
        assert_eq!(lines[0], "\"ra, dec\",\"the \"\"best\"\" mag\",plain");
        assert_eq!(lines[1], "1,2,3");
    }

    #[test]
    fn xml_escapes_and_produces_rows() {
        let xml = to_xml(&rs());
        assert!(xml.contains("<result>"));
        assert_eq!(xml.matches("<row>").count(), 2);
        assert!(xml.contains("M&lt;64&gt;"));
        assert!(xml.contains("<objID>1</objID>"));
    }

    #[test]
    fn json_round_trips_through_serde() {
        let json = to_json(&rs());
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed["columns"].as_array().unwrap().len(), 3);
        assert_eq!(parsed["rows"].as_array().unwrap().len(), 2);
        assert_eq!(parsed["rows"][0][0], serde_json::json!(1));
        assert_eq!(parsed["truncated"], serde_json::json!(false));
    }

    #[test]
    fn fits_header_cards_are_80_columns() {
        let fits = to_fits_ascii(&rs());
        let header_lines: Vec<&str> = fits.lines().take_while(|l| !l.starts_with("END")).collect();
        for line in header_lines {
            assert_eq!(line.len(), 80, "FITS card is not 80 columns: {line:?}");
        }
        assert!(fits.contains("TTYPE1"));
        assert!(fits.contains("NAXIS2"));
    }

    #[test]
    fn fits_cards_clamp_over_long_column_names() {
        let long_alias = "a".repeat(120);
        let result = ResultSet {
            columns: vec![long_alias, "b".into()],
            rows: vec![vec![Value::Int(1), Value::Int(2)]],
            truncated: false,
        };
        let fits = to_fits_ascii(&result);
        let header_lines: Vec<&str> = fits.lines().take_while(|l| !l.starts_with("END")).collect();
        assert!(!header_lines.is_empty());
        for line in header_lines {
            assert_eq!(
                line.chars().count(),
                80,
                "FITS card is not 80 columns: {line:?}"
            );
        }
    }

    #[test]
    fn grid_format_is_human_readable() {
        let grid = OutputFormat::Grid.render(&rs());
        assert!(grid.contains("objID"));
        assert!(grid.contains('|'));
    }
}
