//! Cursor-based pagination for tabular API results.
//!
//! Clients page with `?limit=` and an **opaque continuation token**
//! (`?cursor=`) returned in the previous page's metadata.  The token
//! encodes the row offset *and a fingerprint of the resource it was
//! issued for* — replaying a cursor against a different query is a
//! structured `400 invalid_cursor`, not silently wrong rows.  Walking
//! `next_cursor` until it is absent yields the full (row-budget-capped)
//! result exactly once.

use super::error::ApiError;
use super::extract::ApiRequest;
use crate::formats::{value_to_json, OutputFormat};
use crate::http::Response;
use skyserver::ResultSet;
use skyserver_storage::{hex_decode, hex_encode};

/// Page size when the client sends no `limit`.
pub const DEFAULT_PAGE_LIMIT: usize = 100;

/// Largest accepted `limit` (the public interactive row budget).
pub const MAX_PAGE_LIMIT: usize = 1000;

/// A validated page request: how many rows, starting where.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Page {
    /// Maximum rows in this page (`1..=MAX_PAGE_LIMIT`).
    pub limit: usize,
    /// Row offset decoded from the cursor (0 without one).
    pub offset: usize,
}

impl Page {
    /// Parse `?limit=` / `?cursor=` for the resource identified by `key`
    /// (the key binds cursors to their query — see [`encode_cursor`]).
    pub fn from_request(req: &ApiRequest<'_>, key: &str) -> Result<Page, ApiError> {
        let limit = req
            .optional::<usize>("limit")?
            .unwrap_or(DEFAULT_PAGE_LIMIT);
        if limit == 0 || limit > MAX_PAGE_LIMIT {
            return Err(ApiError::invalid_parameter(
                "limit",
                &limit.to_string(),
                "integer",
                &format!("must be between 1 and {MAX_PAGE_LIMIT}"),
            ));
        }
        let offset = match req.raw_param("cursor") {
            None => 0,
            Some(token) => decode_cursor(token, key)?,
        };
        Ok(Page { limit, offset })
    }
}

/// FNV-1a over the resource key: cheap, deterministic, and good enough to
/// catch a cursor replayed against a different query.
fn fingerprint(key: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in key.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Encode a continuation token for row `offset` of the resource `key`.
/// The token is opaque to clients (hex of a versioned payload).
pub fn encode_cursor(offset: usize, key: &str) -> String {
    hex_encode(format!("v1:{offset}:{:016x}", fingerprint(key)).as_bytes())
}

/// Decode and validate a continuation token against the resource `key`.
pub fn decode_cursor(token: &str, key: &str) -> Result<usize, ApiError> {
    let malformed = || {
        ApiError::new(
            "invalid_cursor",
            "malformed pagination cursor; pass a next_cursor value exactly as returned",
        )
    };
    let bytes = hex_decode(token.trim()).ok_or_else(malformed)?;
    let text = String::from_utf8(bytes).map_err(|_| malformed())?;
    let mut parts = text.split(':');
    if parts.next() != Some("v1") {
        return Err(malformed());
    }
    let offset: usize = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(malformed)?;
    let fp = parts.next().ok_or_else(malformed)?;
    if parts.next().is_some() {
        return Err(malformed());
    }
    if fp != format!("{:016x}", fingerprint(key)) {
        return Err(ApiError::new(
            "invalid_cursor",
            "this cursor was issued for a different query; restart without a cursor",
        ));
    }
    Ok(offset)
}

/// Pagination metadata for one rendered page.
#[derive(Debug, Clone)]
pub struct PageMeta {
    /// Rows in this page.
    pub returned: usize,
    /// Rows in the whole (row-budget-capped) result.
    pub total_rows: usize,
    /// Row offset of this page.
    pub offset: usize,
    /// The page limit applied.
    pub limit: usize,
    /// Whether the engine's row budget truncated the underlying result.
    pub truncated: bool,
    /// Continuation token for the next page (`None` on the last page).
    pub next_cursor: Option<String>,
}

/// Slice one page out of `result`, producing the page rows and metadata.
pub fn paginate<'a>(
    result: &'a ResultSet,
    page: &Page,
    key: &str,
) -> (&'a [Vec<skyserver::Value>], PageMeta) {
    let total = result.rows.len();
    let start = page.offset.min(total);
    let end = start.saturating_add(page.limit).min(total);
    let rows = result.rows.get(start..end).unwrap_or(&[]);
    let next_cursor = (end < total).then(|| encode_cursor(end, key));
    (
        rows,
        PageMeta {
            returned: rows.len(),
            total_rows: total,
            offset: start,
            limit: page.limit,
            truncated: result.truncated,
            next_cursor,
        },
    )
}

/// Render one page of `result` in `format`.
///
/// JSON carries the metadata in the envelope
/// (`{"columns", "rows", "meta": {...}}`); the other formats keep their
/// plain body and carry the metadata in `X-Total-Rows` / `X-Row-Offset` /
/// `X-Truncated` / `X-Next-Cursor` response headers.
pub fn render_page(result: &ResultSet, page: &Page, key: &str, format: OutputFormat) -> Response {
    let (rows, meta) = paginate(result, page, key);
    if format == OutputFormat::Json {
        let json_rows: Vec<Vec<serde_json::Value>> = rows
            .iter()
            .map(|row| row.iter().map(value_to_json).collect())
            .collect();
        let next_cursor = meta
            .next_cursor
            .clone()
            .map(serde_json::Value::String)
            .unwrap_or(serde_json::Value::Null);
        let body = serde_json::json!({
            "columns": result.columns,
            "rows": json_rows,
            "meta": {
                "returned": meta.returned,
                "total_rows": meta.total_rows,
                "offset": meta.offset,
                "limit": meta.limit,
                "truncated": meta.truncated,
                "next_cursor": next_cursor,
            }
        });
        return Response::ok(format.content_type(), body.to_string().into_bytes());
    }
    let page_set = ResultSet {
        columns: result.columns.clone(),
        rows: rows.to_vec(),
        truncated: result.truncated,
    };
    let mut response = Response::ok(format.content_type(), format.render(&page_set))
        .with_header("X-Total-Rows", &meta.total_rows.to_string())
        .with_header("X-Row-Offset", &meta.offset.to_string())
        .with_header("X-Truncated", if meta.truncated { "true" } else { "false" });
    if let Some(cursor) = &meta.next_cursor {
        response = response.with_header("X-Next-Cursor", cursor);
    }
    response
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyserver::Value;

    fn result(n: usize) -> ResultSet {
        ResultSet {
            columns: vec!["n".into()],
            rows: (0..n).map(|i| vec![Value::Int(i as i64)]).collect(),
            truncated: false,
        }
    }

    #[test]
    fn cursor_round_trip_and_binding() {
        let token = encode_cursor(37, "query|select 1");
        assert_eq!(decode_cursor(&token, "query|select 1").unwrap(), 37);
        // A cursor issued for another query is rejected, not misapplied.
        let err = decode_cursor(&token, "query|select 2").unwrap_err();
        assert_eq!(err.code, "invalid_cursor");
        assert!(err.message.contains("different query"), "{}", err.message);
        // Garbage tokens are a clean 400.
        for garbage in ["zz", "", "00", &hex_encode(b"v2:1:00")] {
            assert_eq!(
                decode_cursor(garbage, "k").unwrap_err().code,
                "invalid_cursor"
            );
        }
    }

    #[test]
    fn pagination_walk_covers_every_row_exactly_once() {
        let rs = result(25);
        let mut seen = Vec::new();
        let mut offset = 0usize;
        let mut pages = 0;
        loop {
            let page = Page { limit: 10, offset };
            let (rows, meta) = paginate(&rs, &page, "k");
            seen.extend(rows.iter().map(|r| r[0].as_i64().unwrap()));
            pages += 1;
            assert_eq!(meta.total_rows, 25);
            match meta.next_cursor {
                Some(token) => offset = decode_cursor(&token, "k").unwrap(),
                None => break,
            }
        }
        assert_eq!(pages, 3);
        assert_eq!(seen, (0..25).collect::<Vec<i64>>());
    }

    #[test]
    fn offset_past_the_end_is_an_empty_last_page() {
        let rs = result(5);
        let (rows, meta) = paginate(
            &rs,
            &Page {
                limit: 10,
                offset: 99,
            },
            "k",
        );
        assert!(rows.is_empty());
        assert_eq!(meta.returned, 0);
        assert!(meta.next_cursor.is_none());
    }

    #[test]
    fn non_json_pages_carry_metadata_headers() {
        let rs = result(12);
        let r = render_page(
            &rs,
            &Page {
                limit: 5,
                offset: 0,
            },
            "k",
            OutputFormat::Csv,
        );
        assert_eq!(r.status, 200);
        assert_eq!(r.header("X-Total-Rows"), Some("12"));
        assert!(r.header("X-Next-Cursor").is_some());
        let body = String::from_utf8(r.body).unwrap();
        assert_eq!(body.lines().count(), 6, "header + 5 rows");
        // The last page has no next cursor.
        let r = render_page(
            &rs,
            &Page {
                limit: 5,
                offset: 10,
            },
            "k",
            OutputFormat::Csv,
        );
        assert_eq!(r.header("X-Next-Cursor"), None);
    }
}
