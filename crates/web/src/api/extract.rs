//! Typed request extraction (`FromRequest`-style).
//!
//! Handlers never touch raw strings: every path capture, query parameter
//! and form field goes through [`FromParam`], and a malformed value is a
//! structured `400 invalid_parameter` — **never** a silent default.  The
//! legacy `.asp` adapters use the same extractors (that is how the
//! navigator stopped rendering the wrong sky position for `?ra=abc`),
//! they only differ in how they render the resulting [`ApiError`].

use super::error::ApiError;
use crate::formats::OutputFormat;
use crate::http::Request;
use std::collections::HashMap;

/// A type that can be parsed from one path/query/form parameter.
pub trait FromParam: Sized {
    /// The type name shown in error messages and the generated spec
    /// (e.g. `"integer"`, `"number"`, `"zoom level (0..=3)"`).
    const TYPE_NAME: &'static str;

    /// Parse the raw (already percent-decoded) parameter text.
    fn from_param(raw: &str) -> Result<Self, String>;
}

macro_rules! from_param_via_fromstr {
    ($ty:ty, $name:literal, $why:literal) => {
        impl FromParam for $ty {
            const TYPE_NAME: &'static str = $name;
            fn from_param(raw: &str) -> Result<Self, String> {
                raw.trim().parse::<$ty>().map_err(|_| $why.to_string())
            }
        }
    };
}

from_param_via_fromstr!(i64, "integer", "expected a signed integer");
from_param_via_fromstr!(u64, "integer", "expected a non-negative integer");
from_param_via_fromstr!(u32, "integer", "expected a non-negative integer");
from_param_via_fromstr!(usize, "integer", "expected a non-negative integer");
from_param_via_fromstr!(f64, "number", "expected a number");

impl FromParam for String {
    const TYPE_NAME: &'static str = "string";
    fn from_param(raw: &str) -> Result<Self, String> {
        Ok(raw.to_string())
    }
}

/// The navigator's zoom level: an integer in `0..=3` (§5's four levels).
/// Out-of-range values are a parse error, not a clamp — the legacy page
/// used to clamp silently and render the wrong field of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Zoom(pub u32);

impl FromParam for Zoom {
    const TYPE_NAME: &'static str = "zoom level (integer 0..=3)";
    fn from_param(raw: &str) -> Result<Self, String> {
        let level: u32 = raw
            .trim()
            .parse()
            .map_err(|_| "expected an integer".to_string())?;
        if level > 3 {
            return Err(format!("zoom {level} is out of range (0..=3)"));
        }
        Ok(Zoom(level))
    }
}

/// A request seen through the extractor layer: the underlying HTTP
/// request, the router's path captures, and (for form POSTs) the decoded
/// body fields.  Parameter lookup order is path capture, query string,
/// then form body.
pub struct ApiRequest<'r> {
    req: &'r Request,
    captures: Vec<(&'static str, String)>,
    form: HashMap<String, String>,
}

impl<'r> ApiRequest<'r> {
    /// Wrap a routed request with its path captures.
    pub fn new(req: &'r Request, captures: Vec<(&'static str, String)>) -> ApiRequest<'r> {
        ApiRequest {
            form: req.form_params(),
            req,
            captures,
        }
    }

    /// Wrap a legacy (non-routed) request so the `.asp` adapters can use
    /// the same extractors.
    pub fn legacy(req: &'r Request) -> ApiRequest<'r> {
        ApiRequest::new(req, Vec::new())
    }

    /// The underlying HTTP request.
    pub fn request(&self) -> &Request {
        self.req
    }

    /// The raw text of a parameter: path capture, query, then form body.
    pub fn raw_param(&self, name: &str) -> Option<&str> {
        self.captures
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
            .or_else(|| self.req.param(name))
            .or_else(|| self.form.get(name).map(String::as_str))
    }

    /// A typed path capture.  The router guarantees the capture exists
    /// for a matched route; parse failure is the client's `400`.
    pub fn path_param<T: FromParam>(&self, name: &'static str) -> Result<T, ApiError> {
        let raw = self
            .captures
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
            .ok_or_else(|| ApiError::internal(format!("route declared no `{name}` capture")))?;
        T::from_param(raw).map_err(|why| ApiError::invalid_parameter(name, raw, T::TYPE_NAME, &why))
    }

    /// A typed optional parameter: `Ok(None)` when absent, `400` when
    /// present but malformed.
    pub fn optional<T: FromParam>(&self, name: &str) -> Result<Option<T>, ApiError> {
        match self.raw_param(name) {
            None => Ok(None),
            Some(raw) => T::from_param(raw)
                .map(Some)
                .map_err(|why| ApiError::invalid_parameter(name, raw, T::TYPE_NAME, &why)),
        }
    }

    /// A typed required parameter: `400 missing_parameter` when absent.
    pub fn require<T: FromParam>(&self, name: &str) -> Result<T, ApiError> {
        self.optional(name)?
            .ok_or_else(|| ApiError::missing_parameter(name))
    }

    /// The SQL text of a query/job request: the named parameter if given,
    /// otherwise a non-form POST body (so `curl --data-binary @query.sql`
    /// works without URL encoding).
    pub fn sql_text(&self, name: &str) -> Result<String, ApiError> {
        if let Some(raw) = self.raw_param(name) {
            if !raw.trim().is_empty() {
                return Ok(raw.to_string());
            }
        }
        if !self.req.body.is_empty() && !self.req.is_form() {
            let body = String::from_utf8_lossy(&self.req.body).into_owned();
            if !body.trim().is_empty() {
                return Ok(body);
            }
        }
        Err(ApiError::missing_parameter(name))
    }

    /// Resolve the response format: an explicit `format=` parameter wins
    /// (query string or form body — unknown names are a `400` listing the
    /// supported set, no silent CSV/grid fallback on this surface), then
    /// the `Accept` header (`406` when nothing listed is servable), then
    /// `default`.
    pub fn format(&self, default: OutputFormat) -> Result<OutputFormat, ApiError> {
        if let Some(raw) = self.raw_param("format") {
            return OutputFormat::try_parse(raw).ok_or_else(|| ApiError::unsupported_format(raw));
        }
        accept_format(self.req, default)
    }
}

/// [`ApiRequest::format`] for callers that only have the raw request
/// (no form-body fields; only the query string and the `Accept` header).
pub fn negotiate_format(req: &Request, default: OutputFormat) -> Result<OutputFormat, ApiError> {
    if let Some(raw) = req.param("format") {
        return OutputFormat::try_parse(raw).ok_or_else(|| ApiError::unsupported_format(raw));
    }
    accept_format(req, default)
}

/// The `Accept`-header half of format negotiation.
fn accept_format(req: &Request, default: OutputFormat) -> Result<OutputFormat, ApiError> {
    match req.header("accept") {
        None => Ok(default),
        Some(accept) => match OutputFormat::from_accept(accept) {
            crate::formats::AcceptNegotiation::Format(format) => Ok(format),
            crate::formats::AcceptNegotiation::Any => Ok(default),
            crate::formats::AcceptNegotiation::Unacceptable => {
                Err(ApiError::not_acceptable(accept))
            }
        },
    }
}

/// Range-validate an already-parsed number (`400 invalid_parameter` with
/// the allowed interval in the message when outside `[min, max]`).
pub fn check_range(name: &str, value: f64, min: f64, max: f64) -> Result<(), ApiError> {
    if !value.is_finite() || value < min || value > max {
        return Err(ApiError::invalid_parameter(
            name,
            &value.to_string(),
            "number",
            &format!("must be between {min} and {max}"),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::parse_request;

    fn req(path_and_query: &str) -> Request {
        parse_request(&format!("GET {path_and_query} HTTP/1.1\r\n")).unwrap()
    }

    #[test]
    fn typed_extraction_and_errors() {
        let r = req("/x?ra=181.5&zoom=2&name=abc");
        let api = ApiRequest::legacy(&r);
        assert_eq!(api.require::<f64>("ra").unwrap(), 181.5);
        assert_eq!(api.require::<Zoom>("zoom").unwrap(), Zoom(2));
        assert_eq!(api.optional::<f64>("missing").unwrap(), None);
        let err = api.require::<f64>("missing").unwrap_err();
        assert_eq!(err.code, "missing_parameter");
        let err = api.require::<i64>("name").unwrap_err();
        assert_eq!(err.code, "invalid_parameter");
        assert_eq!(err.status, 400);
    }

    #[test]
    fn zoom_rejects_out_of_range_instead_of_clamping() {
        let r = req("/x?zoom=7");
        let api = ApiRequest::legacy(&r);
        let err = api.require::<Zoom>("zoom").unwrap_err();
        assert_eq!(err.code, "invalid_parameter");
        assert!(err.message.contains("0..=3"), "{}", err.message);
    }

    #[test]
    fn path_captures_win_over_query() {
        let r = req("/x?id=9");
        let api = ApiRequest::new(&r, vec![("id", "42".to_string())]);
        assert_eq!(api.path_param::<i64>("id").unwrap(), 42);
        assert_eq!(api.require::<i64>("id").unwrap(), 42);
    }

    #[test]
    fn sql_text_falls_back_to_a_raw_body() {
        let mut r =
            parse_request("POST /api/v1/query HTTP/1.1\r\nContent-Type: text/plain\r\n").unwrap();
        r.body = b"select 1".to_vec();
        let api = ApiRequest::legacy(&r);
        assert_eq!(api.sql_text("sql").unwrap(), "select 1");
        let r = req("/api/v1/query");
        let api = ApiRequest::legacy(&r);
        assert_eq!(api.sql_text("sql").unwrap_err().code, "missing_parameter");
    }

    #[test]
    fn format_negotiation_orders_param_accept_default() {
        let r = req("/x?format=csv");
        assert_eq!(
            negotiate_format(&r, OutputFormat::Json).unwrap(),
            OutputFormat::Csv
        );
        let r = req("/x?format=nope");
        let err = negotiate_format(&r, OutputFormat::Json).unwrap_err();
        assert_eq!(err.code, "unsupported_format");
        assert_eq!(err.status, 400);
        let mut r = req("/x");
        r.headers
            .insert("accept".to_string(), "text/csv".to_string());
        assert_eq!(
            negotiate_format(&r, OutputFormat::Json).unwrap(),
            OutputFormat::Csv
        );
        r.headers
            .insert("accept".to_string(), "image/png".to_string());
        let err = negotiate_format(&r, OutputFormat::Json).unwrap_err();
        assert_eq!(err.code, "not_acceptable");
        assert_eq!(err.status, 406);
        let r = req("/x");
        assert_eq!(
            negotiate_format(&r, OutputFormat::Json).unwrap(),
            OutputFormat::Json
        );
    }

    #[test]
    fn format_field_in_a_form_body_is_honoured() {
        let mut r = parse_request(
            "POST /api/v1/query HTTP/1.1\r\nContent-Type: application/x-www-form-urlencoded\r\n",
        )
        .unwrap();
        r.body = b"sql=select+1&format=csv".to_vec();
        let api = ApiRequest::legacy(&r);
        assert_eq!(api.format(OutputFormat::Json).unwrap(), OutputFormat::Csv);
        r.body = b"sql=select+1&format=exe".to_vec();
        let api = ApiRequest::legacy(&r);
        assert_eq!(
            api.format(OutputFormat::Json).unwrap_err().code,
            "unsupported_format"
        );
    }

    #[test]
    fn range_checks() {
        assert!(check_range("ra", 181.0, 0.0, 360.0).is_ok());
        let err = check_range("ra", 400.0, 0.0, 360.0).unwrap_err();
        assert_eq!(err.code, "invalid_parameter");
        assert!(check_range("dec", f64::NAN, -90.0, 90.0).is_err());
    }
}
