//! The machine-readable error envelope of the `/api/v1` surface.
//!
//! Every API failure renders as
//!
//! ```json
//! {"error": {"code": "...", "message": "...", "detail": ...}}
//! ```
//!
//! with a status code determined by the error *class*, never by the
//! handler ad hoc: parameter problems are `400`, missing resources `404`,
//! SQL rejections `422`, the computation budget `408`, job quotas `429`.
//! The `code` strings are a stable contract ([`ERROR_CODES`] is the
//! single source of truth; the spec endpoint and `docs/API.md` both
//! render it), while `message` is free-form human text and `detail`
//! carries structured extras (e.g. the supported-format list).

use crate::http::Response;
use skyserver::SkyServerError;

/// The stable error-code taxonomy: `(code, HTTP status, description)`.
///
/// Codes map 1:1 to an error *class*; the status is a function of the
/// code.  New codes may be added, but a published code never changes its
/// meaning or status.
pub const ERROR_CODES: &[(&str, u16, &str)] = &[
    (
        "missing_parameter",
        400,
        "A required parameter was not supplied.",
    ),
    (
        "invalid_parameter",
        400,
        "A parameter failed to parse as its declared type or was out of range.",
    ),
    (
        "invalid_cursor",
        400,
        "The pagination cursor is malformed or belongs to a different query.",
    ),
    (
        "unsupported_format",
        400,
        "The format parameter names no supported output format.",
    ),
    (
        "read_only",
        403,
        "A write statement (DML, DDL, SELECT INTO) reached the read-only public interface.",
    ),
    (
        "not_found",
        404,
        "The requested object, job or resource does not exist (or its result expired).",
    ),
    (
        "unknown_endpoint",
        404,
        "No /api/v1 route matches the request path.",
    ),
    (
        "unknown_release",
        404,
        "The release= parameter or AS OF clause names no published data release.",
    ),
    (
        "method_not_allowed",
        405,
        "The endpoint exists but does not accept this HTTP method.",
    ),
    (
        "not_acceptable",
        406,
        "No Accept-ed media type is servable, or the endpoint does not support the requested format.",
    ),
    (
        "query_timeout",
        408,
        "The query exceeded its wall-clock computation budget.",
    ),
    (
        "job_not_ready",
        409,
        "The job has not finished; poll its status until it is done.",
    ),
    ("job_cancelled", 409, "The job was cancelled."),
    (
        "query_cancelled",
        409,
        "The query was cancelled while it ran.",
    ),
    ("sql_parse_error", 422, "The SQL failed to lex or parse."),
    (
        "sql_plan_error",
        422,
        "The SQL failed to bind or plan (unknown table, ambiguous column, ...).",
    ),
    (
        "sql_execution_error",
        422,
        "The SQL failed at runtime (type error, bad function arguments, ...).",
    ),
    (
        "sql_unknown_function",
        422,
        "The SQL referenced an unknown scalar or table-valued function.",
    ),
    (
        "job_failed",
        422,
        "The batch job ended in an error; the message carries the job's error text.",
    ),
    (
        "resource_exhausted",
        422,
        "The query materialized more bytes than its memory budget allows; narrow it or submit it as a batch job.",
    ),
    (
        "quota_exceeded",
        429,
        "A per-submitter batch-job quota (active jobs or stored result bytes) was hit; retry after the hinted delay.",
    ),
    ("storage_error", 500, "An internal storage failure."),
    ("internal_error", 500, "An unexpected server-side failure."),
    (
        "overloaded",
        503,
        "The server is shedding load (accept queue or query admission cap full); retry after the hinted delay.",
    ),
];

/// The `Retry-After` hint (in seconds) attached to every `429` and `503`
/// response, on both the API envelope and the legacy plain-text surface.
pub const RETRY_AFTER_SECONDS: &str = "1";

/// The HTTP status registered for an error code (500 for codes outside
/// the taxonomy, which would itself be a bug the conformance suite
/// catches).
pub fn status_for(code: &str) -> u16 {
    ERROR_CODES
        .iter()
        .find(|(c, _, _)| *c == code)
        .map(|(_, status, _)| *status)
        .unwrap_or(500)
}

/// A structured API failure: everything needed to render the envelope.
#[derive(Debug, Clone)]
pub struct ApiError {
    /// HTTP status (a function of [`ApiError::code`]).
    pub status: u16,
    /// Stable machine-readable code from [`ERROR_CODES`].
    pub code: &'static str,
    /// Human-readable message.
    pub message: String,
    /// Optional structured detail (e.g. the supported-format list).
    pub detail: Option<serde_json::Value>,
}

impl ApiError {
    /// An error with the status registered for `code` in [`ERROR_CODES`].
    pub fn new(code: &'static str, message: impl Into<String>) -> ApiError {
        ApiError {
            status: status_for(code),
            code,
            message: message.into(),
            detail: None,
        }
    }

    /// Attach structured detail (builder style).
    pub fn with_detail(mut self, detail: serde_json::Value) -> ApiError {
        self.detail = Some(detail);
        self
    }

    /// `400 missing_parameter`.
    pub fn missing_parameter(name: &str) -> ApiError {
        ApiError::new(
            "missing_parameter",
            format!("missing required parameter `{name}`"),
        )
        .with_detail(serde_json::json!({ "parameter": name }))
    }

    /// `400 invalid_parameter`: `raw` failed to parse as `type_name`.
    pub fn invalid_parameter(name: &str, raw: &str, type_name: &str, why: &str) -> ApiError {
        ApiError::new(
            "invalid_parameter",
            format!("parameter `{name}`: `{raw}` is not a valid {type_name}: {why}"),
        )
        .with_detail(serde_json::json!({
            "parameter": name,
            "value": raw,
            "expected": type_name,
        }))
    }

    /// `400 unsupported_format`, listing what is supported.
    pub fn unsupported_format(raw: &str) -> ApiError {
        let supported: Vec<&str> = crate::formats::OutputFormat::ALL
            .iter()
            .map(|f| f.name())
            .collect();
        ApiError::new(
            "unsupported_format",
            format!("`{raw}` is not a supported output format"),
        )
        .with_detail(serde_json::json!({ "supported": supported }))
    }

    /// `406 not_acceptable` for an Accept header we cannot serve.
    pub fn not_acceptable(accept: &str) -> ApiError {
        let supported: Vec<&str> = crate::formats::OutputFormat::ALL
            .iter()
            .map(|f| f.name())
            .collect();
        ApiError::new(
            "not_acceptable",
            format!("no servable media type in Accept: {accept}"),
        )
        .with_detail(serde_json::json!({ "supported": supported }))
    }

    /// `404 not_found`.
    pub fn not_found(what: impl Into<String>) -> ApiError {
        ApiError::new("not_found", what.into())
    }

    /// `500 internal_error`.
    pub fn internal(message: impl Into<String>) -> ApiError {
        ApiError::new("internal_error", message.into())
    }

    /// Render the envelope.  Errors are always JSON, whatever output
    /// format the request asked for: a client that cannot parse the body
    /// still has the status code, and a client that can gets the code.
    /// Shedding statuses (`429`, `503`) always carry a `Retry-After`
    /// header so well-behaved clients back off instead of hammering.
    pub fn into_response(self) -> Response {
        let detail = self.detail.unwrap_or(serde_json::Value::Null);
        let body = serde_json::json!({
            "error": {
                "code": self.code,
                "message": self.message,
                "detail": detail,
            }
        });
        let mut response = Response::ok(
            "application/json; charset=utf-8",
            body.to_string().into_bytes(),
        );
        response.status = self.status;
        if self.status == 429 || self.status == 503 {
            response = response.with_header("Retry-After", RETRY_AFTER_SECONDS);
        }
        response
    }
}

impl From<SkyServerError> for ApiError {
    /// Map an engine error onto the taxonomy: the code comes from
    /// [`SkyServerError::code`], the status from [`ERROR_CODES`], and the
    /// message is the error's display text.
    fn from(e: SkyServerError) -> ApiError {
        ApiError::new(e.code(), e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyserver::SqlError;

    #[test]
    fn codes_are_unique_and_status_lookup_works() {
        for (i, (code, status, _)) in ERROR_CODES.iter().enumerate() {
            assert_eq!(status_for(code), *status);
            assert!(
                !ERROR_CODES[i + 1..].iter().any(|(c, _, _)| c == code),
                "duplicate error code {code}"
            );
        }
        assert_eq!(status_for("no_such_code"), 500);
    }

    #[test]
    fn engine_errors_map_onto_the_taxonomy() {
        let cases: Vec<(SkyServerError, &str, u16)> = vec![
            (SqlError::Parse("x".into()).into(), "sql_parse_error", 422),
            (SqlError::Plan("x".into()).into(), "sql_plan_error", 422),
            (
                SqlError::LimitExceeded("30s".into()).into(),
                "query_timeout",
                408,
            ),
            (
                SqlError::ResourceExhausted("64 MiB".into()).into(),
                "resource_exhausted",
                422,
            ),
            (SqlError::ReadOnly("drop".into()).into(), "read_only", 403),
            (SqlError::Cancelled.into(), "query_cancelled", 409),
            (
                SkyServerError::NotFound("object 9".into()),
                "not_found",
                404,
            ),
            (
                SqlError::UnknownRelease("dr9".into()).into(),
                "unknown_release",
                404,
            ),
        ];
        for (e, code, status) in cases {
            let api: ApiError = e.into();
            assert_eq!(api.code, code);
            assert_eq!(api.status, status);
        }
    }

    #[test]
    fn shedding_envelopes_carry_retry_after() {
        for code in ["quota_exceeded", "overloaded"] {
            let r = ApiError::new(code, "busy").into_response();
            assert_eq!(r.header("retry-after"), Some(RETRY_AFTER_SECONDS), "{code}");
        }
        // Non-shedding statuses carry no retry hint.
        let r = ApiError::missing_parameter("sql").into_response();
        assert!(r.header("retry-after").is_none());
    }

    #[test]
    fn envelope_shape() {
        let r = ApiError::missing_parameter("sql").into_response();
        assert_eq!(r.status, 400);
        let json: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
        assert_eq!(
            json["error"]["code"],
            serde_json::json!("missing_parameter")
        );
        assert!(json["error"]["message"].as_str().unwrap().contains("sql"));
        assert_eq!(
            json["error"]["detail"]["parameter"],
            serde_json::json!("sql")
        );
    }
}
