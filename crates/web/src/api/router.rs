//! The declarative method + path-pattern router of the API surface.
//!
//! Routes are **data**: a method, a segment pattern with `{typed}`
//! captures, a name, a description, and parameter specs.  Dispatch walks
//! the same table the `GET /api/v1` self-description renders, so the
//! published spec cannot drift from what actually dispatches — there is
//! no second list to forget to update.

use super::error::ApiError;
use super::extract::ApiRequest;
use crate::http::{Request, Response};
use crate::site::SkyServerSite;

/// A route handler: typed request in, response or structured error out.
pub type Handler = fn(&SkyServerSite, &ApiRequest<'_>) -> Result<Response, ApiError>;

/// Where a declared parameter is carried.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamLocation {
    /// A `{capture}` in the path pattern.
    Path,
    /// A query-string parameter (also accepted as a form-body field on
    /// POST).
    Query,
    /// The raw request body (POST).
    Body,
}

impl ParamLocation {
    /// The name used in the generated spec (`"path"`, `"query"`, `"body"`).
    pub fn as_str(self) -> &'static str {
        match self {
            ParamLocation::Path => "path",
            ParamLocation::Query => "query",
            ParamLocation::Body => "body",
        }
    }
}

/// One declared parameter of a route (rendered into the spec).
#[derive(Debug, Clone, Copy)]
pub struct ParamSpec {
    /// Parameter name.
    pub name: &'static str,
    /// Where the parameter is carried.
    pub location: ParamLocation,
    /// Human-readable type (matches the extractor's `TYPE_NAME`).
    pub type_name: &'static str,
    /// Whether the request fails without it.
    pub required: bool,
    /// What the parameter does.
    pub description: &'static str,
}

/// One routable endpoint.
pub struct Route {
    /// HTTP method (`GET`, `POST`, `DELETE`).
    pub method: &'static str,
    /// Path pattern, e.g. `/api/v1/objects/{id}`.
    pub pattern: &'static str,
    /// Stable handler name (spec + conformance tests key on it).
    pub name: &'static str,
    /// One-line description for the spec.
    pub description: &'static str,
    /// Declared parameters.
    pub params: &'static [ParamSpec],
    /// The handler function.
    pub handler: Handler,
}

impl Route {
    /// Match a concrete path against the pattern; returns the captures
    /// (pattern `{name}` segments) on success.
    fn match_path(&self, path: &str) -> Option<Vec<(&'static str, String)>> {
        let mut captures = Vec::new();
        let mut pattern_segments = self.pattern.split('/').filter(|s| !s.is_empty());
        let mut path_segments = path.split('/').filter(|s| !s.is_empty());
        loop {
            match (pattern_segments.next(), path_segments.next()) {
                (None, None) => return Some(captures),
                (Some(pattern), Some(actual)) => {
                    match pattern.strip_prefix('{').and_then(|s| s.strip_suffix('}')) {
                        Some(name) => captures.push((name, actual.to_string())),
                        None if pattern == actual => {}
                        None => return None,
                    }
                }
                _ => return None,
            }
        }
    }
}

/// The route table: dispatch and self-description from the same data.
pub struct Router {
    routes: Vec<Route>,
}

impl Router {
    /// Build a router over a route table.
    pub fn new(routes: Vec<Route>) -> Router {
        Router { routes }
    }

    /// The route table (the spec endpoint and tests iterate it).
    pub fn routes(&self) -> &[Route] {
        &self.routes
    }

    /// Dispatch one request: path + method matching, typed extraction in
    /// the handler, and the error envelope for every failure mode —
    /// `404 unknown_endpoint` when no pattern matches,
    /// `405 method_not_allowed` (with the allowed methods in the detail)
    /// when the path exists under other methods.
    pub fn dispatch(&self, site: &SkyServerSite, req: &Request) -> Response {
        let path = req.path.trim_end_matches('/');
        let path = if path.is_empty() { "/" } else { path };
        let mut allowed: Vec<&'static str> = Vec::new();
        for route in &self.routes {
            if let Some(captures) = route.match_path(path) {
                if route.method == req.method {
                    let api_req = ApiRequest::new(req, captures);
                    return match (route.handler)(site, &api_req) {
                        Ok(response) => response,
                        Err(error) => error.into_response(),
                    };
                }
                allowed.push(route.method);
            }
        }
        if !allowed.is_empty() {
            allowed.sort_unstable();
            allowed.dedup();
            return ApiError::new(
                "method_not_allowed",
                format!("{} is not allowed on {path}", req.method),
            )
            .with_detail(serde_json::json!({ "allowed": allowed }))
            .into_response();
        }
        ApiError::new(
            "unknown_endpoint",
            format!("no API endpoint matches {path}; GET /api/v1 lists the surface"),
        )
        .into_response()
    }

    /// The machine-readable spec, generated from the route table.
    pub fn spec(&self) -> serde_json::Value {
        let endpoints: Vec<serde_json::Value> = self
            .routes
            .iter()
            .map(|route| {
                let params: Vec<serde_json::Value> = route
                    .params
                    .iter()
                    .map(|p| {
                        serde_json::json!({
                            "name": p.name,
                            "in": p.location.as_str(),
                            "type": p.type_name,
                            "required": p.required,
                            "description": p.description,
                        })
                    })
                    .collect();
                serde_json::json!({
                    "method": route.method,
                    "path": route.pattern,
                    "name": route.name,
                    "description": route.description,
                    "params": params,
                })
            })
            .collect();
        let error_codes: Vec<serde_json::Value> = super::error::ERROR_CODES
            .iter()
            .map(|(code, status, description)| {
                serde_json::json!({
                    "code": code,
                    "status": status,
                    "description": description,
                })
            })
            .collect();
        let formats: Vec<&str> = crate::formats::OutputFormat::ALL
            .iter()
            .map(|f| f.name())
            .collect();
        serde_json::json!({
            "api": "skyserver",
            "version": "v1",
            "self": super::API_PREFIX,
            "formats": formats,
            "pagination": {
                "limit_param": "limit",
                "cursor_param": "cursor",
                "default_limit": super::pagination::DEFAULT_PAGE_LIMIT,
                "max_limit": super::pagination::MAX_PAGE_LIMIT,
            },
            "endpoints": endpoints,
            "error_codes": error_codes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn route(method: &'static str, pattern: &'static str) -> Route {
        Route {
            method,
            pattern,
            name: "test",
            description: "",
            params: &[],
            handler: |_, _| Ok(Response::ok("text/plain", "ok")),
        }
    }

    #[test]
    fn patterns_match_and_capture() {
        let r = route("GET", "/api/v1/objects/{id}");
        assert_eq!(
            r.match_path("/api/v1/objects/42"),
            Some(vec![("id", "42".to_string())])
        );
        assert_eq!(r.match_path("/api/v1/objects"), None);
        assert_eq!(r.match_path("/api/v1/objects/42/extra"), None);
        assert_eq!(r.match_path("/api/v1/jobs/42"), None);
        let r = route("GET", "/api/v1/jobs/{id}/result");
        assert_eq!(
            r.match_path("/api/v1/jobs/7/result"),
            Some(vec![("id", "7".to_string())])
        );
        assert_eq!(r.match_path("/api/v1/jobs/7"), None);
    }
}
