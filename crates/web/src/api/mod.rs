//! The versioned, typed programmatic surface: `/api/v1`.
//!
//! The paper's whole point is *programmatic* public access — astronomers
//! and their tools hitting the archive through stable URLs, not just
//! browsers (§1, §4).  This module is that contract, redesigned from the
//! `.asp`-era string matching into four explicit layers:
//!
//! * a declarative [`Router`] — method + path-segment patterns with
//!   `{typed}` captures; the route table is data, and the `GET /api/v1`
//!   self-description is generated from the very table dispatch walks,
//!   so docs cannot drift from behaviour;
//! * an extractor layer — every path/query/body parameter parses through
//!   [`FromParam`] into its declared type, and a malformed value is a
//!   structured `400`, never a silent default;
//! * a machine-readable error envelope ([`ApiError`]) —
//!   `{"error": {code, message, detail}}` with the stable [`ERROR_CODES`]
//!   taxonomy mapped from [`skyserver::SqlError`] /
//!   [`skyserver::SkyServerError`] / job-queue errors (400 parameter,
//!   404 missing, 408 timeout, 422 SQL, 429 quota, 503 overload);
//! * cursor pagination and content negotiation ([`Page`],
//!   [`negotiate_format`]) — `?limit=` + opaque `?cursor=` continuation
//!   tokens with total/truncation metadata, and one `Accept`/`?format=`
//!   resolution path through [`OutputFormat`](crate::formats::OutputFormat)
//!   (`406` when nothing is servable).
//!
//! The legacy `/tools`/`.asp`/`/x_job` routes in [`crate::site`] are thin
//! adapters over the same typed operations, so one implementation serves
//! both surfaces.

mod error;
mod extract;
pub(crate) mod handlers;
mod pagination;
mod router;

pub use error::{status_for, ApiError, ERROR_CODES, RETRY_AFTER_SECONDS};
pub use extract::{check_range, negotiate_format, ApiRequest, FromParam, Zoom};
pub use pagination::{
    decode_cursor, encode_cursor, paginate, render_page, Page, PageMeta, DEFAULT_PAGE_LIMIT,
    MAX_PAGE_LIMIT,
};
pub use router::{Handler, ParamLocation, ParamSpec, Route, Router};

use crate::http::{Request, Response};
use crate::site::SkyServerSite;
use std::sync::OnceLock;

/// The version prefix every route in this module lives under.
pub const API_PREFIX: &str = "/api/v1";

/// The process-wide v1 router.  Built once; the route table is static
/// data shared by dispatch and the spec endpoint.
pub fn router() -> &'static Router {
    static ROUTER: OnceLock<Router> = OnceLock::new();
    ROUTER.get_or_init(handlers::v1_router)
}

/// Dispatch an `/api/...` request through the typed router.
pub fn dispatch(site: &SkyServerSite, req: &Request) -> Response {
    router().dispatch(site, req)
}
