//! The `/api/v1` endpoint handlers and the shared typed operations the
//! legacy `.asp`/`/tools`/`/x_job` adapters reuse.
//!
//! Each handler is glue only: extractors parse and validate, the shared
//! `*_payload` operations talk to the engine/job queue, pagination and
//! formats render.  The legacy routes in [`crate::site`] call the same
//! operations — one implementation serves both surfaces.

use super::error::ApiError;
use super::extract::{check_range, ApiRequest};
use super::pagination::{render_page, Page};
use super::router::{ParamLocation, ParamSpec, Route, Router};
use crate::cache::normalize_sql;
use crate::formats::OutputFormat;
use crate::http::Response;
use crate::jobs::{JobState, JobStatus};
use crate::site::SkyServerSite;
use skyserver::{ObjectSummary, ResultSet, StatementOutcome};
use std::sync::Arc;

/// The submitter identity used when a job request names none (the
/// reproduction has no accounts; the real CasJobs did).
pub(crate) const ANONYMOUS: &str = "anonymous";

const JSON_CONTENT_TYPE: &str = "application/json; charset=utf-8";

// ---------------------------------------------------------------------------
// Shared typed operations (API handlers and legacy adapters both call
// these).
// ---------------------------------------------------------------------------

/// Run a read-only SQL script under the public limits (§4), gated by the
/// site's admission controller.  Beyond the in-flight cap the request is
/// shed with `503 overloaded` (+ `Retry-After`); every admitted query
/// carries the governor's wall-clock deadline into the executor and runs
/// under the public memory budget, so expiry and exhaustion come back as
/// structured `408` / `422` envelopes with partial progress stats.
/// The script may be pinned to a published data release, in which case it
/// runs against that release's immutable snapshot instead of the live
/// head (`404 unknown_release` if no such release is published).
pub(crate) fn public_query_on(
    site: &SkyServerSite,
    sql: &str,
    release: Option<&str>,
) -> Result<StatementOutcome, ApiError> {
    let Some(_permit) = site.governor().admit() else {
        return Err(ApiError::new(
            "overloaded",
            "the server is at its concurrent-query cap; retry shortly",
        ));
    };
    let monitor = skyserver::QueryMonitor::new();
    monitor.set_deadline(site.governor().deadline());
    let outcome = site.sky().execute_public_on(sql, &monitor, release);
    outcome.map_err(|e| {
        let api = ApiError::from(e);
        // Resource-pressure failures report how far the query got
        // before the governor stopped it.
        if api.code == "query_timeout" || api.code == "resource_exhausted" {
            let partial = serde_json::json!({
                "rows_processed": monitor.rows_processed(),
                "peak_bytes": monitor.peak_bytes(),
            });
            api.with_detail(partial)
        } else {
            api
        }
    })
}

/// Materialize a paginated resource through the site's rows cache: the
/// first page of a cursor walk executes `produce` and caches the result
/// under the walk's cursor key; every later page reads memory instead of
/// re-running the query.  (Admin writes clear the cache.)
fn materialized(
    site: &SkyServerSite,
    key: &str,
    produce: impl FnOnce() -> Result<ResultSet, ApiError>,
) -> Result<Arc<ResultSet>, ApiError> {
    if let Some(hit) = site.rows_cache().get(key) {
        return Ok(hit);
    }
    let result = Arc::new(produce()?);
    site.rows_cache()
        .insert(key.to_string(), Arc::clone(&result));
    Ok(result)
}

/// The Explore drill-down payload for one object, optionally pinned to a
/// published data release.
pub(crate) fn explore_payload(
    site: &SkyServerSite,
    id: i64,
    release: Option<&str>,
) -> Result<ObjectSummary, ApiError> {
    site.sky().explore_on(id, release).map_err(ApiError::from)
}

/// Objects within `radius_arcmin` of `(ra, dec)`, nearest first,
/// optionally pinned to a published data release.
pub(crate) fn cone_payload(
    site: &SkyServerSite,
    ra: f64,
    dec: f64,
    radius_arcmin: f64,
    release: Option<&str>,
) -> Result<ResultSet, ApiError> {
    site.sky()
        .nearby_objects_on(ra, dec, radius_arcmin, release)
        .map_err(ApiError::from)
}

/// Submit a batch job (`429 quota_exceeded` on a per-submitter limit).
pub(crate) fn submit_job(
    site: &SkyServerSite,
    submitter: &str,
    sql: &str,
) -> Result<u64, ApiError> {
    site.jobs()
        .submit(submitter, sql)
        .map_err(|quota| ApiError::new("quota_exceeded", quota))
}

/// A job's status snapshot (`404` for unknown or expired ids).
pub(crate) fn job_status_payload(site: &SkyServerSite, id: u64) -> Result<JobStatus, ApiError> {
    site.jobs()
        .status(id)
        .ok_or_else(|| ApiError::not_found(format!("job {id} (unknown id, or its result expired)")))
}

/// The stored result of a finished job, with per-state structured errors.
pub(crate) fn job_result_payload(
    site: &SkyServerSite,
    id: u64,
) -> Result<Arc<ResultSet>, ApiError> {
    let status = job_status_payload(site, id)?;
    match status.state {
        JobState::Done => site.jobs().result(id).map_err(ApiError::internal),
        JobState::Queued | JobState::Running => Err(ApiError::new(
            "job_not_ready",
            format!(
                "job {id} is still {}; poll its status until it is done",
                status.state
            ),
        )),
        JobState::Failed => Err(ApiError::new(
            "job_failed",
            format!(
                "job {id} failed: {}",
                status.error.as_deref().unwrap_or("unknown error")
            ),
        )),
        JobState::Cancelled => Err(ApiError::new(
            "job_cancelled",
            format!("job {id} was cancelled"),
        )),
    }
}

/// Cancel a job (`404` for unknown ids); returns the post-cancel state.
pub(crate) fn cancel_job(site: &SkyServerSite, id: u64) -> Result<JobState, ApiError> {
    site.jobs()
        .cancel(id)
        .ok_or_else(|| ApiError::not_found(format!("job {id}")))
}

/// The JSON rendering of a job status snapshot (shared with the legacy
/// `/x_job/status` endpoint).
pub(crate) fn job_status_json(status: &JobStatus) -> serde_json::Value {
    serde_json::json!({
        "job_id": status.id,
        "submitter": status.submitter,
        "sql": status.sql,
        "state": status.state.as_str(),
        "queue_position": status.queue_position,
        "rows_processed": status.rows_processed,
        "result_rows": status.result_rows,
        "result_bytes": status.result_bytes,
        "truncated": status.truncated,
        "error": status.error,
        "waited_seconds": status.waited_seconds,
        "run_seconds": status.run_seconds,
    })
}

/// Serialise a JSON document body; a serialisation failure is a `500`
/// envelope, never a `200` with an empty body (the old explore endpoint
/// did exactly that via `unwrap_or_default`).
pub(crate) fn json_document<T: serde::Serialize>(value: &T) -> Result<Response, ApiError> {
    match serde_json::to_vec(value) {
        Ok(body) => Ok(Response::ok(JSON_CONTENT_TYPE, body)),
        Err(e) => Err(ApiError::internal(format!(
            "failed to serialise the response: {e}"
        ))),
    }
}

/// Require the negotiated format to be JSON (document endpoints such as
/// `/objects/{id}` and `/schema` have no tabular rendering): `406` with
/// the supported list otherwise.
fn require_json(req: &ApiRequest<'_>) -> Result<(), ApiError> {
    let format = req.format(OutputFormat::Json)?;
    if format != OutputFormat::Json {
        return Err(ApiError::new(
            "not_acceptable",
            format!(
                "this endpoint only serves json (requested {})",
                format.name()
            ),
        )
        .with_detail(serde_json::json!({ "supported": ["json"] })));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Endpoint handlers.
// ---------------------------------------------------------------------------

fn spec(_site: &SkyServerSite, req: &ApiRequest<'_>) -> Result<Response, ApiError> {
    require_json(req)?;
    Ok(Response::ok(
        JSON_CONTENT_TYPE,
        super::router().spec().to_string().into_bytes(),
    ))
}

fn query(site: &SkyServerSite, req: &ApiRequest<'_>) -> Result<Response, ApiError> {
    let sql = req.sql_text("sql")?;
    let format = req.format(OutputFormat::Json)?;
    let release: Option<String> = req.optional("release")?;
    // The release tag keys the materialized walk to its snapshot: a cursor
    // walk started on a pinned release stays on that release across a
    // publish, and head walks are invalidated by the generation bump.
    let key = format!(
        "{}|query|{}",
        site.release_tag(release.as_deref()),
        normalize_sql(&sql)
    );
    let page = Page::from_request(req, &key)?;
    let result = materialized(site, &key, || {
        Ok(public_query_on(site, &sql, release.as_deref())?.result)
    })?;
    Ok(render_page(&result, &page, &key, format))
}

fn object(site: &SkyServerSite, req: &ApiRequest<'_>) -> Result<Response, ApiError> {
    require_json(req)?;
    let id: i64 = req.path_param("id")?;
    let release: Option<String> = req.optional("release")?;
    json_document(&explore_payload(site, id, release.as_deref())?)
}

fn cone(site: &SkyServerSite, req: &ApiRequest<'_>) -> Result<Response, ApiError> {
    let ra: f64 = req.require("ra")?;
    check_range("ra", ra, 0.0, 360.0)?;
    let dec: f64 = req.require("dec")?;
    check_range("dec", dec, -90.0, 90.0)?;
    let radius: f64 = req.require("radius")?;
    if !radius.is_finite() || radius <= 0.0 || radius > 600.0 {
        return Err(ApiError::invalid_parameter(
            "radius",
            &radius.to_string(),
            "number",
            "must be a radius in arcminutes between 0 (exclusive) and 600",
        ));
    }
    let format = req.format(OutputFormat::Json)?;
    let release: Option<String> = req.optional("release")?;
    let key = format!(
        "{}|cone|{ra}|{dec}|{radius}",
        site.release_tag(release.as_deref())
    );
    let page = Page::from_request(req, &key)?;
    let result = materialized(site, &key, || {
        cone_payload(site, ra, dec, radius, release.as_deref())
    })?;
    Ok(render_page(&result, &page, &key, format))
}

fn jobs_list(site: &SkyServerSite, req: &ApiRequest<'_>) -> Result<Response, ApiError> {
    require_json(req)?;
    let submitter: Option<String> = req.optional("submitter")?;
    let jobs: Vec<serde_json::Value> = site
        .jobs()
        .jobs(submitter.as_deref())
        .iter()
        .map(job_status_json)
        .collect();
    Ok(Response::ok(
        JSON_CONTENT_TYPE,
        serde_json::json!({ "jobs": jobs }).to_string().into_bytes(),
    ))
}

fn job_submit(site: &SkyServerSite, req: &ApiRequest<'_>) -> Result<Response, ApiError> {
    let sql = req.sql_text("sql")?;
    let submitter: String = req
        .optional("submitter")?
        .unwrap_or_else(|| ANONYMOUS.to_string());
    let id = submit_job(site, &submitter, &sql)?;
    let body = serde_json::json!({
        "job_id": id,
        "state": "queued",
        "href": format!("{}/jobs/{id}", super::API_PREFIX),
    });
    let mut response = Response::ok(JSON_CONTENT_TYPE, body.to_string().into_bytes());
    response.status = 201;
    Ok(response)
}

fn job_status(site: &SkyServerSite, req: &ApiRequest<'_>) -> Result<Response, ApiError> {
    require_json(req)?;
    let id: u64 = req.path_param("id")?;
    let status = job_status_payload(site, id)?;
    Ok(Response::ok(
        JSON_CONTENT_TYPE,
        job_status_json(&status).to_string().into_bytes(),
    ))
}

fn job_result(site: &SkyServerSite, req: &ApiRequest<'_>) -> Result<Response, ApiError> {
    let id: u64 = req.path_param("id")?;
    let format = req.format(OutputFormat::Json)?;
    let key = format!("job|{id}");
    let page = Page::from_request(req, &key)?;
    let result = job_result_payload(site, id)?;
    Ok(render_page(&result, &page, &key, format))
}

fn job_cancel(site: &SkyServerSite, req: &ApiRequest<'_>) -> Result<Response, ApiError> {
    let id: u64 = req.path_param("id")?;
    let state = cancel_job(site, id)?;
    Ok(Response::ok(
        JSON_CONTENT_TYPE,
        serde_json::json!({ "job_id": id, "state": state.as_str() })
            .to_string()
            .into_bytes(),
    ))
}

fn schema(site: &SkyServerSite, req: &ApiRequest<'_>) -> Result<Response, ApiError> {
    require_json(req)?;
    json_document(&site.sky().schema_description())
}

fn releases(site: &SkyServerSite, req: &ApiRequest<'_>) -> Result<Response, ApiError> {
    require_json(req)?;
    json_document(&serde_json::json!({ "releases": site.sky().release_infos() }))
}

fn releases_diff(site: &SkyServerSite, req: &ApiRequest<'_>) -> Result<Response, ApiError> {
    require_json(req)?;
    let from: String = req.require("from")?;
    let to: String = req.require("to")?;
    let diff = site
        .sky()
        .release_diff(&from, &to)
        .map_err(ApiError::from)?;
    json_document(&diff)
}

// ---------------------------------------------------------------------------
// The route table.
// ---------------------------------------------------------------------------

const FORMAT_PARAM: ParamSpec = ParamSpec {
    name: "format",
    location: ParamLocation::Query,
    type_name: "one of grid|csv|xml|json|fits",
    required: false,
    description: "Output format; overrides the Accept header. Default json.",
};

const LIMIT_PARAM: ParamSpec = ParamSpec {
    name: "limit",
    location: ParamLocation::Query,
    type_name: "integer",
    required: false,
    description: "Page size (1..=1000, default 100).",
};

const CURSOR_PARAM: ParamSpec = ParamSpec {
    name: "cursor",
    location: ParamLocation::Query,
    type_name: "opaque cursor",
    required: false,
    description: "Continuation token from the previous page's next_cursor.",
};

const SQL_PARAM: ParamSpec = ParamSpec {
    name: "sql",
    location: ParamLocation::Query,
    type_name: "string",
    required: true,
    description: "The read-only SQL script to run (on POST, may instead be \
                  the raw request body).",
};

const RELEASE_PARAM: ParamSpec = ParamSpec {
    name: "release",
    location: ParamLocation::Query,
    type_name: "string",
    required: false,
    description: "Pin the request to a published data release (e.g. dr1); \
                  default is the live head. Unknown names are a 404 \
                  unknown_release.",
};

const JOB_ID_PARAM: ParamSpec = ParamSpec {
    name: "id",
    location: ParamLocation::Path,
    type_name: "integer",
    required: true,
    description: "The job id returned at submission.",
};

/// Build the v1 route table (the one the router dispatches *and* the spec
/// endpoint renders).
pub(crate) fn v1_router() -> Router {
    Router::new(vec![
        Route {
            method: "GET",
            pattern: "/api/v1",
            name: "spec",
            description: "This machine-readable description of the API surface.",
            params: &[],
            handler: spec,
        },
        Route {
            method: "GET",
            pattern: "/api/v1/query",
            name: "query",
            description: "Run a read-only SQL script under the public limits \
                          (1,000 rows / 30 seconds) and page the result.",
            params: &[
                SQL_PARAM,
                FORMAT_PARAM,
                LIMIT_PARAM,
                CURSOR_PARAM,
                RELEASE_PARAM,
            ],
            handler: query,
        },
        Route {
            method: "POST",
            pattern: "/api/v1/query",
            name: "query",
            description: "As GET /api/v1/query; the SQL may be a form field \
                          or the raw request body.",
            params: &[
                SQL_PARAM,
                FORMAT_PARAM,
                LIMIT_PARAM,
                CURSOR_PARAM,
                RELEASE_PARAM,
            ],
            handler: query,
        },
        Route {
            method: "GET",
            pattern: "/api/v1/objects/{id}",
            name: "explore_object",
            description: "The Explore drill-down for one object: attributes, \
                          neighbours, spectrum, cross-matches.",
            params: &[
                ParamSpec {
                    name: "id",
                    location: ParamLocation::Path,
                    type_name: "integer",
                    required: true,
                    description: "The objID of a PhotoObj row.",
                },
                RELEASE_PARAM,
            ],
            handler: object,
        },
        Route {
            method: "GET",
            pattern: "/api/v1/cone",
            name: "cone_search",
            description: "Objects within a radius of a sky position, nearest \
                          first (fGetNearbyObjEq as a REST resource).",
            params: &[
                ParamSpec {
                    name: "ra",
                    location: ParamLocation::Query,
                    type_name: "number",
                    required: true,
                    description: "Right ascension in degrees (0..=360).",
                },
                ParamSpec {
                    name: "dec",
                    location: ParamLocation::Query,
                    type_name: "number",
                    required: true,
                    description: "Declination in degrees (-90..=90).",
                },
                ParamSpec {
                    name: "radius",
                    location: ParamLocation::Query,
                    type_name: "number",
                    required: true,
                    description: "Search radius in arcminutes (0 < r <= 600).",
                },
                FORMAT_PARAM,
                LIMIT_PARAM,
                CURSOR_PARAM,
                RELEASE_PARAM,
            ],
            handler: cone,
        },
        Route {
            method: "GET",
            pattern: "/api/v1/jobs",
            name: "jobs_list",
            description: "Batch jobs, newest first, optionally filtered by \
                          submitter.",
            params: &[ParamSpec {
                name: "submitter",
                location: ParamLocation::Query,
                type_name: "string",
                required: false,
                description: "Only this submitter's jobs.",
            }],
            handler: jobs_list,
        },
        Route {
            method: "POST",
            pattern: "/api/v1/jobs",
            name: "job_submit",
            description: "Submit a read-only SQL script as a batch job \
                          (201 with the job id and href).",
            params: &[
                ParamSpec {
                    name: "sql",
                    location: ParamLocation::Query,
                    type_name: "string",
                    required: true,
                    description: "The read-only SQL script to run as a job \
                                  (may instead be the raw request body).",
                },
                ParamSpec {
                    name: "submitter",
                    location: ParamLocation::Query,
                    type_name: "string",
                    required: false,
                    description: "Submitter identity for quotas and the job \
                                  list (default \"anonymous\").",
                },
            ],
            handler: job_submit,
        },
        Route {
            method: "GET",
            pattern: "/api/v1/jobs/{id}",
            name: "job_status",
            description: "One job's state, queue position and progress.",
            params: &[JOB_ID_PARAM],
            handler: job_status,
        },
        Route {
            method: "GET",
            pattern: "/api/v1/jobs/{id}/result",
            name: "job_result",
            description: "The stored result of a Done job, paged and \
                          format-negotiated like /query.",
            params: &[JOB_ID_PARAM, FORMAT_PARAM, LIMIT_PARAM, CURSOR_PARAM],
            handler: job_result,
        },
        Route {
            method: "DELETE",
            pattern: "/api/v1/jobs/{id}",
            name: "job_cancel",
            description: "Cancel a queued or running job.",
            params: &[JOB_ID_PARAM],
            handler: job_cancel,
        },
        Route {
            method: "POST",
            pattern: "/api/v1/jobs/{id}/cancel",
            name: "job_cancel",
            description: "As DELETE /api/v1/jobs/{id}, for clients that \
                          cannot send DELETE.",
            params: &[JOB_ID_PARAM],
            handler: job_cancel,
        },
        Route {
            method: "GET",
            pattern: "/api/v1/schema",
            name: "schema",
            description: "The schema-browser metadata: tables, views, \
                          indices, functions.",
            params: &[],
            handler: schema,
        },
        Route {
            method: "GET",
            pattern: "/api/v1/releases",
            name: "releases_list",
            description: "The published data releases, oldest first, with \
                          per-release table/row/byte totals.",
            params: &[],
            handler: releases,
        },
        Route {
            method: "GET",
            pattern: "/api/v1/releases/diff",
            name: "releases_diff",
            description: "Per-table change report between two published \
                          releases (computed from shared copy-on-write \
                          segments, so it is cheap).",
            params: &[
                ParamSpec {
                    name: "from",
                    location: ParamLocation::Query,
                    type_name: "string",
                    required: true,
                    description: "The older release name.",
                },
                ParamSpec {
                    name: "to",
                    location: ParamLocation::Query,
                    type_name: "string",
                    required: true,
                    description: "The newer release name.",
                },
            ],
            handler: releases_diff,
        },
    ])
}
