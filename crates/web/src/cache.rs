//! An LRU query-result cache for the SQL search page.
//!
//! The paper's hottest pages (famous places, the galleries linked from the
//! home page) are the *same* public queries issued over and over by
//! thousands of visitors — §7's TV-driven 20x spike was almost entirely
//! repeat traffic.  Caching the rendered result body by **normalized SQL +
//! output format** turns that workload into memory reads.  The cache is
//! safe because the public search page runs on the engine's read-only path
//! (it cannot write), and any administrative write to the catalog goes
//! through [`crate::site::SkyServerSite::with_admin`], which clears the
//! cache.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A cached rendered response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedBody {
    /// The rendered response's content type.
    pub content_type: String,
    /// The rendered response body.
    pub body: Vec<u8>,
}

#[derive(Debug)]
struct Entry<V> {
    /// `Arc` so a hit hands out a refcount bump, not a body copy, while
    /// the cache mutex is held.
    value: Arc<V>,
    /// Recency stamp: larger = more recently used.
    stamp: u64,
    /// Bytes this entry accounts for against the cache's byte budget.
    bytes: usize,
}

#[derive(Debug)]
struct Inner<V> {
    map: HashMap<String, Entry<V>>,
    tick: u64,
    /// Sum of every entry's accounted bytes (kept <= the byte budget).
    total_bytes: usize,
}

impl<V> Default for Inner<V> {
    fn default() -> Self {
        Inner {
            map: HashMap::new(),
            tick: 0,
            total_bytes: 0,
        }
    }
}

/// The shared LRU machinery: a string-keyed map bounded by entry count
/// **and** accounted bytes, with hit/miss counters.  [`ResultCache`]
/// (rendered bodies) and [`RowCache`] (materialized result sets) are the
/// two instantiations.
#[derive(Debug)]
struct Lru<V> {
    inner: Mutex<Inner<V>>,
    capacity: usize,
    byte_budget: usize,
    /// Entries accounting for more than this are not cached at all.
    max_entry_bytes: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<V> Lru<V> {
    fn new(capacity: usize, byte_budget: usize, max_entry_bytes: usize) -> Lru<V> {
        Lru {
            inner: Mutex::new(Inner::default()),
            capacity,
            byte_budget,
            max_entry_bytes,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn get(&self, key: &str) -> Option<Arc<V>> {
        if self.capacity == 0 {
            return None;
        }
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some(entry) => {
                entry.stamp = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&entry.value))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert with the caller-computed byte accounting, evicting
    /// least-recently-used entries until both bounds fit.  Entries over
    /// the per-entry cap — or too big to ever fit the byte budget — are
    /// ignored rather than allowed to wipe the whole cache.
    fn insert(&self, key: String, value: Arc<V>, entry_bytes: usize) {
        if self.capacity == 0
            || entry_bytes > self.max_entry_bytes
            || entry_bytes > self.byte_budget
        {
            return;
        }
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        inner.tick += 1;
        let tick = inner.tick;
        // Replacing an entry releases its bytes before the budget check.
        if let Some(old) = inner.map.remove(&key) {
            inner.total_bytes -= old.bytes;
        }
        while inner.map.len() >= self.capacity || inner.total_bytes + entry_bytes > self.byte_budget
        {
            let Some(lru) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            if let Some(evicted) = inner.map.remove(&lru) {
                inner.total_bytes -= evicted.bytes;
            }
        }
        inner.total_bytes += entry_bytes;
        inner.map.insert(
            key,
            Entry {
                value,
                stamp: tick,
                bytes: entry_bytes,
            },
        );
    }

    fn clear(&self) {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        inner.map.clear();
        inner.total_bytes = 0;
    }

    /// Keep only the entries whose key satisfies `keep`, releasing the
    /// byte accounting of everything dropped.
    fn retain(&self, keep: impl Fn(&str) -> bool) {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut freed = 0usize;
        inner.map.retain(|key, entry| {
            if keep(key) {
                true
            } else {
                freed += entry.bytes;
                false
            }
        });
        inner.total_bytes -= freed;
    }

    fn stats(&self) -> CacheStats {
        let inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: inner.map.len(),
            bytes: inner.total_bytes,
        }
    }
}

/// Counters and size of the cache (surfaced on the schema/QA page).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries currently cached.
    pub entries: usize,
    /// Bytes of rendered bodies (plus keys) currently cached.
    pub bytes: usize,
}

/// Default byte budget: generous for the paper's popular-page workload but
/// a hard bound — 128 entries at the 1 MiB per-body cap would otherwise
/// be 128 MiB.
const DEFAULT_BYTE_BUDGET: usize = 16 << 20;

/// A thread-safe LRU cache from normalized query keys to rendered bodies,
/// bounded by **both** an entry count and a rendered-body byte budget
/// (evicting by count alone lets a handful of huge bodies blow memory).
#[derive(Debug)]
pub struct ResultCache {
    lru: Lru<CachedBody>,
}

impl ResultCache {
    /// A cache holding at most `capacity` rendered results under the
    /// default byte budget.  A capacity of 0 disables caching entirely
    /// (every lookup misses without being counted, inserts are dropped).
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache::with_byte_budget(capacity, DEFAULT_BYTE_BUDGET)
    }

    /// A cache bounded by `capacity` entries **and** `byte_budget` bytes
    /// of rendered bodies, whichever fills first.  Bodies over a 1 MiB
    /// per-entry cap are never cached (a full-table dump should not
    /// evict a page of popular galleries).
    pub fn with_byte_budget(capacity: usize, byte_budget: usize) -> ResultCache {
        ResultCache {
            lru: Lru::new(capacity, byte_budget, 1 << 20),
        }
    }

    /// Look up a key, refreshing its recency.  Counts a hit or a miss.
    pub fn get(&self, key: &str) -> Option<Arc<CachedBody>> {
        self.lru.get(key)
    }

    /// Insert a rendered body, evicting least-recently-used entries until
    /// both the entry count and the byte budget fit.  An injected
    /// `cache.insert` fault skips caching silently: the cache is an
    /// accelerator, so losing an insert must never fail the request.
    pub fn insert(&self, key: String, value: CachedBody) {
        if skyserver::storage::failpoints::check("cache.insert").is_err() {
            return;
        }
        let entry_bytes = key.len() + value.content_type.len() + value.body.len();
        self.lru.insert(key, Arc::new(value), entry_bytes);
    }

    /// Drop every entry (called after any administrative write).
    pub fn clear(&self) {
        self.lru.clear();
    }

    /// Keep only entries whose key satisfies `keep`.  The site uses this
    /// after a publish: entries pinned to an immutable release survive,
    /// only the live-head entries are invalidated.
    pub fn retain(&self, keep: impl Fn(&str) -> bool) {
        self.lru.retain(keep);
    }

    /// Hit/miss/size counters.
    pub fn stats(&self) -> CacheStats {
        self.lru.stats()
    }
}

/// An LRU cache of **materialized result sets** keyed by the API's
/// pagination resource key (the same `normalize_sql`-based key the
/// continuation cursors fingerprint).
///
/// A cursor walk issues one request per page; without this cache every
/// page re-executes the full query from scratch — a 1,000-row result
/// walked at the default limit of 100 would run the identical scan ten
/// times.  With it, the first page executes and materializes, and the
/// rest of the walk reads memory.  Cleared on administrative writes
/// alongside [`ResultCache`].
#[derive(Debug)]
pub struct RowCache {
    lru: Lru<skyserver::ResultSet>,
}

impl RowCache {
    /// A cache bounded by `capacity` entries and `byte_budget` accounted
    /// bytes (per-entry cap 1 MiB, like the rendered-body cache).
    /// Capacity 0 disables caching.
    pub fn new(capacity: usize, byte_budget: usize) -> RowCache {
        RowCache {
            lru: Lru::new(capacity, byte_budget, 1 << 20),
        }
    }

    /// Look up a materialized result, refreshing its recency.
    pub fn get(&self, key: &str) -> Option<Arc<skyserver::ResultSet>> {
        self.lru.get(key)
    }

    /// Insert a materialized result (shared, not copied).  Shares the
    /// `cache.insert` failpoint with [`ResultCache`]: an injected fault
    /// skips caching silently.
    pub fn insert(&self, key: String, result: Arc<skyserver::ResultSet>) {
        if skyserver::storage::failpoints::check("cache.insert").is_err() {
            return;
        }
        let entry_bytes = key.len() + crate::jobs::approx_result_bytes(&result) as usize;
        self.lru.insert(key, result, entry_bytes);
    }

    /// Drop every entry (called after any administrative write).
    pub fn clear(&self) {
        self.lru.clear();
    }

    /// Keep only entries whose key satisfies `keep` (see
    /// [`ResultCache::retain`]).
    pub fn retain(&self, keep: impl Fn(&str) -> bool) {
        self.lru.retain(keep);
    }

    /// Hit/miss/size counters.
    pub fn stats(&self) -> CacheStats {
        self.lru.stats()
    }
}

/// Normalize SQL for use as a cache key: collapse whitespace runs to one
/// space, trim, and lowercase everything **outside** single-quoted string
/// literals (the dialect is case-insensitive except in literals, so
/// `SELECT objID  FROM  PhotoObj` and `select objid from photoobj` hit the
/// same entry while `'Galaxy'` and `'galaxy'` stay distinct).
pub fn normalize_sql(sql: &str) -> String {
    let mut out = String::with_capacity(sql.len());
    let mut in_literal = false;
    let mut pending_space = false;
    for c in sql.chars() {
        if !in_literal && c.is_whitespace() {
            pending_space = true;
            continue;
        }
        if pending_space {
            if !out.is_empty() {
                out.push(' ');
            }
            pending_space = false;
        }
        if c == '\'' {
            in_literal = !in_literal;
            out.push(c);
        } else if in_literal {
            out.push(c);
        } else {
            out.push(c.to_ascii_lowercase());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(s: &str) -> CachedBody {
        CachedBody {
            content_type: "text/plain".into(),
            body: s.as_bytes().to_vec(),
        }
    }

    #[test]
    fn normalization_collapses_whitespace_and_case_outside_literals() {
        assert_eq!(
            normalize_sql("  SELECT  objID\n FROM\tPhotoObj  "),
            "select objid from photoobj"
        );
        assert_eq!(
            normalize_sql("select 'Messier 31'  from t"),
            "select 'Messier 31' from t"
        );
        // Literal case is preserved, so different literals keep distinct keys.
        assert_ne!(
            normalize_sql("select * from t where n = 'A'"),
            normalize_sql("select * from t where n = 'a'")
        );
    }

    #[test]
    fn hit_miss_and_counters() {
        let cache = ResultCache::new(4);
        assert!(cache.get("k").is_none());
        cache.insert("k".into(), body("v"));
        assert_eq!(cache.get("k").unwrap().body, b"v");
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let cache = ResultCache::new(2);
        cache.insert("a".into(), body("1"));
        cache.insert("b".into(), body("2"));
        // Touch "a" so "b" is the LRU entry.
        assert!(cache.get("a").is_some());
        cache.insert("c".into(), body("3"));
        assert!(cache.get("a").is_some());
        assert!(cache.get("b").is_none(), "LRU entry should be evicted");
        assert!(cache.get("c").is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = ResultCache::new(0);
        cache.insert("a".into(), body("1"));
        assert!(cache.get("a").is_none());
        let stats = cache.stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 0);
    }

    #[test]
    fn clear_empties_the_cache() {
        let cache = ResultCache::new(4);
        cache.insert("a".into(), body("1"));
        cache.clear();
        assert!(cache.get("a").is_none());
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn retain_drops_only_non_matching_entries_and_their_bytes() {
        let cache = ResultCache::new(8);
        cache.insert("rel:head:1|a".into(), body("stale"));
        cache.insert("rel:dr1|b".into(), body("pinned"));
        let before = cache.stats().bytes;
        cache.retain(|k| !k.starts_with("rel:head:"));
        assert!(cache.get("rel:head:1|a").is_none(), "stale entry survived");
        assert!(cache.get("rel:dr1|b").is_some(), "pinned entry was dropped");
        assert!(cache.stats().bytes < before);
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn oversized_bodies_are_not_cached() {
        let cache = ResultCache::new(4);
        let huge = CachedBody {
            content_type: "text/plain".into(),
            body: vec![0u8; (1 << 20) + 1],
        };
        cache.insert("big".into(), huge);
        assert!(cache.get("big").is_none());
    }

    #[test]
    fn byte_budget_evicts_lru_entries_until_the_insert_fits() {
        // Budget for roughly two of the three bodies (keys are 1 byte,
        // content type 10, bodies 100 → 111 accounted bytes each).
        let cache = ResultCache::with_byte_budget(16, 250);
        let block = |c: char| body(&String::from(c).repeat(100));
        cache.insert("a".into(), block('1'));
        cache.insert("b".into(), block('2'));
        assert_eq!(cache.stats().bytes, 222);
        // Touch "a" so "b" is the LRU victim when "c" needs room.
        assert!(cache.get("a").is_some());
        cache.insert("c".into(), block('3'));
        assert!(cache.get("a").is_some());
        assert!(cache.get("b").is_none(), "LRU entry must make room");
        assert!(cache.get("c").is_some());
        assert!(cache.stats().bytes <= 250);
        // Clearing resets the byte accounting.
        cache.clear();
        assert_eq!(cache.stats().bytes, 0);
    }

    #[test]
    fn an_entry_bigger_than_the_budget_does_not_wipe_the_cache() {
        // Regression: before byte accounting, a single huge rendered body
        // (under the 1 MiB per-entry cap) was cached no matter what, so a
        // few of them dwarfed the configured "capacity".  Now it is simply
        // not cached — and must not evict the popular entries either.
        let cache = ResultCache::with_byte_budget(16, 500);
        cache.insert("popular".into(), body("x"));
        cache.insert("huge".into(), body(&"y".repeat(1000)));
        assert!(cache.get("huge").is_none(), "over-budget body was cached");
        assert!(
            cache.get("popular").is_some(),
            "over-budget insert evicted an unrelated entry"
        );
    }

    #[test]
    fn replacing_an_entry_releases_its_bytes() {
        let cache = ResultCache::with_byte_budget(16, 10_000);
        cache.insert("k".into(), body(&"a".repeat(100)));
        let first = cache.stats().bytes;
        cache.insert("k".into(), body("b"));
        assert!(cache.stats().bytes < first);
        assert_eq!(cache.stats().entries, 1);
        assert_eq!(cache.get("k").unwrap().body, b"b");
    }

    #[test]
    fn concurrent_access_is_safe() {
        let cache = ResultCache::new(16);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let cache = &cache;
                scope.spawn(move || {
                    for i in 0..50 {
                        let key = format!("k{}", (t * 50 + i) % 24);
                        if cache.get(&key).is_none() {
                            cache.insert(key, body("x"));
                        }
                    }
                });
            }
        });
        assert!(cache.stats().entries <= 16);
    }
}
