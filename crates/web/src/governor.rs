//! Admission control for the interactive query path (§7).
//!
//! The paper's operations story (a 20x TV-driven traffic spike, months of
//! crawler load) demands that the site *degrade* under overload rather
//! than collapse: beyond a concurrency cap the right answer is an
//! immediate `503` with a `Retry-After` hint, not another queued query
//! that grows memory and stretches every in-flight request's latency.
//!
//! The [`Governor`] is the second of two shedding layers.  The HTTP
//! transport already bounds its accept queue (connections beyond it get a
//! pre-routing `503`); the governor bounds *query cost* behind that — at
//! most [`GovernorConfig::max_in_flight`] public queries execute at once,
//! and every admitted query inherits a wall-clock deadline that the SQL
//! executor checks at each scheduling tick.  Together with the memory
//! budget in `QueryLimits::PUBLIC`, every resource axis (sockets,
//! concurrency, time, bytes) has a bound and a structured error.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

/// Tuning knobs of the admission controller.
#[derive(Debug, Clone)]
pub struct GovernorConfig {
    /// Maximum concurrently executing public queries; the excess is shed
    /// with `503 overloaded` + `Retry-After`.
    pub max_in_flight: usize,
    /// Wall-clock deadline stamped on every admitted query's monitor;
    /// expiry surfaces as `408 query_timeout` with partial progress
    /// stats.  The paper's public budget is 30 seconds (§4).
    pub deadline: Duration,
}

impl Default for GovernorConfig {
    fn default() -> Self {
        GovernorConfig {
            // Comfortably above the default HTTP worker pool (8..=32), so
            // the governor only sheds when queries genuinely pile up
            // (e.g. slow scans pinning workers across keep-alive turns).
            max_in_flight: 64,
            deadline: Duration::from_secs(30),
        }
    }
}

/// Counters the QA page and the overload benchmark read.
#[derive(Debug, Clone, Copy, serde::Serialize)]
pub struct GovernorStats {
    /// Queries executing right now.
    pub in_flight: usize,
    /// Queries admitted since startup.
    pub admitted: u64,
    /// Queries shed with `503 overloaded` since startup.
    pub shed: u64,
}

/// The admission controller: a concurrency gate over the public query
/// path plus the per-request deadline policy.
#[derive(Debug)]
pub struct Governor {
    config: GovernorConfig,
    in_flight: AtomicUsize,
    admitted: AtomicU64,
    shed: AtomicU64,
}

impl Governor {
    /// A governor with the given configuration.
    pub fn new(config: GovernorConfig) -> Governor {
        Governor {
            config,
            in_flight: AtomicUsize::new(0),
            admitted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
        }
    }

    /// Try to admit one query.  `None` means the in-flight cap is reached
    /// and the request must be shed; `Some` holds a slot until dropped.
    pub fn admit(&self) -> Option<AdmissionPermit<'_>> {
        let cap = self.config.max_in_flight;
        let won = self
            .in_flight
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                (n < cap).then_some(n + 1)
            });
        match won {
            Ok(_) => {
                self.admitted.fetch_add(1, Ordering::Relaxed);
                Some(AdmissionPermit { governor: self })
            }
            Err(_) => {
                self.shed.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// The deadline stamped on every admitted query.
    pub fn deadline(&self) -> Duration {
        self.config.deadline
    }

    /// Current counters.
    pub fn stats(&self) -> GovernorStats {
        GovernorStats {
            in_flight: self.in_flight.load(Ordering::SeqCst),
            admitted: self.admitted.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
        }
    }
}

/// RAII hold on one in-flight slot; dropping it releases the slot even if
/// the query errors or the handler unwinds.
#[derive(Debug)]
pub struct AdmissionPermit<'a> {
    governor: &'a Governor,
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        self.governor.in_flight.fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_up_to_the_cap_then_sheds() {
        let governor = Governor::new(GovernorConfig {
            max_in_flight: 2,
            deadline: Duration::from_secs(30),
        });
        let a = governor.admit().expect("slot 1");
        let _b = governor.admit().expect("slot 2");
        assert!(governor.admit().is_none(), "third query must be shed");
        let stats = governor.stats();
        assert_eq!(stats.in_flight, 2);
        assert_eq!(stats.admitted, 2);
        assert_eq!(stats.shed, 1);
        // Dropping a permit frees its slot for the next query.
        drop(a);
        assert!(governor.admit().is_some());
    }

    #[test]
    fn permits_release_on_unwind() {
        let governor = Governor::new(GovernorConfig {
            max_in_flight: 1,
            deadline: Duration::from_secs(30),
        });
        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _permit = governor.admit().expect("slot");
            panic!("handler blew up mid-query");
        }));
        assert!(attempt.is_err());
        assert_eq!(governor.stats().in_flight, 0, "unwind must free the slot");
        assert!(governor.admit().is_some());
    }

    #[test]
    fn concurrent_admission_never_overshoots_the_cap() {
        let governor = Governor::new(GovernorConfig {
            max_in_flight: 4,
            deadline: Duration::from_secs(30),
        });
        let peak = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..16 {
                scope.spawn(|| {
                    for _ in 0..50 {
                        if let Some(_permit) = governor.admit() {
                            let now = governor.stats().in_flight;
                            peak.fetch_max(now, Ordering::SeqCst);
                            std::thread::yield_now();
                        }
                    }
                });
            }
        });
        assert!(peak.load(Ordering::SeqCst) <= 4);
        assert_eq!(governor.stats().in_flight, 0);
    }
}
