//! A dependency-free HTTP/1.1 server over `std::net`.
//!
//! The original SkyServer front end is IIS + JavaScript ASP (§5); this is
//! the smallest substrate that lets the reproduction serve the same page
//! families and SQL endpoints to a browser or `curl`.  One thread per
//! connection, GET only, no keep-alive -- entirely adequate for the paper's
//! sustained load of ~500 users / 4,000 pages per day.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    pub method: String,
    /// Path without the query string, e.g. `/en/tools/search/x_sql.asp`.
    pub path: String,
    /// Decoded query parameters.
    pub query: HashMap<String, String>,
}

impl Request {
    /// A query parameter by name.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.query.get(name).map(String::as_str)
    }
}

/// An HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    pub status: u16,
    pub content_type: String,
    pub body: Vec<u8>,
}

impl Response {
    /// 200 OK with a text body.
    pub fn ok(content_type: &str, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status: 200,
            content_type: content_type.to_string(),
            body: body.into(),
        }
    }

    /// HTML convenience constructor.
    pub fn html(body: impl Into<String>) -> Response {
        Response::ok("text/html; charset=utf-8", body.into().into_bytes())
    }

    /// 404 Not Found.
    pub fn not_found(path: &str) -> Response {
        Response {
            status: 404,
            content_type: "text/plain; charset=utf-8".into(),
            body: format!("not found: {path}").into_bytes(),
        }
    }

    /// 400 Bad Request.
    pub fn bad_request(message: &str) -> Response {
        Response {
            status: 400,
            content_type: "text/plain; charset=utf-8".into(),
            body: message.as_bytes().to_vec(),
        }
    }

    fn status_text(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            500 => "Internal Server Error",
            _ => "OK",
        }
    }

    /// Serialise to the wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.status,
            self.status_text(),
            self.content_type,
            self.body.len()
        )
        .into_bytes();
        out.extend_from_slice(&self.body);
        out
    }
}

/// Percent-decode a URL component (enough for the SQL the search page sends).
pub fn url_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' if i + 2 < bytes.len() => {
                if let Ok(v) = u8::from_str_radix(&s[i + 1..i + 3], 16) {
                    out.push(v);
                    i += 3;
                } else {
                    out.push(b'%');
                    i += 1;
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Parse the request line + query string of an HTTP request.
pub fn parse_request(raw: &str) -> Option<Request> {
    let first_line = raw.lines().next()?;
    let mut parts = first_line.split_whitespace();
    let method = parts.next()?.to_string();
    let target = parts.next()?;
    let (path, query_string) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let mut query = HashMap::new();
    for pair in query_string.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        query.insert(url_decode(k).to_ascii_lowercase(), url_decode(v));
    }
    Some(Request {
        method,
        path: url_decode(path),
        query,
    })
}

/// A running HTTP server.
pub struct HttpServer {
    addr: std::net::SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl HttpServer {
    /// Start serving on `127.0.0.1:port` (port 0 picks a free port) with the
    /// given request handler.
    pub fn start<F>(port: u16, handler: F) -> std::io::Result<HttpServer>
    where
        F: Fn(&Request) -> Response + Send + Sync + 'static,
    {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let shutdown_flag = Arc::clone(&shutdown);
        let handler = Arc::new(handler);
        let handle = std::thread::spawn(move || {
            while !shutdown_flag.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let handler = Arc::clone(&handler);
                        std::thread::spawn(move || {
                            let _ = handle_connection(stream, handler.as_ref());
                        });
                    }
                    Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(std::time::Duration::from_millis(10));
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(HttpServer {
            addr,
            shutdown,
            handle: Some(handle),
        })
    }

    /// The address the server is listening on.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stop accepting connections and join the accept thread.
    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn handle_connection<F>(mut stream: TcpStream, handler: &F) -> std::io::Result<()>
where
    F: Fn(&Request) -> Response,
{
    stream.set_read_timeout(Some(std::time::Duration::from_secs(5)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request_text = String::new();
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line)?;
        if n == 0 || line == "\r\n" || line == "\n" {
            break;
        }
        request_text.push_str(&line);
    }
    let response = match parse_request(&request_text) {
        Some(request) if request.method == "GET" => handler(&request),
        Some(_) => Response::bad_request("only GET is supported"),
        None => Response::bad_request("malformed request"),
    };
    stream.write_all(&response.to_bytes())?;
    stream.flush()
}

/// Minimal blocking HTTP GET used by the integration tests and examples.
pub fn http_get(
    addr: std::net::SocketAddr,
    path_and_query: &str,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    write!(
        stream,
        "GET {path_and_query} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
    )?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let status = response
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse::<u16>().ok())
        .unwrap_or(0);
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_parsing_with_query() {
        let r = parse_request(
            "GET /en/tools/search/x_sql.asp?cmd=select+count(*)+from+PhotoObj&format=csv HTTP/1.1\r\nHost: x\r\n",
        )
        .unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/en/tools/search/x_sql.asp");
        assert_eq!(r.param("cmd"), Some("select count(*) from PhotoObj"));
        assert_eq!(r.param("format"), Some("csv"));
        assert!(parse_request("").is_none());
    }

    #[test]
    fn url_decoding() {
        assert_eq!(url_decode("a%20b+c"), "a b c");
        assert_eq!(url_decode("100%25"), "100%");
        assert_eq!(url_decode("plain"), "plain");
        assert_eq!(
            url_decode("select+*+from+t%20where%20a%3D1"),
            "select * from t where a=1"
        );
    }

    #[test]
    fn response_serialisation() {
        let r = Response::ok("text/plain", "hello");
        let bytes = r.to_bytes();
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 5"));
        assert!(text.ends_with("hello"));
        assert_eq!(Response::not_found("/x").status, 404);
    }

    #[test]
    fn server_round_trip() {
        let server = HttpServer::start(0, |req| {
            if req.path == "/hello" {
                Response::ok("text/plain", "hi there")
            } else {
                Response::not_found(&req.path)
            }
        })
        .unwrap();
        let (status, body) = http_get(server.addr(), "/hello").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "hi there");
        let (status, _) = http_get(server.addr(), "/missing").unwrap();
        assert_eq!(status, 404);
        server.stop();
    }
}
