//! A dependency-free HTTP/1.1 server over `std::net`.
//!
//! The original SkyServer front end is IIS + JavaScript ASP (§5); this is
//! the smallest substrate that lets the reproduction serve the same page
//! families and SQL endpoints to a browser or `curl`.  The serving model
//! mirrors what §7 demanded of the real site (a 20x TV-driven traffic
//! spike, months of crawler load): a **bounded worker pool** pulls
//! connections off a fixed-depth accept queue (overload answers `503`
//! instead of spawning unbounded threads), connections are reused via
//! **HTTP/1.1 keep-alive** (the `Connection:` header is honored), and the
//! request head is capped at [`ServerConfig::max_header_bytes`] so a
//! hostile client cannot grow memory without limit.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// HTTP method (`GET`, ...).
    pub method: String,
    /// Path without the query string, e.g. `/en/tools/search/x_sql.asp`.
    pub path: String,
    /// Decoded query parameters.
    pub query: HashMap<String, String>,
    /// Protocol version from the request line (`HTTP/1.1`, `HTTP/1.0`).
    pub version: String,
    /// Request headers, keys lowercased.
    pub headers: HashMap<String, String>,
    /// Request body (empty for GET; read up to
    /// [`ServerConfig::max_body_bytes`] for POST).
    pub body: Vec<u8>,
}

impl Request {
    /// A query parameter by name.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.query.get(name).map(String::as_str)
    }

    /// Attach a body (builder style; used by tests that construct requests
    /// through [`parse_request`], which parses the head only).
    pub fn with_body(mut self, body: Vec<u8>) -> Request {
        self.body = body;
        self
    }

    /// Whether the body is an HTML-form submission
    /// (`application/x-www-form-urlencoded`).
    pub fn is_form(&self) -> bool {
        self.header("content-type")
            .is_some_and(|ct| ct.starts_with("application/x-www-form-urlencoded"))
    }

    /// Decoded `application/x-www-form-urlencoded` body parameters (empty
    /// for any other content type).  Keys are lowercased like query keys.
    pub fn form_params(&self) -> HashMap<String, String> {
        if !self.is_form() {
            return HashMap::new();
        }
        parse_query_pairs(&String::from_utf8_lossy(&self.body))
    }

    /// A header by (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .get(&name.to_ascii_lowercase())
            .map(String::as_str)
    }

    /// Whether the client wants the connection kept open: HTTP/1.1 defaults
    /// to keep-alive unless `Connection: close`; HTTP/1.0 defaults to close
    /// unless `Connection: keep-alive`.
    pub fn wants_keep_alive(&self) -> bool {
        match self.header("connection").map(str::to_ascii_lowercase) {
            Some(v) if v.contains("close") => false,
            Some(v) if v.contains("keep-alive") => true,
            _ => self.version != "HTTP/1.0",
        }
    }
}

/// An HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// The `Content-Type` header value.
    pub content_type: String,
    /// The response body.
    pub body: Vec<u8>,
    /// Extra response headers (`(name, value)` pairs) beyond the
    /// Content-Type / Content-Length / Connection set the server always
    /// writes.  The API tier uses these for pagination metadata on
    /// non-JSON bodies (`X-Next-Cursor`, `X-Total-Rows`).
    pub headers: Vec<(String, String)>,
}

impl Response {
    /// A response with an arbitrary status code and a plain-text body.
    pub fn with_status(status: u16, message: &str) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8".into(),
            body: message.as_bytes().to_vec(),
            headers: Vec::new(),
        }
    }

    /// 200 OK with a text body.
    pub fn ok(content_type: &str, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status: 200,
            content_type: content_type.to_string(),
            body: body.into(),
            headers: Vec::new(),
        }
    }

    /// HTML convenience constructor.
    pub fn html(body: impl Into<String>) -> Response {
        Response::ok("text/html; charset=utf-8", body.into().into_bytes())
    }

    /// 404 Not Found.
    pub fn not_found(path: &str) -> Response {
        Response::with_status(404, &format!("not found: {path}"))
    }

    /// 400 Bad Request.
    pub fn bad_request(message: &str) -> Response {
        Response::with_status(400, message)
    }

    /// 503 Service Unavailable (the accept queue is full).
    pub fn unavailable(message: &str) -> Response {
        Response::with_status(503, message)
    }

    /// 429 Too Many Requests (a per-submitter job quota was hit).
    pub fn too_many_requests(message: &str) -> Response {
        Response::with_status(429, message)
    }

    /// Attach an extra response header (builder style).
    pub fn with_header(mut self, name: &str, value: &str) -> Response {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// The first extra header with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    fn status_text(&self) -> &'static str {
        match self.status {
            200 => "OK",
            201 => "Created",
            400 => "Bad Request",
            403 => "Forbidden",
            404 => "Not Found",
            405 => "Method Not Allowed",
            406 => "Not Acceptable",
            408 => "Request Timeout",
            409 => "Conflict",
            413 => "Payload Too Large",
            422 => "Unprocessable Entity",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "OK",
        }
    }

    /// Serialise to the wire format.  `keep_alive` selects the
    /// `Connection:` header; callers that close unconditionally pass
    /// `false` (the pre-keep-alive behaviour).
    pub fn to_bytes(&self, keep_alive: bool) -> Vec<u8> {
        let connection = if keep_alive { "keep-alive" } else { "close" };
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            self.status_text(),
            self.content_type,
            self.body.len(),
            connection,
        );
        for (name, value) in &self.headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str("\r\n");
        let mut out = head.into_bytes();
        out.extend_from_slice(&self.body);
        out
    }
}

/// Percent-decode a URL component (enough for the SQL the search page
/// sends).  Works on the raw bytes so a `%` followed by multibyte UTF-8
/// cannot cause an out-of-boundary string slice.
pub fn url_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while let Some(&b) = bytes.get(i) {
        match (b, bytes.get(i + 1), bytes.get(i + 2)) {
            (b'%', Some(&hi), Some(&lo)) if hi.is_ascii_hexdigit() && lo.is_ascii_hexdigit() => {
                out.push((hex_val(hi) << 4) | hex_val(lo));
                i += 3;
            }
            (b'+', _, _) => {
                out.push(b' ');
                i += 1;
            }
            _ => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Value of one hex digit.  Total: callers guard with `is_ascii_hexdigit`,
/// and any other byte maps to 0 rather than panicking on a request path.
fn hex_val(b: u8) -> u8 {
    match b {
        b'0'..=b'9' => b - b'0',
        b'a'..=b'f' => b - b'a' + 10,
        b'A'..=b'F' => b - b'A' + 10,
        _ => 0,
    }
}

/// Decode `k=v&k2=v2` pairs (query strings and form bodies share the
/// encoding).  Keys are lowercased.
fn parse_query_pairs(raw: &str) -> HashMap<String, String> {
    let mut pairs = HashMap::new();
    for pair in raw.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        pairs.insert(url_decode(k).to_ascii_lowercase(), url_decode(v));
    }
    pairs
}

/// Parse the request line, query string and headers of an HTTP request
/// head.  The body (if any) is read separately by the server and attached
/// via [`Request::with_body`].
pub fn parse_request(raw: &str) -> Option<Request> {
    let mut lines = raw.lines();
    let first_line = lines.next()?;
    let mut parts = first_line.split_whitespace();
    let method = parts.next()?.to_string();
    let target = parts.next()?;
    let version = parts.next().unwrap_or("HTTP/1.1").to_string();
    let (path, query_string) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let query = parse_query_pairs(query_string);
    let mut headers = HashMap::new();
    for line in lines {
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
        }
    }
    Some(Request {
        method,
        path: url_decode(path),
        query,
        version,
        headers,
        body: Vec::new(),
    })
}

/// Tuning knobs of the serving tier.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Number of worker threads handling connections.
    pub workers: usize,
    /// Depth of the accept queue; connections beyond it get a `503`.
    pub queue_depth: usize,
    /// Maximum bytes of request line + headers before the server answers
    /// `400` and closes (defends against unbounded header growth).
    pub max_header_bytes: usize,
    /// Maximum bytes of request body (POST) before the server answers
    /// `413` and closes.
    pub max_body_bytes: usize,
    /// Maximum requests served over one keep-alive connection.
    pub max_keep_alive_requests: usize,
    /// Socket read timeout (also bounds how long an idle keep-alive
    /// connection pins a worker between requests).
    pub read_timeout: Duration,
    /// Wall-clock budget for one connection.  With a bounded pool a
    /// long-lived keep-alive socket pins a worker; past this age the next
    /// response says `Connection: close` so the worker rotates back to the
    /// queue.
    pub max_connection_age: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ServerConfig {
            // Enough workers to overlap I/O even on small machines: with a
            // bounded pool, every worker a slow client can pin matters.
            workers: (2 * cores).clamp(8, 32),
            queue_depth: 64,
            max_header_bytes: 16 * 1024,
            max_body_bytes: 256 * 1024,
            max_keep_alive_requests: 100,
            read_timeout: Duration::from_secs(5),
            max_connection_age: Duration::from_secs(30),
        }
    }
}

/// A running HTTP server: an accept thread plus a bounded worker pool.
pub struct HttpServer {
    addr: std::net::SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_handle: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl HttpServer {
    /// Start serving on `127.0.0.1:port` (port 0 picks a free port) with the
    /// given request handler and default configuration.
    pub fn start<F>(port: u16, handler: F) -> std::io::Result<HttpServer>
    where
        F: Fn(&Request) -> Response + Send + Sync + 'static,
    {
        HttpServer::start_with(port, ServerConfig::default(), handler)
    }

    /// Start serving with an explicit [`ServerConfig`].
    pub fn start_with<F>(port: u16, config: ServerConfig, handler: F) -> std::io::Result<HttpServer>
    where
        F: Fn(&Request) -> Response + Send + Sync + 'static,
    {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let handler = Arc::new(handler);
        let config = Arc::new(config);
        let (tx, rx): (SyncSender<TcpStream>, Receiver<TcpStream>) =
            std::sync::mpsc::sync_channel(config.queue_depth);
        let rx = Arc::new(Mutex::new(rx));

        let mut workers = Vec::with_capacity(config.workers);
        for _ in 0..config.workers.max(1) {
            let rx = Arc::clone(&rx);
            let handler = Arc::clone(&handler);
            let config = Arc::clone(&config);
            let shutdown = Arc::clone(&shutdown);
            workers.push(std::thread::spawn(move || loop {
                // Holding the lock only while waiting: once a connection is
                // received the lock drops and the next worker can wait.
                let stream = match rx
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .recv()
                {
                    Ok(stream) => stream,
                    // All senders are gone: the accept loop exited.
                    Err(_) => break,
                };
                // A panicking handler must cost one connection, not a pool
                // worker — with a bounded pool, `workers` leaked panics
                // would otherwise brick the whole server.
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let _ = handle_connection(stream, handler.as_ref(), &config, &shutdown);
                }));
            }));
        }

        let shutdown_flag = Arc::clone(&shutdown);
        let accept_handle = std::thread::spawn(move || {
            // `tx` is moved in here; dropping it on exit stops the workers.
            while !shutdown_flag.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => match tx.try_send(stream) {
                        Ok(()) => {}
                        Err(TrySendError::Full(stream)) => {
                            // Bounded overload behaviour: shed the
                            // connection instead of queueing without
                            // limit, hinting when to come back.
                            let _ = refuse_connection(
                                stream,
                                Response::unavailable("server overloaded, retry shortly")
                                    .with_header("Retry-After", crate::api::RETRY_AFTER_SECONDS),
                            );
                        }
                        Err(TrySendError::Disconnected(_)) => break,
                    },
                    Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(HttpServer {
            addr,
            shutdown,
            accept_handle: Some(accept_handle),
            workers,
        })
    }

    /// The address the server is listening on.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stop accepting connections and join the accept thread and workers.
    pub fn stop(mut self) {
        self.shutdown_and_join();
    }

    fn shutdown_and_join(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown_and_join();
    }
}

/// Serve one connection, possibly across many keep-alive requests.
fn handle_connection<F>(
    mut stream: TcpStream,
    handler: &F,
    config: &ServerConfig,
    shutdown: &AtomicBool,
) -> std::io::Result<()>
where
    F: Fn(&Request) -> Response,
{
    stream.set_read_timeout(Some(config.read_timeout))?;
    // Small request/response exchanges over keep-alive connections stall on
    // Nagle + delayed-ACK (~40 ms per round trip) without this.
    stream.set_nodelay(true)?;
    let opened = std::time::Instant::now();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut served = 0usize;
    loop {
        let head = match read_request_head(&mut reader, config.max_header_bytes)? {
            HeadRead::Complete(head) => head,
            HeadRead::Closed => return Ok(()),
            HeadRead::TooLarge => {
                // The client may still be streaming headers; a plain close
                // here would RST the socket and destroy the 400 before the
                // client reads it.
                return refuse_connection(
                    stream,
                    Response::bad_request("request headers too large"),
                );
            }
        };
        let (response, client_keep_alive) = match parse_request(&head) {
            Some(mut request) => {
                // Chunked uploads are not supported; a declared body is
                // read in full (keep-alive depends on consuming it) up to
                // the configured cap.  Every parsed method reaches the
                // handler — method routing (405s, the API's structured
                // envelope) is the application's concern, not transport's.
                if request
                    .header("transfer-encoding")
                    .is_some_and(|te| !te.eq_ignore_ascii_case("identity"))
                {
                    return refuse_connection(
                        stream,
                        Response::bad_request("chunked request bodies are not supported"),
                    );
                }
                let content_length = match request.header("content-length") {
                    None => 0,
                    // A declared-but-unparseable length must close the
                    // connection: treating it as 0 would leave the body
                    // bytes in the stream to corrupt the next keep-alive
                    // request.
                    Some(v) => match v.trim().parse::<usize>() {
                        Ok(n) => n,
                        Err(_) => {
                            return refuse_connection(
                                stream,
                                Response::bad_request("malformed Content-Length"),
                            )
                        }
                    },
                };
                if content_length > config.max_body_bytes {
                    return refuse_connection(
                        stream,
                        Response::with_status(413, "request body too large"),
                    );
                }
                if content_length > 0 {
                    let mut body = vec![0u8; content_length];
                    reader.read_exact(&mut body)?;
                    request.body = body;
                }
                let keep = request.wants_keep_alive();
                // A panicking handler costs this one request, not the
                // connection's worker: the client gets a structured 500
                // envelope and the connection closes (the handler may
                // have died before consuming request state, so keep-alive
                // cannot be trusted to stay in sync).
                let outcome =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| handler(&request)));
                match outcome {
                    Ok(response) => (response, keep),
                    Err(_) => (internal_error_response(), false),
                }
            }
            None => (Response::bad_request("malformed request"), false),
        };
        served += 1;
        let keep_alive = client_keep_alive
            && served < config.max_keep_alive_requests
            && opened.elapsed() < config.max_connection_age
            && !shutdown.load(Ordering::Relaxed);
        // Chaos hook: an injected fault here models a socket-level write
        // failure.  The error drops the connection (there is no channel
        // left to answer on) but must never take the worker with it.
        skyserver::storage::failpoints::check("http.response_write")
            .map_err(std::io::Error::other)?;
        stream.write_all(&response.to_bytes(keep_alive))?;
        stream.flush()?;
        if !keep_alive {
            return Ok(());
        }
    }
}

/// The structured `500` a panicking handler turns into: same envelope
/// shape as the API's `internal_error`, so machine clients parse it even
/// on the legacy routes.
fn internal_error_response() -> Response {
    let body = serde_json::json!({
        "error": {
            "code": "internal_error",
            "message": "the request handler failed unexpectedly; the connection will close",
            "detail": serde_json::Value::Null,
        }
    });
    let mut response = Response::ok(
        "application/json; charset=utf-8",
        body.to_string().into_bytes(),
    );
    response.status = 500;
    response
}

/// Send a refusal response on a connection whose request was never (fully)
/// read, then close gracefully.  Closing with unread bytes in the socket
/// would send RST, which flushes the client's receive buffer and destroys
/// the response — so half-close the write side and briefly drain instead.
fn refuse_connection(mut stream: TcpStream, response: Response) -> std::io::Result<()> {
    stream.write_all(&response.to_bytes(false))?;
    stream.flush()?;
    stream.shutdown(std::net::Shutdown::Write)?;
    stream.set_read_timeout(Some(Duration::from_millis(50)))?;
    let mut sink = [0u8; 4096];
    // Bounded drain: up to ~256 KiB or the 50 ms timeout, whichever first.
    for _ in 0..64 {
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
    Ok(())
}

enum HeadRead {
    /// Request line + headers, terminated by the blank line.
    Complete(String),
    /// The client closed the connection before sending a request.
    Closed,
    /// The head exceeded the configured byte cap.
    TooLarge,
}

/// Read one request head (request line + headers) with a total byte cap.
fn read_request_head<R: BufRead>(reader: &mut R, cap: usize) -> std::io::Result<HeadRead> {
    let mut head = String::new();
    // `take` enforces the cap even inside a single unterminated line, so a
    // client streaming one endless header cannot grow the buffer.
    let mut limited = reader.take(cap as u64);
    loop {
        let mut line = String::new();
        let n = limited.read_line(&mut line)?;
        if n == 0 {
            return Ok(if head.is_empty() {
                HeadRead::Closed
            } else {
                // EOF (or the byte cap) hit mid-request.
                HeadRead::TooLarge
            });
        }
        if !line.ends_with('\n') {
            // read_line stopped because the `take` limit was reached.
            return Ok(HeadRead::TooLarge);
        }
        if line == "\r\n" || line == "\n" {
            return Ok(HeadRead::Complete(head));
        }
        head.push_str(&line);
    }
}

/// Minimal blocking HTTP GET used by the integration tests and examples
/// (one request per connection: sends `Connection: close`).
pub fn http_get(
    addr: std::net::SocketAddr,
    path_and_query: &str,
) -> std::io::Result<(u16, String)> {
    http_request(addr, "GET", path_and_query, None, &[])
}

/// Minimal blocking HTTP request with an optional body (one request per
/// connection: sends `Connection: close`).  `content_type` must be given
/// whenever `body` is non-empty.
pub fn http_request(
    addr: std::net::SocketAddr,
    method: &str,
    path_and_query: &str,
    content_type: Option<&str>,
    body: &[u8],
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    let content_type_header = content_type
        .map(|ct| format!("Content-Type: {ct}\r\n"))
        .unwrap_or_default();
    write!(
        stream,
        "{method} {path_and_query} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\
         {content_type_header}Content-Length: {}\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body)?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let status = response
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse::<u16>().ok())
        .unwrap_or(0);
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

/// A keep-alive HTTP client: issues many GETs over one TCP connection,
/// transparently reconnecting when the server answers `Connection: close`
/// (e.g. after [`ServerConfig::max_keep_alive_requests`]).  Used by the
/// concurrency tests and the TCP benchmark.
pub struct HttpClient {
    addr: std::net::SocketAddr,
    stream: TcpStream,
    reader: BufReader<TcpStream>,
    /// `Retry-After` (in seconds) from the most recent response, if the
    /// server sent one — the backoff loop honors it.
    retry_after: Option<u64>,
}

impl HttpClient {
    /// Open a persistent connection to the server.
    pub fn connect(addr: std::net::SocketAddr) -> std::io::Result<HttpClient> {
        let (stream, reader) = HttpClient::open(addr)?;
        Ok(HttpClient {
            addr,
            stream,
            reader,
            retry_after: None,
        })
    }

    fn open(addr: std::net::SocketAddr) -> std::io::Result<(TcpStream, BufReader<TcpStream>)> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok((stream, reader))
    }

    /// Issue one GET and read the full response (status, body).  The
    /// connection stays open for the next call unless the server asked to
    /// close it, in which case the next call reconnects.
    pub fn get(&mut self, path_and_query: &str) -> std::io::Result<(u16, String)> {
        self.request("GET", path_and_query, None, &[])
    }

    /// Issue one request with an optional body over the persistent
    /// connection (status, body).  `content_type` must be given whenever
    /// `body` is non-empty.
    pub fn request(
        &mut self,
        method: &str,
        path_and_query: &str,
        content_type: Option<&str>,
        body: &[u8],
    ) -> std::io::Result<(u16, String)> {
        let content_type_header = content_type
            .map(|ct| format!("Content-Type: {ct}\r\n"))
            .unwrap_or_default();
        write!(
            self.stream,
            "{method} {path_and_query} HTTP/1.1\r\nHost: localhost\r\n\
             {content_type_header}Content-Length: {}\r\n\r\n",
            body.len()
        )?;
        self.stream.write_all(body)?;
        self.stream.flush()?;
        let mut status = 0u16;
        let mut content_length = 0usize;
        let mut server_closes = false;
        let mut retry_after: Option<u64> = None;
        let mut first = true;
        loop {
            let mut line = String::new();
            let n = self.reader.read_line(&mut line)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection mid-response",
                ));
            }
            let trimmed = line.trim_end();
            if first {
                status = trimmed
                    .split_whitespace()
                    .nth(1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(0);
                first = false;
                continue;
            }
            if trimmed.is_empty() {
                break;
            }
            if let Some((name, value)) = trimmed.split_once(':') {
                let name = name.trim();
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().unwrap_or(0);
                } else if name.eq_ignore_ascii_case("connection") {
                    server_closes = value.trim().eq_ignore_ascii_case("close");
                } else if name.eq_ignore_ascii_case("retry-after") {
                    retry_after = value.trim().parse().ok();
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        self.retry_after = retry_after;
        if server_closes {
            let (stream, reader) = HttpClient::open(self.addr)?;
            self.stream = stream;
            self.reader = reader;
        }
        Ok((status, String::from_utf8_lossy(&body).into_owned()))
    }

    /// The `Retry-After` hint (seconds) from the most recent response, if
    /// the server sent one.
    pub fn retry_after(&self) -> Option<u64> {
        self.retry_after
    }

    /// Issue a GET, retrying on shedding responses (`503`/`429`) with
    /// capped exponential backoff that honors the server's `Retry-After`
    /// hint.  Returns the last response after at most `max_attempts`
    /// tries — still a `503` if the server never let the request through.
    /// `max_delay` caps every sleep (the overload benchmark compresses
    /// the hinted seconds to keep wall-clock bounded).
    pub fn get_with_backoff(
        &mut self,
        path_and_query: &str,
        max_attempts: u32,
        max_delay: Duration,
    ) -> std::io::Result<(u16, String)> {
        let mut delay = Duration::from_millis(10).min(max_delay);
        let mut attempt = 0u32;
        loop {
            let (status, body) = self.get(path_and_query)?;
            attempt += 1;
            if (status != 503 && status != 429) || attempt >= max_attempts.max(1) {
                return Ok((status, body));
            }
            let hinted = self.retry_after.map(Duration::from_secs);
            std::thread::sleep(hinted.unwrap_or(delay).min(max_delay));
            delay = (delay * 2).min(max_delay);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_parsing_with_query() {
        let r = parse_request(
            "GET /en/tools/search/x_sql.asp?cmd=select+count(*)+from+PhotoObj&format=csv HTTP/1.1\r\nHost: x\r\n",
        )
        .unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/en/tools/search/x_sql.asp");
        assert_eq!(r.param("cmd"), Some("select count(*) from PhotoObj"));
        assert_eq!(r.param("format"), Some("csv"));
        assert_eq!(r.header("host"), Some("x"));
        assert!(parse_request("").is_none());
    }

    #[test]
    fn url_decoding() {
        assert_eq!(url_decode("a%20b+c"), "a b c");
        assert_eq!(url_decode("100%25"), "100%");
        assert_eq!(url_decode("plain"), "plain");
        assert_eq!(
            url_decode("select+*+from+t%20where%20a%3D1"),
            "select * from t where a=1"
        );
    }

    #[test]
    fn url_decoding_survives_multibyte_utf8_after_percent() {
        // A multibyte char right after '%' must not slice across a char
        // boundary (this used to panic).
        assert_eq!(url_decode("%é"), "%é");
        assert_eq!(url_decode("%4é"), "%4é");
        assert_eq!(url_decode("é%20è"), "é è");
        // Percent-encoded UTF-8 still decodes.
        assert_eq!(url_decode("%C3%A9"), "é");
        // Trailing and malformed escapes pass through unchanged.
        assert_eq!(url_decode("%"), "%");
        assert_eq!(url_decode("%2"), "%2");
        assert_eq!(url_decode("%zz"), "%zz");
    }

    #[test]
    fn keep_alive_negotiation() {
        let http11 = parse_request("GET / HTTP/1.1\r\n\r\n").unwrap();
        assert!(http11.wants_keep_alive());
        let close = parse_request("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!close.wants_keep_alive());
        let http10 = parse_request("GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(!http10.wants_keep_alive());
        let http10_ka = parse_request("GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n").unwrap();
        assert!(http10_ka.wants_keep_alive());
    }

    #[test]
    fn response_serialisation() {
        let r = Response::ok("text/plain", "hello");
        let text = String::from_utf8(r.to_bytes(false)).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 5"));
        assert!(text.contains("Connection: close"));
        assert!(text.ends_with("hello"));
        let text = String::from_utf8(r.to_bytes(true)).unwrap();
        assert!(text.contains("Connection: keep-alive"));
        assert_eq!(Response::not_found("/x").status, 404);
        assert_eq!(Response::unavailable("busy").status, 503);
    }

    #[test]
    fn server_round_trip() {
        let server = HttpServer::start(0, |req| {
            if req.path == "/hello" {
                Response::ok("text/plain", "hi there")
            } else {
                Response::not_found(&req.path)
            }
        })
        .unwrap();
        let (status, body) = http_get(server.addr(), "/hello").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "hi there");
        let (status, _) = http_get(server.addr(), "/missing").unwrap();
        assert_eq!(status, 404);
        server.stop();
    }

    #[test]
    fn keep_alive_serves_many_requests_on_one_connection() {
        let server =
            HttpServer::start(0, |req| Response::ok("text/plain", req.path.clone())).unwrap();
        let mut client = HttpClient::connect(server.addr()).unwrap();
        for i in 0..10 {
            let (status, body) = client.get(&format!("/echo/{i}")).unwrap();
            assert_eq!(status, 200);
            assert_eq!(body, format!("/echo/{i}"));
        }
        drop(client);
        server.stop();
    }

    #[test]
    fn client_reconnects_when_the_server_closes_after_max_requests() {
        let config = ServerConfig {
            max_keep_alive_requests: 3,
            ..ServerConfig::default()
        };
        let server = HttpServer::start_with(0, config, |req| {
            Response::ok("text/plain", req.path.clone())
        })
        .unwrap();
        let mut client = HttpClient::connect(server.addr()).unwrap();
        // 8 requests across a server that closes every 3rd connection: the
        // client must ride through the `Connection: close` responses.
        for i in 0..8 {
            let (status, body) = client.get(&format!("/r{i}")).unwrap();
            assert_eq!(status, 200, "request {i}");
            assert_eq!(body, format!("/r{i}"));
        }
        drop(client);
        server.stop();
    }

    #[test]
    fn oversized_request_head_answers_400() {
        let config = ServerConfig {
            max_header_bytes: 1024,
            ..ServerConfig::default()
        };
        let server =
            HttpServer::start_with(0, config, |_| Response::ok("text/plain", "ok")).unwrap();
        // Headers beyond the cap (sent as proper header lines).
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        write!(stream, "GET / HTTP/1.1\r\n").unwrap();
        for i in 0..64 {
            write!(stream, "X-Filler-{i}: {}\r\n", "y".repeat(64)).unwrap();
        }
        write!(stream, "\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(
            response.starts_with("HTTP/1.1 400"),
            "expected 400, got: {response}"
        );

        // One endless header line without a newline is also bounded.
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        write!(stream, "GET / HTTP/1.1\r\nX-Huge: {}", "z".repeat(4096)).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(
            response.starts_with("HTTP/1.1 400"),
            "expected 400, got: {response}"
        );

        // A normal request still works.
        let (status, _) = http_get(server.addr(), "/").unwrap();
        assert_eq!(status, 200);
        server.stop();
    }

    #[test]
    fn post_bodies_reach_the_handler_and_form_params_decode() {
        let server = HttpServer::start(0, |req| {
            if req.method == "POST" {
                let form = req.form_params();
                let echo = form
                    .get("sql")
                    .cloned()
                    .unwrap_or_else(|| String::from_utf8_lossy(&req.body).into_owned());
                Response::ok("text/plain", echo)
            } else {
                Response::ok("text/plain", "not a post")
            }
        })
        .unwrap();
        // A urlencoded form body.
        let (status, body) = http_request(
            server.addr(),
            "POST",
            "/submit",
            Some("application/x-www-form-urlencoded"),
            b"sql=select+1&x=2",
        )
        .unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "select 1");
        // A raw body passes through untouched.
        let mut client = HttpClient::connect(server.addr()).unwrap();
        let (status, body) = client
            .request(
                "POST",
                "/submit",
                Some("text/plain"),
                b"select top 3 x from t",
            )
            .unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "select top 3 x from t");
        // The connection survives for a follow-up request.
        let (status, _) = client.get("/after").unwrap();
        assert_eq!(status, 200);
        drop(client);
        server.stop();
    }

    #[test]
    fn every_method_reaches_the_handler_and_bad_bodies_are_refused() {
        let config = ServerConfig {
            max_body_bytes: 16,
            ..ServerConfig::default()
        };
        let server = HttpServer::start_with(0, config, |req| {
            Response::ok("text/plain", req.method.clone())
        })
        .unwrap();
        // Method routing (including 405s) is the application's concern:
        // the transport forwards whatever parses, so the API tier can
        // answer wrong methods with its structured envelope.
        for method in ["GET", "POST", "DELETE", "PATCH", "PUT"] {
            let (status, body) = http_request(server.addr(), method, "/", None, &[]).unwrap();
            assert_eq!(status, 200, "{method}");
            assert_eq!(body, method);
        }
        // Oversized bodies are a 413 before the handler runs.
        let (status, _) =
            http_request(server.addr(), "POST", "/", Some("text/plain"), &[b'x'; 64]).unwrap();
        assert_eq!(status, 413);
        // A malformed Content-Length closes with a 400 instead of leaving
        // the declared body bytes in the stream to corrupt the next
        // keep-alive request.
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        write!(
            stream,
            "POST / HTTP/1.1\r\nContent-Length: 2abc\r\n\r\nhello"
        )
        .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(
            response.starts_with("HTTP/1.1 400"),
            "expected 400, got: {response}"
        );
        server.stop();
    }

    #[test]
    fn extra_headers_are_serialised() {
        let r = Response::ok("text/plain", "x").with_header("X-Next-Cursor", "abc123");
        assert_eq!(r.header("x-next-cursor"), Some("abc123"));
        let text = String::from_utf8(r.to_bytes(false)).unwrap();
        let (head, body) = text.split_once("\r\n\r\n").unwrap();
        assert!(head.contains("X-Next-Cursor: abc123"), "{head}");
        assert_eq!(body, "x");
    }

    #[test]
    fn worker_pool_handles_parallel_connections() {
        let config = ServerConfig {
            workers: 4,
            ..ServerConfig::default()
        };
        let server = HttpServer::start_with(0, config, |req| {
            Response::ok("text/plain", req.path.clone())
        })
        .unwrap();
        let addr = server.addr();
        let handles: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    let (status, body) = http_get(addr, &format!("/{i}")).unwrap();
                    assert_eq!(status, 200);
                    assert_eq!(body, format!("/{i}"));
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        server.stop();
    }
}
