//! The release-lifecycle suite: publishing a new data release while the
//! site is under mixed interactive + batch load.  The contract under test
//! (ISSUE 10): a publish is atomic — in-flight queries and running batch
//! jobs finish on their pinned snapshot with **zero** failures and **zero**
//! cancellations; `AS OF drN` answers are byte-identical before and after
//! a later publish; `AS OF` and the `?release=` parameter are equivalent;
//! unknown releases are a structured `404 unknown_release`; and a cursor
//! walk started on a pinned release stays on that release.

use skyserver::SkyServerBuilder;
use skyserver_web::jobs::{JobQueueConfig, JobState};
use skyserver_web::{parse_request, Response, SkyServerSite};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A site with fast batch pacing so the publish-under-load scans finish in
/// test time while still overlapping the publish generously.
fn site() -> Arc<SkyServerSite> {
    let sky = SkyServerBuilder::new().tiny().build().unwrap();
    SkyServerSite::new_with(
        sky,
        128,
        JobQueueConfig {
            pace: Duration::from_micros(100),
            ..JobQueueConfig::default()
        },
    )
}

fn get(site: &SkyServerSite, path_and_query: &str) -> Response {
    let raw = format!("GET {path_and_query} HTTP/1.1\r\n");
    site.handle(&parse_request(&raw).unwrap())
}

fn json(r: &Response) -> serde_json::Value {
    serde_json::from_slice(&r.body).unwrap_or_else(|e| {
        panic!(
            "body is not JSON ({e}): {}",
            String::from_utf8_lossy(&r.body)
        )
    })
}

fn error_code(r: &Response) -> String {
    json(r)["error"]["code"]
        .as_str()
        .expect("error.code")
        .to_string()
}

/// The objIDs of the `k` smallest PhotoObj rows (the publish-under-load
/// jobs self-join over this prefix so they finish inside the batch memory
/// budget).
fn smallest_ids(site: &SkyServerSite, k: usize) -> Vec<i64> {
    let v = json(&get(
        site,
        &format!("/api/v1/query?sql=select+top+{k}+objID+from+PhotoObj+order+by+objID&limit=1000"),
    ));
    v["rows"]
        .as_array()
        .unwrap()
        .iter()
        .map(|r| r[0].as_i64().unwrap())
        .collect()
}

/// The acceptance scenario: publish dr2 while interactive queries and
/// batch jobs are in flight.  Zero failed queries, zero cancelled or
/// failed jobs, jobs answer from their pre-publish snapshot, and `AS OF
/// dr1` is byte-identical across the publish.
#[test]
fn publish_under_load_completes_with_zero_failures() {
    let site = site();
    let ids = smallest_ids(&site, 500);
    let k = ids.len() as i64;
    let bound = *ids.last().unwrap();
    let victim = ids[0];
    let pinned_sql = "select+top+40+objID,ra,dec+from+PhotoObj+order+by+objID+as+of+dr1";
    let baseline = get(&site, &format!("/api/v1/query?sql={pinned_sql}&limit=1000"));
    assert_eq!(
        baseline.status,
        200,
        "{}",
        String::from_utf8_lossy(&baseline.body)
    );

    // Two batch jobs big enough to still be running when the publish lands.
    let job_sql = format!(
        "select count(*) from PhotoObj a join PhotoObj b \
         on a.objID < b.objID where b.objID <= {bound}"
    );
    let jobs: Vec<u64> = (0..2)
        .map(|i| {
            site.jobs()
                .submit(&format!("load{i}"), &job_sql)
                .expect("submit")
        })
        .collect();
    let deadline = Instant::now() + Duration::from_secs(30);
    for &id in &jobs {
        loop {
            let s = site.jobs().status(id).unwrap();
            if s.state == JobState::Running && s.rows_processed > 0 {
                break;
            }
            assert!(Instant::now() < deadline, "job {id} never started");
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    // Interactive load: threads hammer head + pinned reads; every response
    // must be a 200 and every pinned body must match the baseline exactly.
    let stop = Arc::new(AtomicBool::new(false));
    let failures = Arc::new(AtomicUsize::new(0));
    let mut workers = Vec::new();
    for worker in 0..4 {
        let site = Arc::clone(&site);
        let stop = Arc::clone(&stop);
        let failures = Arc::clone(&failures);
        let baseline_body = baseline.body.clone();
        workers.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let r = if worker % 2 == 0 {
                    get(&site, "/api/v1/query?sql=select+count(*)+from+PhotoObj")
                } else {
                    let r = get(&site, &format!("/api/v1/query?sql={pinned_sql}&limit=1000"));
                    if r.status == 200 && r.body != baseline_body {
                        failures.fetch_add(1, Ordering::Relaxed);
                    }
                    r
                };
                if r.status != 200 {
                    failures.fetch_add(1, Ordering::Relaxed);
                }
            }
        }));
    }

    // The publish: delete a joined row on the next catalog, publish dr2.
    site.with_admin(|sky| {
        sky.execute(&format!("delete from PhotoObj where objID = {victim}"))
            .unwrap();
        sky.publish_release("dr2").unwrap();
    });

    // Let the load overlap the post-publish world briefly, then stop.
    std::thread::sleep(Duration::from_millis(100));
    stop.store(true, Ordering::Relaxed);
    for w in workers {
        w.join().unwrap();
    }
    assert_eq!(
        failures.load(Ordering::Relaxed),
        0,
        "interactive queries failed or drifted across the publish"
    );

    // Every job completes — on its pinned pre-publish snapshot.
    let deadline = Instant::now() + Duration::from_secs(120);
    for &id in &jobs {
        while !site.jobs().status(id).unwrap().state.is_finished() {
            assert!(Instant::now() < deadline, "job {id} never finished");
            std::thread::sleep(Duration::from_millis(2));
        }
        let status = site.jobs().status(id).unwrap();
        assert_eq!(
            status.state,
            JobState::Done,
            "job {id} must finish, not be cancelled or fail: {:?}",
            status.error
        );
        let result = site.jobs().result(id).unwrap();
        assert_eq!(
            result.scalar().unwrap().as_i64().unwrap(),
            k * (k - 1) / 2,
            "job {id} must count pairs on the pre-publish snapshot"
        );
    }

    // AS OF dr1 is byte-identical across the publish; the head moved on.
    let after = get(&site, &format!("/api/v1/query?sql={pinned_sql}&limit=1000"));
    assert_eq!(after.status, 200);
    assert_eq!(
        after.body, baseline.body,
        "AS OF dr1 drifted across publish"
    );
    let releases = json(&get(&site, "/api/v1/releases"));
    let names: Vec<&str> = releases["releases"]
        .as_array()
        .unwrap()
        .iter()
        .map(|r| r["name"].as_str().unwrap())
        .collect();
    assert_eq!(names, vec!["dr1", "dr2"]);
}

/// `AS OF drN` in the SQL and `?release=drN` on the endpoint are the same
/// pin: identical bodies, and both distinct from a moved head.
#[test]
fn as_of_and_release_parameter_are_equivalent() {
    let site = site();
    let sql = "select+top+25+objID,ra+from+PhotoObj+order+by+objID";
    let as_of = get(
        &site,
        "/api/v1/query?sql=select+top+25+objID,ra+from+PhotoObj+order+by+objID+as+of+dr1&limit=1000",
    );
    let param = get(
        &site,
        &format!("/api/v1/query?sql={sql}&limit=1000&release=dr1"),
    );
    assert_eq!(
        as_of.status,
        200,
        "{}",
        String::from_utf8_lossy(&as_of.body)
    );
    assert_eq!(
        param.status,
        200,
        "{}",
        String::from_utf8_lossy(&param.body)
    );
    assert_eq!(as_of.body, param.body, "AS OF and ?release= disagree");

    // After a head mutation + publish, both stay on dr1 while the head
    // answer changes.
    let first = json(&as_of)["rows"][0][0].as_i64().unwrap();
    site.with_admin(|sky| {
        sky.execute(&format!("delete from PhotoObj where objID = {first}"))
            .unwrap();
        sky.publish_release("dr2").unwrap();
    });
    let as_of_after = get(
        &site,
        "/api/v1/query?sql=select+top+25+objID,ra+from+PhotoObj+order+by+objID+as+of+dr1&limit=1000",
    );
    let param_after = get(
        &site,
        &format!("/api/v1/query?sql={sql}&limit=1000&release=dr1"),
    );
    assert_eq!(as_of_after.body, as_of.body);
    assert_eq!(param_after.body, param.body);
    let head = get(&site, &format!("/api/v1/query?sql={sql}&limit=1000"));
    assert_ne!(head.body, as_of.body, "head must reflect the publish");

    // The pinned object endpoint serves the deleted object from dr1 while
    // the head 404s it.
    let r = get(&site, &format!("/api/v1/objects/{first}?release=dr1"));
    assert_eq!(r.status, 200, "{}", String::from_utf8_lossy(&r.body));
    let r = get(&site, &format!("/api/v1/objects/{first}"));
    assert_eq!(r.status, 404);

    // Cone search accepts the pin too (same rows as head here: the deleted
    // object is not necessarily in the cone, so just assert the contract).
    let r = get(&site, "/api/v1/cone?ra=181&dec=-0.8&radius=15&release=dr1");
    assert_eq!(r.status, 200, "{}", String::from_utf8_lossy(&r.body));
}

/// Unknown releases are a structured `404 unknown_release` on every
/// surface that accepts a pin.
#[test]
fn unknown_release_is_a_structured_404() {
    let site = site();
    let cases = [
        "/api/v1/query?sql=select+1&release=dr9",
        "/api/v1/query?sql=select+count(*)+from+PhotoObj+as+of+dr9",
        "/api/v1/cone?ra=181&dec=-0.8&radius=15&release=dr9",
        "/api/v1/objects/1?release=dr9",
        "/api/v1/releases/diff?from=dr1&to=dr9",
    ];
    for path in cases {
        let r = get(&site, path);
        assert_eq!(
            r.status,
            404,
            "{path}: {}",
            String::from_utf8_lossy(&r.body)
        );
        assert_eq!(error_code(&r), "unknown_release", "{path}");
    }
    // The legacy SQL page rejects it too (plain-text rendering).
    let r = get(&site, "/en/tools/search/x_sql?cmd=select+1&release=dr9");
    assert_eq!(r.status, 404);
}

/// The release catalog endpoints: the list carries per-release totals and
/// the diff reports exactly the changed tables (cheap, via shared
/// copy-on-write segments).
#[test]
fn release_list_and_diff_report_changes() {
    let site = site();
    let v = json(&get(&site, "/api/v1/releases"));
    let releases = v["releases"].as_array().unwrap();
    assert_eq!(releases.len(), 1);
    assert_eq!(releases[0]["name"], serde_json::json!("dr1"));
    assert!(releases[0]["tables"].as_u64().unwrap() > 0);
    assert!(releases[0]["rows"].as_u64().unwrap() > 0);

    let victim = smallest_ids(&site, 1)[0];
    site.with_admin(|sky| {
        sky.execute(&format!("delete from PhotoObj where objID = {victim}"))
            .unwrap();
        sky.publish_release("dr2").unwrap();
    });
    let diff = json(&get(&site, "/api/v1/releases/diff?from=dr1&to=dr2"));
    assert_eq!(diff["from"], serde_json::json!("dr1"));
    assert_eq!(diff["to"], serde_json::json!("dr2"));
    let tables = diff["tables"].as_array().unwrap();
    let changed: Vec<&str> = tables
        .iter()
        .filter(|t| t["status"] != serde_json::json!("unchanged"))
        .map(|t| t["table"].as_str().unwrap())
        .collect();
    assert!(
        changed.contains(&"PhotoObj"),
        "PhotoObj changed between dr1 and dr2: {changed:?}"
    );
    assert!(
        tables
            .iter()
            .any(|t| t["status"] == serde_json::json!("unchanged")),
        "untouched tables share their segments copy-on-write"
    );
    // Missing parameters are a clean 400.
    let r = get(&site, "/api/v1/releases/diff?from=dr1");
    assert_eq!(r.status, 400);
    assert_eq!(error_code(&r), "missing_parameter");
}

/// A cursor walk started on a pinned release stays on that release across
/// a publish (the pin is part of the cursor's resource key); a head walk's
/// cursor is cleanly invalidated instead of silently switching catalogs.
#[test]
fn pinned_cursor_walk_stays_on_its_release_across_a_publish() {
    let site = site();
    let sql = "select+top+30+objID+from+PhotoObj+order+by+objID";
    let full = json(&get(
        &site,
        &format!("/api/v1/query?sql={sql}&limit=1000&release=dr1"),
    ));
    let expected: Vec<i64> = full["rows"]
        .as_array()
        .unwrap()
        .iter()
        .map(|r| r[0].as_i64().unwrap())
        .collect();
    assert_eq!(expected.len(), 30);

    // First page on dr1; also start a head walk for contrast.
    let page1 = json(&get(
        &site,
        &format!("/api/v1/query?sql={sql}&limit=10&release=dr1"),
    ));
    let pinned_cursor = page1["meta"]["next_cursor"].as_str().unwrap().to_string();
    let head_page1 = json(&get(&site, &format!("/api/v1/query?sql={sql}&limit=10")));
    let head_cursor = head_page1["meta"]["next_cursor"]
        .as_str()
        .unwrap()
        .to_string();

    // Publish dr2 mid-walk, deleting a row the walk has not reached yet.
    let victim = expected[20];
    site.with_admin(|sky| {
        sky.execute(&format!("delete from PhotoObj where objID = {victim}"))
            .unwrap();
        sky.publish_release("dr2").unwrap();
    });

    // The pinned walk continues on dr1 and covers the pre-publish rows
    // exactly once, deleted row included.
    let mut walked: Vec<i64> = page1["rows"]
        .as_array()
        .unwrap()
        .iter()
        .map(|r| r[0].as_i64().unwrap())
        .collect();
    let mut cursor = Some(pinned_cursor);
    while let Some(c) = cursor {
        let v = json(&get(
            &site,
            &format!("/api/v1/query?sql={sql}&limit=10&release=dr1&cursor={c}"),
        ));
        walked.extend(
            v["rows"]
                .as_array()
                .unwrap()
                .iter()
                .map(|r| r[0].as_i64().unwrap()),
        );
        cursor = v["meta"]["next_cursor"].as_str().map(str::to_string);
    }
    assert_eq!(walked, expected, "the dr1 walk drifted across the publish");
    assert!(walked.contains(&victim), "dr1 still holds the deleted row");

    // The head walk's cursor was issued for the pre-publish head: it is
    // rejected as invalid, never silently resumed on the new catalog.
    let r = get(
        &site,
        &format!("/api/v1/query?sql={sql}&limit=10&cursor={head_cursor}"),
    );
    assert_eq!(r.status, 400, "{}", String::from_utf8_lossy(&r.body));
    assert_eq!(error_code(&r), "invalid_cursor");
    // Restarting the head walk reflects the publish.
    let head_now = json(&get(&site, &format!("/api/v1/query?sql={sql}&limit=1000")));
    let head_ids: Vec<i64> = head_now["rows"]
        .as_array()
        .unwrap()
        .iter()
        .map(|r| r[0].as_i64().unwrap())
        .collect();
    assert!(
        !head_ids.contains(&victim),
        "head still serves a deleted row"
    );
}
