//! The `/api/v1` conformance suite: golden tests for status codes, the
//! error-envelope shape and codes, cursor pagination (a walk covers the
//! full result exactly once), content negotiation, legacy-route ≡
//! API-route equivalence, and the self-description contract (the spec is
//! generated from the live route table, and `docs/API.md` must match it).

use skyserver::SkyServerBuilder;
use skyserver_web::jobs::JobQueueConfig;
use skyserver_web::{parse_request, OutputFormat, Response, SkyServerSite, ERROR_CODES};
use std::sync::Arc;

fn site() -> Arc<SkyServerSite> {
    let sky = SkyServerBuilder::new().tiny().build().unwrap();
    SkyServerSite::new(sky)
}

fn request(
    site: &SkyServerSite,
    method: &str,
    path_and_query: &str,
    content_type: Option<&str>,
    body: &[u8],
) -> Response {
    let head = match content_type {
        Some(ct) => format!("{method} {path_and_query} HTTP/1.1\r\nContent-Type: {ct}\r\n"),
        None => format!("{method} {path_and_query} HTTP/1.1\r\n"),
    };
    site.handle(&parse_request(&head).unwrap().with_body(body.to_vec()))
}

fn get(site: &SkyServerSite, path_and_query: &str) -> Response {
    request(site, "GET", path_and_query, None, &[])
}

fn json(r: &Response) -> serde_json::Value {
    serde_json::from_slice(&r.body).unwrap_or_else(|e| {
        panic!(
            "body is not JSON ({e}): {}",
            String::from_utf8_lossy(&r.body)
        )
    })
}

/// The error envelope's code, asserting the envelope shape on the way.
fn error_code(r: &Response) -> String {
    let v = json(r);
    let error = v
        .get("error")
        .unwrap_or_else(|| panic!("no error envelope in {v}"));
    assert!(error.get("message").and_then(|m| m.as_str()).is_some());
    assert!(error.get("detail").is_some(), "envelope carries detail");
    error["code"].as_str().expect("error.code").to_string()
}

// ---------------------------------------------------------------------------
// Self-description.
// ---------------------------------------------------------------------------

#[test]
fn spec_is_generated_from_the_live_route_table() {
    let site = site();
    let r = get(&site, "/api/v1");
    assert_eq!(r.status, 200);
    assert!(r.content_type.contains("json"));
    let spec = json(&r);
    assert_eq!(spec["version"], serde_json::json!("v1"));
    let endpoints = spec["endpoints"].as_array().unwrap();
    assert!(endpoints.len() >= 10, "thin spec: {}", endpoints.len());

    // Every documented endpoint actually dispatches: substituting path
    // captures must never reach `unknown_endpoint` or a 405.
    for endpoint in endpoints {
        let method = endpoint["method"].as_str().unwrap();
        let path = endpoint["path"].as_str().unwrap().replace("{id}", "1");
        let r = request(&site, method, &path, None, &[]);
        if r.status == 404 {
            assert_ne!(
                error_code(&r),
                "unknown_endpoint",
                "{method} {path} is in the spec but does not dispatch"
            );
        }
        assert_ne!(r.status, 405, "{method} {path} is in the spec but 405s");
        // Declared params all carry a type, a location and a description.
        for p in endpoint["params"].as_array().unwrap() {
            assert!(p["name"].as_str().is_some());
            assert!(matches!(p["in"].as_str(), Some("path" | "query" | "body")));
            assert!(!p["type"].as_str().unwrap().is_empty());
            assert!(!p["description"].as_str().unwrap().is_empty());
        }
    }

    // The published error-code taxonomy rides along, in full.
    let codes = spec["error_codes"].as_array().unwrap();
    assert_eq!(codes.len(), ERROR_CODES.len());
    for (code, status, _) in ERROR_CODES {
        assert!(
            codes.iter().any(|c| c["code"] == serde_json::json!(code)
                && c["status"] == serde_json::json!(status)),
            "spec is missing error code {code}"
        );
    }

    // Unknown endpoints and wrong methods use the structured envelope.
    let r = get(&site, "/api/v1/nope");
    assert_eq!(r.status, 404);
    assert_eq!(error_code(&r), "unknown_endpoint");
    let r = request(&site, "PUT", "/api/v1/query", None, &[]);
    assert_eq!(r.status, 405);
    assert_eq!(error_code(&r), "method_not_allowed");
    let allowed = json(&r)["error"]["detail"]["allowed"].clone();
    assert_eq!(allowed, serde_json::json!(["GET", "POST"]));
}

#[test]
fn documented_routes_match_the_live_spec() {
    let doc = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/API.md"))
        .expect("docs/API.md exists");

    // Every "### `METHOD /path`" heading, as (method, path).
    let mut documented: Vec<(String, String)> = doc
        .lines()
        .filter_map(|line| line.strip_prefix("### `")?.strip_suffix('`'))
        .filter_map(|entry| {
            let (method, path) = entry.split_once(' ')?;
            Some((method.to_string(), path.to_string()))
        })
        .collect();
    documented.sort();
    documented.dedup();

    let site = site();
    let spec = json(&get(&site, "/api/v1"));
    let mut live: Vec<(String, String)> = spec["endpoints"]
        .as_array()
        .unwrap()
        .iter()
        .map(|e| {
            (
                e["method"].as_str().unwrap().to_string(),
                e["path"].as_str().unwrap().to_string(),
            )
        })
        .collect();
    live.sort();
    live.dedup();
    assert_eq!(
        documented, live,
        "docs/API.md endpoint headings and the live GET /api/v1 spec disagree"
    );

    // The documented error-code table carries the full taxonomy with the
    // registered statuses.
    for (code, status, _) in ERROR_CODES {
        assert!(
            doc.contains(&format!("| `{code}` | {status} |")),
            "docs/API.md error-code table is missing `{code}` ({status})"
        );
    }
}

// ---------------------------------------------------------------------------
// The sync query endpoint: envelope, error codes, negotiation.
// ---------------------------------------------------------------------------

#[test]
fn query_status_codes_and_error_envelopes() {
    let site = site();
    // Success: the JSON envelope with pagination metadata.
    let r = get(&site, "/api/v1/query?sql=select+top+5+objID+from+PhotoObj");
    assert_eq!(r.status, 200);
    let v = json(&r);
    assert_eq!(v["columns"], serde_json::json!(["objID"]));
    assert_eq!(v["rows"].as_array().unwrap().len(), 5);
    assert_eq!(v["meta"]["returned"], serde_json::json!(5));
    assert_eq!(v["meta"]["total_rows"], serde_json::json!(5));
    assert_eq!(v["meta"]["truncated"], serde_json::json!(false));
    assert!(v["meta"]["next_cursor"].is_null());

    // Engine row-budget truncation is reported in the metadata.
    let r = get(
        &site,
        "/api/v1/query?sql=select+objID+from+PhotoObj&limit=1000",
    );
    let v = json(&r);
    assert_eq!(v["meta"]["total_rows"], serde_json::json!(1000));
    assert_eq!(v["meta"]["truncated"], serde_json::json!(true));

    // Missing SQL: 400 missing_parameter.
    let r = get(&site, "/api/v1/query");
    assert_eq!(r.status, 400);
    assert_eq!(error_code(&r), "missing_parameter");

    // Malformed SQL: 422 sql_parse_error.
    let r = get(&site, "/api/v1/query?sql=selec+nonsense");
    assert_eq!(r.status, 422);
    assert_eq!(error_code(&r), "sql_parse_error");

    // Unknown tables: 422 sql_plan_error.
    let r = get(&site, "/api/v1/query?sql=select+x+from+NoSuchTable");
    assert_eq!(r.status, 422);
    assert_eq!(error_code(&r), "sql_plan_error");

    // Writes: 403 read_only (and the table survives).
    let r = get(&site, "/api/v1/query?sql=drop+table+PhotoObj");
    assert_eq!(r.status, 403);
    assert_eq!(error_code(&r), "read_only");
    let r = get(&site, "/api/v1/query?sql=select+count(*)+from+PhotoObj");
    assert_eq!(r.status, 200);

    // Bad limit values: 400 invalid_parameter.
    for bad in ["0", "1001", "abc"] {
        let r = get(&site, &format!("/api/v1/query?sql=select+1&limit={bad}"));
        assert_eq!(r.status, 400, "limit={bad}");
        assert_eq!(error_code(&r), "invalid_parameter");
    }
}

#[test]
fn content_negotiation_on_the_api_surface() {
    let site = site();
    let sql = "select+top+3+objID,ra+from+PhotoObj";

    // ?format= wins and unknown names are a structured 400 listing the
    // supported formats (no silent grid/CSV fallback on /api/v1).
    let r = get(&site, &format!("/api/v1/query?sql={sql}&format=csv"));
    assert_eq!(r.status, 200);
    assert!(r.content_type.contains("csv"));
    assert_eq!(String::from_utf8_lossy(&r.body).lines().count(), 4);
    let r = get(&site, &format!("/api/v1/query?sql={sql}&format=exe"));
    assert_eq!(r.status, 400);
    assert_eq!(error_code(&r), "unsupported_format");
    let supported = json(&r)["error"]["detail"]["supported"].clone();
    let names: Vec<&'static str> = OutputFormat::ALL.iter().map(|f| f.name()).collect();
    assert_eq!(supported, serde_json::to_value(&names));

    // The Accept header negotiates when no ?format= is given; an
    // unservable Accept is 406.
    let head = format!("GET /api/v1/query?sql={sql} HTTP/1.1\r\nAccept: text/csv\r\n");
    let r = site.handle(&parse_request(&head).unwrap());
    assert_eq!(r.status, 200);
    assert!(r.content_type.contains("csv"));
    let head = format!("GET /api/v1/query?sql={sql} HTTP/1.1\r\nAccept: image/png\r\n");
    let r = site.handle(&parse_request(&head).unwrap());
    assert_eq!(r.status, 406);
    assert_eq!(error_code(&r), "not_acceptable");

    // Document endpoints are JSON-only.
    let r = get(&site, "/api/v1/schema?format=csv");
    assert_eq!(r.status, 406);
    assert_eq!(error_code(&r), "not_acceptable");
    // XML pages carry the pagination metadata in headers.
    let r = get(
        &site,
        &format!("/api/v1/query?sql={sql}&format=xml&limit=2"),
    );
    assert_eq!(r.status, 200);
    assert!(r.content_type.contains("xml"));
    assert_eq!(r.header("X-Total-Rows"), Some("3"));
    assert!(r.header("X-Next-Cursor").is_some());
}

#[test]
fn post_query_accepts_form_and_raw_bodies() {
    let site = site();
    // Form-encoded.
    let r = request(
        &site,
        "POST",
        "/api/v1/query",
        Some("application/x-www-form-urlencoded"),
        b"sql=select+top+4+objID+from+PhotoObj",
    );
    assert_eq!(r.status, 200, "{}", String::from_utf8_lossy(&r.body));
    assert_eq!(json(&r)["rows"].as_array().unwrap().len(), 4);
    // Raw SQL body.
    let r = request(
        &site,
        "POST",
        "/api/v1/query",
        Some("text/plain"),
        b"select top 2 objID from PhotoObj",
    );
    assert_eq!(r.status, 200, "{}", String::from_utf8_lossy(&r.body));
    assert_eq!(json(&r)["rows"].as_array().unwrap().len(), 2);
    // And over a real socket, body included.
    let server = site.serve(0).unwrap();
    let (status, body) = skyserver_web::http_request(
        server.addr(),
        "POST",
        "/api/v1/query",
        Some("text/plain"),
        b"select count(*) as n from Plate",
    )
    .unwrap();
    assert_eq!(status, 200, "{body}");
    let v: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(v["columns"], serde_json::json!(["n"]));
    server.stop();
}

// ---------------------------------------------------------------------------
// Pagination.
// ---------------------------------------------------------------------------

#[test]
fn cursor_walk_covers_the_full_result_exactly_once() {
    let site = site();
    let sql = "select+top+37+objID+from+PhotoObj+order+by+objID";
    let full = json(&get(&site, &format!("/api/v1/query?sql={sql}&limit=1000")));
    let expected: Vec<i64> = full["rows"]
        .as_array()
        .unwrap()
        .iter()
        .map(|r| r[0].as_i64().unwrap())
        .collect();
    assert_eq!(expected.len(), 37);

    let mut walked: Vec<i64> = Vec::new();
    let mut cursor: Option<String> = None;
    let mut pages = 0;
    loop {
        let url = match &cursor {
            None => format!("/api/v1/query?sql={sql}&limit=10"),
            Some(c) => format!("/api/v1/query?sql={sql}&limit=10&cursor={c}"),
        };
        let v = json(&get(&site, &url));
        let rows = v["rows"].as_array().unwrap();
        walked.extend(rows.iter().map(|r| r[0].as_i64().unwrap()));
        pages += 1;
        assert_eq!(v["meta"]["total_rows"], serde_json::json!(37));
        assert!(pages <= 10, "runaway cursor walk");
        match v["meta"]["next_cursor"].as_str() {
            Some(next) => cursor = Some(next.to_string()),
            None => break,
        }
    }
    assert_eq!(pages, 4, "37 rows at limit 10");
    assert_eq!(
        walked, expected,
        "the walk must cover every row exactly once"
    );

    // Pages after the first read the materialized-rows cache instead of
    // re-running the scan (the QA page surfaces the counters).
    let qa = json(&get(&site, "/skyserverqa/metadata"));
    assert!(
        qa["row_cache"]["hits"].as_u64().unwrap() >= (pages - 1) as u64,
        "cursor walk re-executed the query per page: {}",
        qa["row_cache"]
    );

    // A cursor replayed against different SQL is rejected, not misapplied.
    let token = cursor_for(&site, sql);
    let r = get(
        &site,
        &format!("/api/v1/query?sql=select+top+37+ra+from+PhotoObj&cursor={token}"),
    );
    assert_eq!(r.status, 400);
    assert_eq!(error_code(&r), "invalid_cursor");
    // Garbage cursors are a clean 400.
    let r = get(&site, &format!("/api/v1/query?sql={sql}&cursor=zzzz"));
    assert_eq!(r.status, 400);
    assert_eq!(error_code(&r), "invalid_cursor");
    // Whitespace-normalised SQL shares the cursor key (same normalizer as
    // the result cache).
    let r = get(
        &site,
        &format!(
            "/api/v1/query?sql=SELECT+top+37+objID+FROM+PhotoObj+ORDER+BY+objID&cursor={token}"
        ),
    );
    assert_eq!(r.status, 200, "{}", String::from_utf8_lossy(&r.body));
}

fn cursor_for(site: &SkyServerSite, sql: &str) -> String {
    let v = json(&get(site, &format!("/api/v1/query?sql={sql}&limit=10")));
    v["meta"]["next_cursor"].as_str().unwrap().to_string()
}

// ---------------------------------------------------------------------------
// Objects, cone, schema: golden behaviour + legacy equivalence.
// ---------------------------------------------------------------------------

#[test]
fn objects_endpoint_matches_legacy_explore() {
    let site = site();
    let v = json(&get(
        &site,
        "/api/v1/query?sql=select+top+1+objID+from+PhotoObj",
    ));
    let id = v["rows"][0][0].as_i64().unwrap();

    let api = get(&site, &format!("/api/v1/objects/{id}"));
    assert_eq!(api.status, 200);
    let legacy = get(&site, &format!("/en/tools/explore?id={id}"));
    assert_eq!(legacy.status, 200);
    // One implementation serves both: byte-identical payloads.
    assert_eq!(api.body, legacy.body);
    let summary = json(&api);
    assert_eq!(summary["obj_id"].as_i64().unwrap(), id);
    assert!(summary["attributes"].as_array().unwrap().len() > 50);

    // Typed extraction: a malformed id is 400 invalid_parameter on both
    // surfaces (the legacy page renders it as plain text).
    let r = get(&site, "/api/v1/objects/abc");
    assert_eq!(r.status, 400);
    assert_eq!(error_code(&r), "invalid_parameter");
    assert_eq!(get(&site, "/en/tools/explore?id=abc").status, 400);
    // Unknown objects are 404 with the envelope.
    let r = get(&site, "/api/v1/objects/-5");
    assert_eq!(r.status, 404);
    assert_eq!(error_code(&r), "not_found");
}

#[test]
fn cone_endpoint_matches_legacy_navigator() {
    let site = site();
    // zoom=2 on the navigator is a 15 arcmin radius.
    let legacy = json(&get(&site, "/en/tools/navi?ra=181&dec=-0.8&zoom=2"));
    let legacy_objects = legacy["objects"].as_array().unwrap();
    let api = json(&get(
        &site,
        "/api/v1/cone?ra=181&dec=-0.8&radius=15&limit=1000",
    ));
    let api_rows = api["rows"].as_array().unwrap();
    assert_eq!(api_rows.len(), legacy_objects.len());
    if !api_rows.is_empty() {
        assert_eq!(
            api_rows[0][0].as_i64(),
            legacy_objects[0]["objID"].as_i64(),
            "same nearest object through both surfaces"
        );
    }

    // Typed validation on the API surface.
    for (bad, code) in [
        ("/api/v1/cone?dec=0&radius=5", "missing_parameter"),
        ("/api/v1/cone?ra=400&dec=0&radius=5", "invalid_parameter"),
        ("/api/v1/cone?ra=181&dec=-95&radius=5", "invalid_parameter"),
        ("/api/v1/cone?ra=181&dec=0&radius=0", "invalid_parameter"),
        ("/api/v1/cone?ra=abc&dec=0&radius=5", "invalid_parameter"),
    ] {
        let r = get(&site, bad);
        assert_eq!(r.status, 400, "{bad}");
        assert_eq!(error_code(&r), code, "{bad}");
    }
    // The legacy navigator now 400s on malformed params instead of
    // silently rendering the wrong sky position...
    assert_eq!(get(&site, "/en/tools/navi?ra=abc").status, 400);
    assert_eq!(get(&site, "/en/tools/navi?zoom=9").status, 400);
    assert_eq!(get(&site, "/en/tools/navi?ra=400").status, 400);
    // ...while absent params keep their historical defaults.
    assert_eq!(get(&site, "/en/tools/navi").status, 200);
}

#[test]
fn legacy_sql_page_and_api_query_return_the_same_rows() {
    let site = site();
    let sql = "select+top+7+objID,ra,dec+from+Galaxy+order+by+objID";
    let legacy = json(&get(
        &site,
        &format!("/en/tools/search/x_sql?cmd={sql}&format=json"),
    ));
    let api = json(&get(&site, &format!("/api/v1/query?sql={sql}")));
    assert_eq!(legacy["columns"], api["columns"]);
    assert_eq!(legacy["rows"], api["rows"]);
    // The legacy page keeps its forgiving format fallback; the API does
    // not.
    let r = get(
        &site,
        &format!("/en/tools/search/x_sql?cmd={sql}&format=exe"),
    );
    assert_eq!(r.status, 200, "legacy links must keep working");
    let r = get(&site, &format!("/api/v1/query?sql={sql}&format=exe"));
    assert_eq!(r.status, 400);

    // Schema: the API document is the same description the QA page wraps.
    let api_schema = json(&get(&site, "/api/v1/schema"));
    assert!(api_schema["tables"]
        .as_array()
        .unwrap()
        .iter()
        .any(|t| t["name"] == serde_json::json!("PhotoObj")));
    assert!(
        api_schema.get("result_cache").is_none(),
        "plain schema only"
    );
}

// ---------------------------------------------------------------------------
// Jobs as REST resources.
// ---------------------------------------------------------------------------

#[test]
fn job_rest_lifecycle_and_error_codes() {
    let sky = SkyServerBuilder::new().tiny().build().unwrap();
    let site = SkyServerSite::new_with(
        sky,
        128,
        JobQueueConfig {
            workers: 1,
            max_active_per_submitter: 2,
            ..JobQueueConfig::default()
        },
    );

    // Submit via POST (form body), answered 201 with an href.
    let r = request(
        &site,
        "POST",
        "/api/v1/jobs?submitter=alice",
        Some("application/x-www-form-urlencoded"),
        b"sql=select+top+12+objID,ra+from+PhotoObj+order+by+objID",
    );
    assert_eq!(r.status, 201, "{}", String::from_utf8_lossy(&r.body));
    let v = json(&r);
    let id = v["job_id"].as_u64().unwrap();
    assert_eq!(v["href"], serde_json::json!(format!("/api/v1/jobs/{id}")));

    // Poll the REST status endpoint to completion.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    loop {
        let v = json(&get(&site, &format!("/api/v1/jobs/{id}")));
        if v["state"] == serde_json::json!("done") {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "job stuck: {v}");
        std::thread::sleep(std::time::Duration::from_millis(5));
    }

    // The result endpoint pages like /query and renders CSV too.
    let v = json(&get(&site, &format!("/api/v1/jobs/{id}/result?limit=5")));
    assert_eq!(v["meta"]["total_rows"], serde_json::json!(12));
    assert_eq!(v["rows"].as_array().unwrap().len(), 5);
    let cursor = v["meta"]["next_cursor"].as_str().unwrap().to_string();
    let v = json(&get(
        &site,
        &format!("/api/v1/jobs/{id}/result?limit=100&cursor={cursor}"),
    ));
    assert_eq!(v["rows"].as_array().unwrap().len(), 7);
    assert!(v["meta"]["next_cursor"].is_null());
    let r = get(&site, &format!("/api/v1/jobs/{id}/result?format=csv"));
    assert_eq!(r.status, 200);
    assert!(r.content_type.contains("csv"));
    assert_eq!(String::from_utf8_lossy(&r.body).lines().count(), 13);

    // The jobs list filters by submitter.
    let v = json(&get(&site, "/api/v1/jobs?submitter=alice"));
    assert_eq!(v["jobs"].as_array().unwrap().len(), 1);
    assert!(json(&get(&site, "/api/v1/jobs?submitter=bob"))["jobs"]
        .as_array()
        .unwrap()
        .is_empty());

    // A long-running job: result is 409 job_not_ready, then DELETE
    // cancels it and the result becomes 409 job_cancelled.
    let r = request(
        &site,
        "POST",
        "/api/v1/jobs?submitter=alice&sql=select+count(*)+from+PhotoObj+a+join+PhotoObj+b+on+a.objID+%3C+b.objID",
        None,
        &[],
    );
    assert_eq!(r.status, 201, "{}", String::from_utf8_lossy(&r.body));
    let slow = json(&r)["job_id"].as_u64().unwrap();
    let r = get(&site, &format!("/api/v1/jobs/{slow}/result"));
    assert_eq!(r.status, 409);
    assert_eq!(error_code(&r), "job_not_ready");

    // A third active job for alice trips the quota: 429 quota_exceeded.
    let r = request(
        &site,
        "POST",
        "/api/v1/jobs?submitter=alice&sql=select+1",
        None,
        &[],
    );
    // The first (quick) job has finished, so submit one more filler to
    // hold the second slot if needed; state timing makes this either 201
    // (quick job done, slot free) — then the next submit must 429.
    let mut statuses = vec![r.status];
    let r2 = request(
        &site,
        "POST",
        "/api/v1/jobs?submitter=alice&sql=select+count(*)+from+PhotoObj+a+join+PhotoObj+b+on+a.objID+%3C+b.objID",
        None,
        &[],
    );
    statuses.push(r2.status);
    assert!(
        statuses.contains(&429),
        "an over-quota submission must 429, got {statuses:?}"
    );
    let quota = [r, r2].into_iter().find(|r| r.status == 429).unwrap();
    assert_eq!(error_code(&quota), "quota_exceeded");
    // Shedding responses always hint when to come back.
    assert_eq!(
        quota.header("retry-after"),
        Some(skyserver_web::api::RETRY_AFTER_SECONDS),
        "429 quota_exceeded must carry Retry-After"
    );

    // DELETE cancels; the post-cancel state is reported.
    let r = request(&site, "DELETE", &format!("/api/v1/jobs/{slow}"), None, &[]);
    assert_eq!(r.status, 200, "{}", String::from_utf8_lossy(&r.body));
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    loop {
        let v = json(&get(&site, &format!("/api/v1/jobs/{slow}")));
        if v["state"] == serde_json::json!("cancelled") {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "cancel stuck: {v}");
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let r = get(&site, &format!("/api/v1/jobs/{slow}/result"));
    assert_eq!(r.status, 409);
    assert_eq!(error_code(&r), "job_cancelled");

    // Unknown ids and malformed ids.
    let r = get(&site, "/api/v1/jobs/99999");
    assert_eq!(r.status, 404);
    assert_eq!(error_code(&r), "not_found");
    let r = get(&site, "/api/v1/jobs/abc");
    assert_eq!(r.status, 400);
    assert_eq!(error_code(&r), "invalid_parameter");
    // Missing SQL on submission.
    let r = request(&site, "POST", "/api/v1/jobs", None, &[]);
    assert_eq!(r.status, 400);
    assert_eq!(error_code(&r), "missing_parameter");
}

#[test]
fn wrong_methods_over_a_real_socket_get_the_envelope() {
    let site = site();
    let server = site.serve(0).unwrap();
    // The transport forwards every method, so an API client sending PUT
    // receives the structured 405 envelope, not transport-level text.
    let (status, body) =
        skyserver_web::http_request(server.addr(), "PUT", "/api/v1/query", None, &[]).unwrap();
    assert_eq!(status, 405, "{body}");
    let v: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(v["error"]["code"], serde_json::json!("method_not_allowed"));
    // Legacy pages stay GET-only with a plain-text 405.
    let (status, body) =
        skyserver_web::http_request(server.addr(), "POST", "/en/tools/places", None, &[]).unwrap();
    assert_eq!(status, 405, "{body}");
    assert!(serde_json::from_str::<serde_json::Value>(&body).is_err());
    // A form-body `format` field is honoured like a query parameter.
    let (status, body) = skyserver_web::http_request(
        server.addr(),
        "POST",
        "/api/v1/query",
        Some("application/x-www-form-urlencoded"),
        b"sql=select+top+2+objID+from+PhotoObj&format=csv",
    )
    .unwrap();
    assert_eq!(status, 200, "{body}");
    assert_eq!(body.lines().count(), 3, "CSV header + 2 rows:\n{body}");
    server.stop();
}

// ---------------------------------------------------------------------------
// Traffic attribution.
// ---------------------------------------------------------------------------

#[test]
fn api_traffic_is_classified_and_errors_counted() {
    let site = site();
    get(&site, "/api/v1");
    get(&site, "/api/v1/query?sql=select+1");
    get(&site, "/api/v1/query?sql=selec+broken"); // 422
    get(&site, "/api/v1/nope"); // 404
    get(&site, "/en/tools/places"); // a page view for contrast

    let log = site.request_log();
    assert_eq!(log.len(), 5);
    let api_records: Vec<_> = log
        .iter()
        .filter(|r| r.section == skyserver_web::Section::Api)
        .collect();
    assert_eq!(api_records.len(), 4, "API hits classify as Section::Api");
    assert!(
        api_records.iter().all(|r| !r.page_view),
        "API hits are machine traffic, not page views"
    );
    assert_eq!(
        api_records.iter().filter(|r| r.status != 200).count(),
        2,
        "the 422 and the 404 are recorded distinctly"
    );

    let traffic = json(&get(&site, "/traffic"));
    assert_eq!(traffic["api_hits"], serde_json::json!(4));
    assert_eq!(traffic["api_errors"], serde_json::json!(2));
}

// ---------------------------------------------------------------------------
// Overload & resource-pressure contract.
// ---------------------------------------------------------------------------

/// Shed queries answer `503` with `Retry-After` on both surfaces: the
/// API gets the `overloaded` envelope, the legacy page its plain-text
/// rendering — same status, same hint.
#[test]
fn shed_queries_answer_503_with_retry_after_on_both_surfaces() {
    let sky = SkyServerBuilder::new().tiny().build().unwrap();
    let site = SkyServerSite::new_with_governor(
        sky,
        0,
        JobQueueConfig::default(),
        skyserver_web::GovernorConfig {
            max_in_flight: 0, // shed everything: deterministic overload
            deadline: std::time::Duration::from_secs(30),
        },
    );
    let r = get(&site, "/api/v1/query?sql=select+1");
    assert_eq!(r.status, 503, "{}", String::from_utf8_lossy(&r.body));
    assert_eq!(error_code(&r), "overloaded");
    assert_eq!(
        r.header("retry-after"),
        Some(skyserver_web::api::RETRY_AFTER_SECONDS)
    );
    let r = get(&site, "/en/tools/search/x_sql?cmd=select+1");
    assert_eq!(r.status, 503);
    assert_eq!(
        r.header("retry-after"),
        Some(skyserver_web::api::RETRY_AFTER_SECONDS)
    );
    assert_eq!(site.governor().stats().shed, 2);
}

/// The acceptance query of the resource governor: a public cross join of
/// PhotoObj with itself must die on the 64 MiB memory budget with a
/// structured `422 resource_exhausted` (and partial progress stats), not
/// by growing the process until the OS kills it.
#[test]
fn runaway_cross_join_is_resource_exhausted_not_oom() {
    let site = site();
    let r = get(
        &site,
        "/api/v1/query?sql=select+a.*,+b.*+from+photoobj+a,+photoobj+b",
    );
    assert_eq!(r.status, 422, "{}", String::from_utf8_lossy(&r.body));
    assert_eq!(error_code(&r), "resource_exhausted");
    let detail = json(&r)["error"]["detail"].clone();
    assert!(
        detail["peak_bytes"].as_u64().unwrap() > 0,
        "exhaustion reports the memory high-water mark: {detail}"
    );
    // The server is fine afterwards.
    let r = get(&site, "/api/v1/query?sql=select+count(*)+from+PhotoObj");
    assert_eq!(r.status, 200);
}
