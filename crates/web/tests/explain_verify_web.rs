//! `EXPLAIN VERIFY` end-to-end over the serving tier: the statement only
//! plans (never executes), so the public read-only SQL page can serve it
//! like any other read statement.

use skyserver::SkyServerBuilder;
use skyserver_web::{http_get, SkyServerSite};

#[test]
fn explain_verify_over_the_public_sql_page() {
    let sky = SkyServerBuilder::new().tiny().build().unwrap();
    let site = SkyServerSite::new(sky);
    let server = site.serve(0).unwrap();

    let cmd = "explain verify select top 3 objID, ra from PhotoObj where type = 3";
    let encoded: String = cmd
        .chars()
        .map(|c| {
            if c == ' ' {
                "%20".to_string()
            } else {
                c.to_string()
            }
        })
        .collect();
    let (status, body) = http_get(
        server.addr(),
        &format!("/en/tools/search/x_sql?cmd={encoded}&format=json"),
    )
    .unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(
        body.contains("plan_verify") && body.contains("plan verified:"),
        "unexpected EXPLAIN VERIFY body over HTTP: {body}"
    );
    server.stop();
}
