//! The chaos suite: prove graceful degradation under injected faults.
//!
//! Every named failpoint site, under every action class (`error`,
//! `delay`, `panic`), must surface as a *structured* outcome — an error
//! envelope, a failed job, or at worst a dropped connection — and the
//! server must keep answering afterwards.  What must never happen: a
//! dead worker, a poisoned lock, or a keep-alive connection serving
//! desynced responses.
//!
//! Failpoint state is process-global, so every test serializes on one
//! mutex and clears all sites on entry and exit.

use skyserver::storage::failpoints::{self, FailAction};
use skyserver::SkyServerBuilder;
use skyserver_web::jobs::JobQueueConfig;
use skyserver_web::{
    http_get, parse_request, GovernorConfig, HttpClient, Response, ServerConfig, SkyServerSite,
};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

static SERIAL: Mutex<()> = Mutex::new(());

/// Run `f` with exclusive failpoint access, clean on both sides.
fn with_chaos(f: impl FnOnce()) {
    let _guard = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
    failpoints::clear_all();
    f();
    failpoints::clear_all();
}

fn site() -> Arc<SkyServerSite> {
    let sky = SkyServerBuilder::new().tiny().build().unwrap();
    SkyServerSite::new(sky)
}

fn get(site: &SkyServerSite, path_and_query: &str) -> Response {
    let raw = format!("GET {path_and_query} HTTP/1.1\r\n");
    site.handle(&parse_request(&raw).unwrap())
}

fn error_code(r: &Response) -> String {
    let v: serde_json::Value = serde_json::from_slice(&r.body).unwrap_or_else(|e| {
        panic!(
            "body is not JSON ({e}): {}",
            String::from_utf8_lossy(&r.body)
        )
    });
    v["error"]["code"].as_str().expect("error.code").to_string()
}

/// Wait for a job to finish and return its status snapshot.
fn finished_job(site: &SkyServerSite, id: u64) -> skyserver_web::JobStatus {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let status = site.jobs().status(id).expect("job status");
        if status.state.is_finished() {
            return status;
        }
        assert!(Instant::now() < deadline, "job {id} never finished");
        std::thread::sleep(Duration::from_millis(2));
    }
}

// ---------------------------------------------------------------------------
// Error and delay actions (in-process dispatch: nothing unwinds).
// ---------------------------------------------------------------------------

/// An injected read failure in the storage scan loop surfaces as a
/// `500 storage_error` envelope; disarming restores service.
#[test]
fn segment_read_fault_is_a_structured_storage_error() {
    with_chaos(|| {
        let site = site();
        failpoints::configure("storage.segment_read", FailAction::Error);
        let r = get(&site, "/api/v1/query?sql=select+count(*)+from+PhotoObj");
        assert_eq!(r.status, 500, "{}", String::from_utf8_lossy(&r.body));
        assert_eq!(error_code(&r), "storage_error");
        failpoints::clear_all();
        let r = get(&site, "/api/v1/query?sql=select+count(*)+from+PhotoObj");
        assert_eq!(r.status, 200);
    });
}

/// An injected fault in the executor's batch loop surfaces as a
/// `422 sql_execution_error` envelope.
#[test]
fn executor_batch_fault_is_a_structured_execution_error() {
    with_chaos(|| {
        let site = site();
        failpoints::configure("executor.batch", FailAction::Error);
        let r = get(&site, "/api/v1/query?sql=select+objid+from+PhotoObj");
        assert_eq!(r.status, 422, "{}", String::from_utf8_lossy(&r.body));
        assert_eq!(error_code(&r), "sql_execution_error");
        failpoints::clear_all();
        let r = get(&site, "/api/v1/query?sql=select+objid+from+PhotoObj");
        assert_eq!(r.status, 200);
    });
}

/// Injected delays slow requests down without changing their results.
#[test]
fn delays_degrade_latency_not_correctness() {
    with_chaos(|| {
        let site = site();
        for site_name in ["storage.segment_read", "executor.batch", "cache.insert"] {
            failpoints::configure(site_name, FailAction::Delay(5));
        }
        let started = Instant::now();
        let r = get(&site, "/api/v1/query?sql=select+count(*)+as+n+from+Plate");
        assert_eq!(r.status, 200, "{}", String::from_utf8_lossy(&r.body));
        assert!(started.elapsed() >= Duration::from_millis(5));
        let v: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
        assert!(v["rows"][0][0].as_i64().unwrap() > 0);
    });
}

/// The cache is an accelerator: a faulting insert silently skips caching
/// and the request succeeds; the entry just never lands.
#[test]
fn cache_insert_fault_skips_caching_without_failing_the_request() {
    with_chaos(|| {
        let site = site();
        failpoints::configure("cache.insert", FailAction::Error);
        let q = "/en/tools/search/x_sql?cmd=select+count(*)+from+PhotoObj&format=json";
        assert_eq!(get(&site, q).status, 200);
        assert_eq!(get(&site, q).status, 200);
        // Both requests executed: nothing was cached, nothing was lost.
        assert_eq!(site.cache_stats().hits, 0);
        failpoints::clear_all();
        assert_eq!(get(&site, q).status, 200);
        assert_eq!(get(&site, q).status, 200);
        assert_eq!(site.cache_stats().hits, 1, "caching resumes once disarmed");
    });
}

/// A fault just before the batch runner executes fails that job with the
/// injected message; the queue keeps draining.
#[test]
fn jobs_runner_fault_fails_the_job_not_the_queue() {
    with_chaos(|| {
        let site = site();
        failpoints::configure("jobs.runner", FailAction::Error);
        let id = site.jobs().submit("chaos", "select 1").unwrap();
        let status = finished_job(&site, id);
        assert_eq!(status.state, skyserver_web::JobState::Failed);
        assert!(
            status.error.as_deref().unwrap().contains("jobs.runner"),
            "{:?}",
            status.error
        );
        failpoints::clear_all();
        let id = site
            .jobs()
            .submit("chaos", "select count(*) from Plate")
            .unwrap();
        assert_eq!(finished_job(&site, id).state, skyserver_web::JobState::Done);
    });
}

// ---------------------------------------------------------------------------
// Panic actions (over a real socket: the unwind must die in the server).
// ---------------------------------------------------------------------------

/// A panic anywhere inside a request handler — here injected deep in the
/// storage scan — comes back as a structured `500 internal_error`
/// envelope and costs only that request.
#[test]
fn handler_panic_returns_a_structured_500_envelope() {
    with_chaos(|| {
        let site = site();
        let server = site.serve(0).unwrap();
        failpoints::configure("storage.segment_read", FailAction::Panic);
        let (status, body) = http_get(
            server.addr(),
            "/api/v1/query?sql=select+count(*)+from+PhotoObj",
        )
        .unwrap();
        assert_eq!(status, 500, "{body}");
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(v["error"]["code"], serde_json::json!("internal_error"));
        failpoints::clear_all();
        let (status, _) = http_get(
            server.addr(),
            "/api/v1/query?sql=select+count(*)+from+PhotoObj",
        )
        .unwrap();
        assert_eq!(status, 200);
        server.stop();
    });
}

/// The satellite regression: repeated handler panics must not shrink the
/// HTTP worker pool, and a panicking batch runner must not poison the
/// jobs-queue lock.  After the storm, both tiers serve normally.
#[test]
fn worker_pool_and_jobs_lock_survive_a_panic_storm() {
    with_chaos(|| {
        let sky = SkyServerBuilder::new().tiny().build().unwrap();
        let site = SkyServerSite::new_with(
            sky,
            0,
            JobQueueConfig {
                workers: 1,
                ..JobQueueConfig::default()
            },
        );
        let config = ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        };
        let server = site.serve_with(0, config).unwrap();

        // 1. Panic storm through the 2-worker HTTP pool: 6 consecutive
        //    requests all unwind inside the handler.  If panics cost
        //    workers, the third request would hang forever.
        failpoints::configure("executor.batch", FailAction::Panic);
        for i in 0..6 {
            let (status, body) = http_get(
                server.addr(),
                "/api/v1/query?sql=select+objid+from+PhotoObj",
            )
            .unwrap();
            assert_eq!(status, 500, "storm request {i}: {body}");
        }

        // 2. A panicking batch runner fails its job without poisoning the
        //    queue lock.
        failpoints::configure("jobs.runner", FailAction::Panic);
        let id = site.jobs().submit("chaos", "select 1").unwrap();
        let status = finished_job(&site, id);
        assert_eq!(status.state, skyserver_web::JobState::Failed);
        assert!(
            status.error.as_deref().unwrap().contains("panic"),
            "{:?}",
            status.error
        );

        // 3. Disarm: both tiers are fully alive.  The job queue's single
        //    worker (which just survived the panic) runs a new job; the
        //    HTTP pool answers on every worker.
        failpoints::clear_all();
        for _ in 0..4 {
            let (status, _) = http_get(
                server.addr(),
                "/api/v1/query?sql=select+count(*)+from+PhotoObj",
            )
            .unwrap();
            assert_eq!(status, 200);
        }
        let id = site
            .jobs()
            .submit("chaos", "select count(*) from Plate")
            .unwrap();
        assert_eq!(finished_job(&site, id).state, skyserver_web::JobState::Done);
        server.stop();
    });
}

/// A fault while writing the response drops that connection (there is no
/// channel left to answer on) but never the worker: the next connection
/// is served normally.  Keep-alive clients reconnect cleanly instead of
/// reading desynced bytes.
#[test]
fn response_write_fault_drops_the_connection_not_the_worker() {
    with_chaos(|| {
        let site = site();
        let server = site.serve(0).unwrap();
        for action in [FailAction::Error, FailAction::Panic] {
            failpoints::configure("http.response_write", action);
            let outcome = http_get(server.addr(), "/api/v1/query?sql=select+1");
            // The connection died before a response: either an I/O error
            // or an empty read (status 0) — never a half-written body.
            if let Ok((status, body)) = outcome {
                assert_eq!(status, 0, "got a response past the fault? {body}");
            }
            failpoints::clear_all();
            let (status, _) = http_get(
                server.addr(),
                "/api/v1/query?sql=select+count(*)+from+Plate",
            )
            .unwrap();
            assert_eq!(status, 200, "worker died with the {action:?} connection");
        }
        server.stop();
    });
}

// ---------------------------------------------------------------------------
// Deadline propagation and degradation shape.
// ---------------------------------------------------------------------------

/// An admitted query that outlives its request deadline dies with a
/// `408 query_timeout` envelope carrying partial progress stats — the
/// web tier's deadline rides the monitor into the executor's per-batch
/// checkpoint.
#[test]
fn deadline_expiry_is_a_408_with_partial_progress() {
    with_chaos(|| {
        let sky = SkyServerBuilder::new().tiny().build().unwrap();
        let site = SkyServerSite::new_with_governor(
            sky,
            0,
            JobQueueConfig::default(),
            GovernorConfig {
                max_in_flight: 64,
                deadline: Duration::from_millis(1),
            },
        );
        let r = get(
            &site,
            "/api/v1/query?sql=select+count(*)+from+PhotoObj+a+join+PhotoObj+b+on+a.objID+%3C+b.objID",
        );
        assert_eq!(r.status, 408, "{}", String::from_utf8_lossy(&r.body));
        assert_eq!(error_code(&r), "query_timeout");
        let v: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
        assert!(
            v["error"]["detail"]["rows_processed"].as_u64().is_some(),
            "timeout reports partial progress: {v}"
        );
    });
}

/// Under a saturated admission cap with a chaos delay stretching every
/// query, shed requests get an immediate 503 + Retry-After and a
/// backoff client eventually gets through — the governor degrades
/// gracefully instead of queueing without bound.
#[test]
fn saturated_governor_sheds_and_backoff_clients_recover() {
    with_chaos(|| {
        let sky = SkyServerBuilder::new().tiny().build().unwrap();
        let site = SkyServerSite::new_with_governor(
            sky,
            0,
            JobQueueConfig::default(),
            GovernorConfig {
                max_in_flight: 1,
                deadline: Duration::from_secs(30),
            },
        );
        failpoints::configure("executor.batch", FailAction::Delay(20));
        let server = site.serve(0).unwrap();
        let addr = server.addr();
        std::thread::scope(|scope| {
            for c in 0..4 {
                scope.spawn(move || {
                    let mut client = HttpClient::connect(addr).unwrap();
                    for r in 0..3 {
                        // Distinct queries past one monitor batch (256
                        // rows), so every request re-executes and crosses
                        // at least one delayed checkpoint.
                        let n = 300 + c * 3 + r;
                        let (status, body) = client
                            .get_with_backoff(
                                &format!("/api/v1/query?sql=select+top+{n}+objid+from+PhotoObj"),
                                50,
                                Duration::from_millis(50),
                            )
                            .unwrap();
                        assert_eq!(status, 200, "client {c} request {r}: {body}");
                    }
                });
            }
        });
        let stats = site.governor().stats();
        assert_eq!(stats.in_flight, 0);
        assert_eq!(stats.admitted, 12, "every request eventually got through");
        assert!(stats.shed > 0, "a 4x load over a cap of 1 must shed");
        server.stop();
    });
}
