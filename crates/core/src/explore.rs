//! The object explorer: the data behind the web site's drill-down page
//! ("By pointing to an object you can get a summary of its attributes from
//! the database, and one can also call up the whole record and explore all
//! the data about an object", Fig 2).

use crate::{SkyServer, SkyServerError};
use skyserver_schema::EXPLORE_URL;
use skyserver_storage::Value;

/// Everything the Explore page shows for one object.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ObjectSummary {
    pub obj_id: i64,
    pub ra: f64,
    pub dec: f64,
    pub obj_type: i64,
    pub flags: i64,
    /// `(column name, value)` pairs of the full PhotoObj record.
    pub attributes: Vec<(String, String)>,
    /// Neighbours within half an arcminute: `(objID, distance arcmin)`.
    pub neighbors: Vec<(i64, f64)>,
    /// The object's spectrum, if one was taken.
    pub spectrum: Option<SpectrumSummary>,
    /// Which external surveys match this object.
    pub cross_matches: Vec<String>,
    /// Link to this object on the web interface.
    pub url: String,
}

/// Summary of a spectrum for the explorer.
#[derive(Debug, Clone, serde::Serialize)]
pub struct SpectrumSummary {
    pub spec_obj_id: i64,
    pub plate_id: i64,
    pub z: f64,
    pub z_conf: f64,
    pub spec_class: i64,
    pub line_count: i64,
}

/// Assemble the explorer payload for an object, optionally pinned to a
/// published data release (every query reads that release's snapshot).
pub fn explore_object(
    server: &SkyServer,
    obj_id: i64,
    release: Option<&str>,
) -> Result<ObjectSummary, SkyServerError> {
    let query = |sql: &str| server.query_on(sql, release);
    let record = query(&format!("select * from PhotoObj where objID = {obj_id}"))?;
    if record.is_empty() {
        return Err(SkyServerError::NotFound(format!("object {obj_id}")));
    }
    let columns = record.columns.clone();
    let row = record.rows[0].clone();
    let get = |name: &str| -> Value {
        record
            .column_index(name)
            .and_then(|i| row.get(i).cloned())
            .unwrap_or(Value::Null)
    };
    let attributes: Vec<(String, String)> = columns
        .iter()
        .zip(&row)
        .map(|(c, v)| (c.clone(), v.to_string()))
        .collect();

    let neighbors_rs = query(&format!(
        "select neighborObjID, distance from Neighbors where objID = {obj_id} order by distance"
    ))?;
    let neighbors = neighbors_rs
        .rows
        .iter()
        .map(|r| (r[0].as_i64().unwrap_or(0), r[1].as_f64().unwrap_or(0.0)))
        .collect();

    let spec = query(&format!(
        "select specObjID, plateID, z, zConf, specClass from SpecObj where objID = {obj_id}"
    ))?;
    let spectrum = if spec.is_empty() {
        None
    } else {
        let spec_obj_id = spec.rows[0][0].as_i64().unwrap_or(0);
        let lines = query(&format!(
            "select count(*) from SpecLine where specObjID = {spec_obj_id}"
        ))?;
        Some(SpectrumSummary {
            spec_obj_id,
            plate_id: spec.rows[0][1].as_i64().unwrap_or(0),
            z: spec.rows[0][2].as_f64().unwrap_or(0.0),
            z_conf: spec.rows[0][3].as_f64().unwrap_or(0.0),
            spec_class: spec.rows[0][4].as_i64().unwrap_or(0),
            line_count: lines.scalar().and_then(Value::as_i64).unwrap_or(0),
        })
    };

    let mut cross_matches = Vec::new();
    for survey in ["USNO", "ROSAT", "FIRST"] {
        let n = query(&format!(
            "select count(*) from {survey} where objID = {obj_id}"
        ))?;
        if n.scalar().and_then(Value::as_i64).unwrap_or(0) > 0 {
            cross_matches.push(survey.to_string());
        }
    }

    Ok(ObjectSummary {
        obj_id,
        ra: get("ra").as_f64().unwrap_or(0.0),
        dec: get("dec").as_f64().unwrap_or(0.0),
        obj_type: get("type").as_i64().unwrap_or(0),
        flags: get("flags").as_i64().unwrap_or(0),
        attributes,
        neighbors,
        spectrum,
        cross_matches,
        url: format!("{EXPLORE_URL}{obj_id}"),
    })
}

#[cfg(test)]
mod tests {
    use crate::SkyServerBuilder;

    #[test]
    fn explore_returns_full_record() {
        let server = SkyServerBuilder::new().tiny().build().unwrap();
        // Pick an object that definitely has a spectrum so the drill-down is
        // maximal.
        let with_spec = server
            .query("select top 1 objID from SpecObj")
            .unwrap()
            .scalar()
            .unwrap()
            .as_i64()
            .unwrap();
        let summary = server.explore(with_spec).unwrap();
        assert_eq!(summary.obj_id, with_spec);
        assert_eq!(summary.attributes.len(), 54);
        assert!(summary.url.ends_with(&with_spec.to_string()));
        let spectrum = summary.spectrum.expect("targeted object has a spectrum");
        assert!(spectrum.line_count > 0);
    }

    #[test]
    fn explore_missing_object_errors() {
        let server = SkyServerBuilder::new().tiny().build().unwrap();
        assert!(server.explore(-1).is_err());
    }
}
