//! # skyserver
//!
//! A from-scratch Rust reproduction of **"The SDSS SkyServer: Public Access
//! to the Sloan Digital Sky Survey Data"** (Szalay, Gray, Thakar, Kunszt,
//! Malik, Raddick, Stoughton, vandenBerg — SIGMOD 2002).
//!
//! The crate ties the substrates together into the system the paper
//! describes:
//!
//! * [`skyserver_skygen`] — a deterministic synthetic Sloan survey (the
//!   public Early Data Release stand-in),
//! * [`skyserver_storage`] + [`skyserver_sql`] — the relational engine and
//!   SQL dialect (the SQL Server stand-in),
//! * [`skyserver_htm`] — the Hierarchical Triangular Mesh spatial index,
//! * [`skyserver_schema`] — the photographic/spectrographic snowflake
//!   schema, views, covering indices, foreign keys and astronomy UDFs,
//! * [`skyserver_loader`] — the CSV load pipeline with `loadEvents`
//!   journaling, UNDO, the `Neighbors` materialised view and the image
//!   pyramid.
//!
//! ```no_run
//! use skyserver::SkyServerBuilder;
//!
//! // Build a Personal-SkyServer-scale database (generates + loads data).
//! let mut sky = SkyServerBuilder::new().build().unwrap();
//!
//! // Query 1 of the paper: galaxies without saturated pixels near a point.
//! let outcome = sky.execute(
//!     "declare @saturated bigint;
//!      set @saturated = dbo.fPhotoFlags('saturated');
//!      select G.objID, GN.distance
//!      from Galaxy as G
//!      join fGetNearbyObjEq(181.0, -0.8, 1) as GN on G.objID = GN.objID
//!      where (G.flags & @saturated) = 0
//!      order by distance",
//! ).unwrap();
//! println!("{} unsaturated galaxies nearby", outcome.result.len());
//! ```

#![forbid(unsafe_code)]

pub mod builder;
pub mod explore;

pub use builder::{SkyServer, SkyServerBuilder};
pub use explore::{ObjectSummary, SpectrumSummary};

// Re-export the sub-crates under stable names so downstream users need only
// one dependency.
pub use skyserver_htm as htm;
pub use skyserver_loader as loader;
pub use skyserver_schema as schema;
pub use skyserver_skygen as skygen;
pub use skyserver_sql as sql;
pub use skyserver_storage as storage;

// Re-export the most common types at the top level.
pub use skyserver_loader::LoadReport;
pub use skyserver_skygen::{Survey, SurveyConfig};
pub use skyserver_sql::{
    PlanClass, QueryLimits, QueryMonitor, ResultSet, SqlError, StatementOutcome,
};
pub use skyserver_storage::{DiskConfig, HardwareProfile, IoSimulator, Value};

/// Errors from the high-level SkyServer API.
#[derive(Debug, Clone, PartialEq)]
pub enum SkyServerError {
    /// Survey generation failed (invalid configuration).
    Generation(String),
    /// Storage-level failure.
    Storage(skyserver_storage::StorageError),
    /// SQL failure (parse, plan, execute or limit).
    Sql(SqlError),
    /// A requested entity does not exist.
    NotFound(String),
}

impl SkyServerError {
    /// A stable, machine-readable error code for this error class, used by
    /// the web tier's `/api/v1` error envelope.  SQL errors delegate to
    /// [`SqlError::code`]; the other classes have their own codes.
    pub fn code(&self) -> &'static str {
        match self {
            SkyServerError::Generation(_) => "internal_error",
            SkyServerError::Storage(_) => "storage_error",
            SkyServerError::Sql(e) => e.code(),
            SkyServerError::NotFound(_) => "not_found",
        }
    }
}

impl std::fmt::Display for SkyServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SkyServerError::Generation(m) => write!(f, "survey generation failed: {m}"),
            SkyServerError::Storage(e) => write!(f, "storage error: {e}"),
            SkyServerError::Sql(e) => write!(f, "{e}"),
            SkyServerError::NotFound(what) => write!(f, "not found: {what}"),
        }
    }
}

impl std::error::Error for SkyServerError {}

impl From<skyserver_storage::StorageError> for SkyServerError {
    fn from(e: skyserver_storage::StorageError) -> Self {
        SkyServerError::Storage(e)
    }
}

impl From<SqlError> for SkyServerError {
    fn from(e: SqlError) -> Self {
        SkyServerError::Sql(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_conversions() {
        let e: SkyServerError = SqlError::Parse("boom".into()).into();
        assert!(e.to_string().contains("boom"));
        let e: SkyServerError = skyserver_storage::StorageError::UnknownTable("x".into()).into();
        assert!(e.to_string().contains("x"));
        assert!(SkyServerError::NotFound("object 7".into())
            .to_string()
            .contains("object 7"));
    }

    #[test]
    fn error_codes_delegate_to_the_sql_taxonomy() {
        let e: SkyServerError = SqlError::Parse("boom".into()).into();
        assert_eq!(e.code(), "sql_parse_error");
        let e: SkyServerError = SqlError::ReadOnly("drop table".into()).into();
        assert_eq!(e.code(), "read_only");
        assert_eq!(SkyServerError::NotFound("x".into()).code(), "not_found");
    }
}
