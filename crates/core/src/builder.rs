//! Building a SkyServer instance: generate → install schema → load.

use crate::explore::ObjectSummary;
use crate::SkyServerError;
use skyserver_loader::{load_survey, LoadReport};
use skyserver_schema::{create_engine, describe_schema, SchemaDescription};
use skyserver_skygen::{Survey, SurveyConfig, SurveyCounts};
use skyserver_sql::{PlanClass, QueryLimits, ResultSet, SqlEngine, StatementOutcome};
use skyserver_storage::{DiskConfig, HardwareProfile, IoSimulator, TableSummary};

/// Builder for a [`SkyServer`].
#[derive(Debug, Clone)]
pub struct SkyServerBuilder {
    config: SurveyConfig,
    hardware: IoSimulator,
    database_name: String,
}

impl Default for SkyServerBuilder {
    fn default() -> Self {
        SkyServerBuilder {
            config: SurveyConfig::personal_skyserver(),
            hardware: IoSimulator::skyserver_production(),
            database_name: "SkyServer".to_string(),
        }
    }
}

impl SkyServerBuilder {
    /// Start from the default (Personal SkyServer scale) configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Use a specific survey configuration.
    pub fn with_config(mut self, config: SurveyConfig) -> Self {
        self.config = config;
        self
    }

    /// Use the tiny test-scale survey.
    pub fn tiny(mut self) -> Self {
        self.config = SurveyConfig::tiny();
        self
    }

    /// Model a different hardware configuration for simulated timings.
    pub fn with_hardware(mut self, profile: HardwareProfile, disks: DiskConfig) -> Self {
        self.hardware = IoSimulator::new(profile, disks);
        self
    }

    /// Name the database.
    pub fn with_database_name(mut self, name: impl Into<String>) -> Self {
        self.database_name = name.into();
        self
    }

    /// Generate the survey, install the schema and load everything.
    pub fn build(self) -> Result<SkyServer, SkyServerError> {
        let survey = Survey::generate(self.config.clone()).map_err(SkyServerError::Generation)?;
        let mut engine = create_engine(&self.database_name)?;
        engine.set_simulator(self.hardware);
        let load_report = load_survey(&mut engine, &survey)?;
        // The freshly loaded catalog is the first public data release.
        // Publishing is copy-on-write metadata only, so this is cheap.
        engine.publish_release("dr1")?;
        Ok(SkyServer {
            engine,
            config: self.config,
            counts: survey.counts(),
            primary_fraction: survey.primary_fraction(),
            paper_scale_factor: survey.paper_scale_factor(),
            load_report,
        })
    }
}

/// A loaded SkyServer: the public-facing object of this crate.
pub struct SkyServer {
    engine: SqlEngine,
    config: SurveyConfig,
    counts: SurveyCounts,
    primary_fraction: f64,
    paper_scale_factor: f64,
    load_report: LoadReport,
}

impl SkyServer {
    /// Build with defaults (Personal-SkyServer scale).
    pub fn build_default() -> Result<SkyServer, SkyServerError> {
        SkyServerBuilder::new().build()
    }

    /// The survey configuration the server was built from.
    pub fn config(&self) -> &SurveyConfig {
        &self.config
    }

    /// Generator-side row counts.
    pub fn counts(&self) -> &SurveyCounts {
        &self.counts
    }

    /// Fraction of photo objects flagged primary.
    pub fn primary_fraction(&self) -> f64 {
        self.primary_fraction
    }

    /// Multiplier from this database to the paper's 14 M-object release.
    pub fn paper_scale_factor(&self) -> f64 {
        self.paper_scale_factor
    }

    /// The load pipeline's report.
    pub fn load_report(&self) -> &LoadReport {
        &self.load_report
    }

    /// Borrow the SQL engine (advanced use: DDL, loading more data, ...).
    pub fn engine(&self) -> &SqlEngine {
        &self.engine
    }

    /// Mutably borrow the SQL engine.
    pub fn engine_mut(&mut self) -> &mut SqlEngine {
        &mut self.engine
    }

    /// Run a SQL script with **no** limits (the private / collaboration
    /// interface) and return the last statement's outcome.  This is the
    /// exclusive path: DDL, DML, `SELECT ... INTO` and persistent session
    /// variables all work here.
    pub fn execute(&mut self, sql: &str) -> Result<StatementOutcome, SkyServerError> {
        Ok(self.engine.execute(sql, QueryLimits::UNLIMITED)?)
    }

    /// Run a SQL script under the public web-interface limits
    /// (1,000 rows / 30 seconds, §4 of the paper).  Takes `&self`: public
    /// queries run on the shared read path, so any number of web requests
    /// can execute concurrently.  Write statements are rejected with a
    /// read-only error — the public interface never mutates the catalog.
    pub fn execute_public(&self, sql: &str) -> Result<StatementOutcome, SkyServerError> {
        Ok(self.engine.execute_read(sql, QueryLimits::PUBLIC)?)
    }

    /// [`Self::execute_public`] with a [`skyserver_sql::QueryMonitor`]
    /// attached — the web tier's entry point.  The monitor carries the
    /// request deadline into the executor's per-batch checkpoint and
    /// observes the memory gauge, so interactive queries degrade into
    /// structured errors instead of runaway scans.
    pub fn execute_public_with(
        &self,
        sql: &str,
        monitor: &skyserver_sql::QueryMonitor,
    ) -> Result<StatementOutcome, SkyServerError> {
        self.execute_public_on(sql, monitor, None)
    }

    /// [`Self::execute_public_with`] pinned to a published data release —
    /// the engine face of the web tier's `?release=` parameter.  `None`
    /// reads the live head; `Some("dr1")` reads that release's snapshot.
    /// An unknown release fails with [`skyserver_sql::SqlError::UnknownRelease`].
    pub fn execute_public_on(
        &self,
        sql: &str,
        monitor: &skyserver_sql::QueryMonitor,
        release: Option<&str>,
    ) -> Result<StatementOutcome, SkyServerError> {
        let mut outcomes =
            self.engine
                .execute_read_script_on(sql, QueryLimits::PUBLIC, Some(monitor), release)?;
        outcomes.pop().ok_or_else(|| {
            SkyServerError::Sql(skyserver_sql::SqlError::Parse("empty script".into()))
        })
    }

    /// Convenience: run a read-only query without limits and return just
    /// the rows.  Takes `&self` (shared read path).
    pub fn query(&self, sql: &str) -> Result<ResultSet, SkyServerError> {
        Ok(self.engine.query(sql)?)
    }

    /// [`Self::query`] pinned to a published data release (`None` = head).
    pub fn query_on(&self, sql: &str, release: Option<&str>) -> Result<ResultSet, SkyServerError> {
        Ok(self.engine.query_on(sql, release)?)
    }

    /// Run a read-only script with a [`skyserver_sql::QueryMonitor`]
    /// attached — the batch-job tier's entry point.  Takes `&self` (shared
    /// read path), so batch scans overlap freely with interactive queries;
    /// the monitor observes rows-processed progress and can cancel the
    /// query mid-scan or pace it to cede CPU to interactive traffic.
    pub fn execute_batch(
        &self,
        sql: &str,
        limits: QueryLimits,
        monitor: &skyserver_sql::QueryMonitor,
    ) -> Result<StatementOutcome, SkyServerError> {
        self.execute_batch_on(sql, limits, monitor, None)
    }

    /// [`Self::execute_batch`] pinned to a published data release.  A batch
    /// job launched with a pin keeps reading that release's snapshot for its
    /// whole run, even if new releases are published while it scans.
    pub fn execute_batch_on(
        &self,
        sql: &str,
        limits: QueryLimits,
        monitor: &skyserver_sql::QueryMonitor,
        release: Option<&str>,
    ) -> Result<StatementOutcome, SkyServerError> {
        let mut outcomes =
            self.engine
                .execute_read_script_on(sql, limits, Some(monitor), release)?;
        outcomes.pop().ok_or_else(|| {
            SkyServerError::Sql(skyserver_sql::SqlError::Parse("empty script".into()))
        })
    }

    /// Publish the current head catalog as release `name`.  Copy-on-write:
    /// the snapshot shares all segments and indexes with the head, so only
    /// catalog metadata is copied.  Duplicate names are refused.
    pub fn publish_release(&mut self, name: &str) -> Result<(), SkyServerError> {
        Ok(self.engine.publish_release(name)?)
    }

    /// Published release names, oldest first.
    pub fn release_names(&self) -> Vec<String> {
        self.engine.release_names()
    }

    /// Metadata for every published release (name, tables, rows, segments).
    pub fn release_infos(&self) -> Vec<skyserver_storage::ReleaseInfo> {
        self.engine.release_infos()
    }

    /// Per-table segment-level diff between two published releases.
    pub fn release_diff(
        &self,
        from: &str,
        to: &str,
    ) -> Result<skyserver_storage::ReleaseDiff, SkyServerError> {
        Ok(self.engine.release_diff(from, to)?)
    }

    /// Clone this server copy-on-write: the fork shares every immutable
    /// segment, index and published release with the original, so this is
    /// metadata-cost only.  Writes to either side never affect the other —
    /// the primitive behind atomic admin publishes in the web tier.
    pub fn fork(&self) -> SkyServer {
        SkyServer {
            engine: self.engine.fork(),
            config: self.config.clone(),
            counts: self.counts.clone(),
            primary_fraction: self.primary_fraction,
            paper_scale_factor: self.paper_scale_factor,
            load_report: self.load_report.clone(),
        }
    }

    /// Render the plan of a SELECT.
    pub fn explain(&self, sql: &str) -> Result<String, SkyServerError> {
        Ok(self.engine.explain(sql)?)
    }

    /// The plan class (index / scan / join-scan) of a SELECT -- the buckets
    /// Figure 13 groups queries into.
    pub fn plan_class(&self, sql: &str) -> Result<PlanClass, SkyServerError> {
        Ok(self.engine.plan_class(sql)?)
    }

    /// The plan class plus the optimizer rules that fired for a SELECT.
    pub fn plan_summary(&self, sql: &str) -> Result<skyserver_sql::PlanSummary, SkyServerError> {
        Ok(self.engine.plan_summary(sql)?)
    }

    /// A snapshot of the SQL engine's cumulative execution counters.
    pub fn engine_stats(&self) -> skyserver_sql::EngineStats {
        self.engine.counters()
    }

    /// Per-table sizes (rows / data bytes / index bytes): the live data
    /// behind the paper's Table 1.
    pub fn table_summaries(&self) -> Vec<TableSummary> {
        self.engine.db().summaries()
    }

    /// Schema-browser metadata (the SkyServerQA object browser payload).
    pub fn schema_description(&self) -> SchemaDescription {
        describe_schema(self.engine.db(), self.engine.functions())
    }

    /// Objects within `radius_arcmin` of `(ra, dec)`, nearest first (the
    /// `fGetNearbyObjEq` function exposed as an API).
    pub fn nearby_objects(
        &self,
        ra: f64,
        dec: f64,
        radius_arcmin: f64,
    ) -> Result<ResultSet, SkyServerError> {
        self.nearby_objects_on(ra, dec, radius_arcmin, None)
    }

    /// [`Self::nearby_objects`] pinned to a published data release.
    pub fn nearby_objects_on(
        &self,
        ra: f64,
        dec: f64,
        radius_arcmin: f64,
        release: Option<&str>,
    ) -> Result<ResultSet, SkyServerError> {
        self.query_on(
            &format!(
                "select objID, type, distance from fGetNearbyObjEq({ra}, {dec}, {radius_arcmin})"
            ),
            release,
        )
    }

    /// Full drill-down for one object: attributes, neighbours, spectrum and
    /// cross-matches (the web "Explore" page payload).
    pub fn explore(&self, obj_id: i64) -> Result<ObjectSummary, SkyServerError> {
        crate::explore::explore_object(self, obj_id, None)
    }

    /// [`Self::explore`] pinned to a published data release: every query
    /// the drill-down issues reads that release's snapshot.
    pub fn explore_on(
        &self,
        obj_id: i64,
        release: Option<&str>,
    ) -> Result<ObjectSummary, SkyServerError> {
        crate::explore::explore_object(self, obj_id, release)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server() -> SkyServer {
        SkyServerBuilder::new().tiny().build().unwrap()
    }

    #[test]
    fn build_and_query() {
        let s = server();
        let n = s.query("select count(*) from PhotoObj").unwrap();
        assert_eq!(
            n.scalar().unwrap().as_i64().unwrap() as usize,
            s.counts().photo_obj
        );
        assert!(s.load_report().is_clean());
        assert!(s.paper_scale_factor() > 1000.0);
    }

    #[test]
    fn public_limits_apply() {
        let mut s = server();
        let outcome = s.execute_public("select objID from PhotoObj").unwrap();
        assert_eq!(outcome.result.len(), 1000);
        assert!(outcome.result.truncated);
        let unlimited = s.execute("select objID from PhotoObj").unwrap();
        assert!(unlimited.result.len() > 1000);
    }

    #[test]
    fn table_summaries_expose_table1_data() {
        let s = server();
        let summaries = s.table_summaries();
        let photo = summaries.iter().find(|t| t.name == "PhotoObj").unwrap();
        assert!(photo.rows > 0);
        assert!(
            photo.data_bytes > photo.rows * 100,
            "photoObj rows are hundreds of bytes"
        );
        assert!(photo.index_bytes > 0);
        let neighbors = summaries.iter().find(|t| t.name == "Neighbors").unwrap();
        assert!(neighbors.avg_row_bytes < photo.avg_row_bytes);
    }

    #[test]
    fn build_publishes_dr1_and_fork_is_isolated() {
        let s = server();
        assert_eq!(s.release_names(), vec!["dr1".to_string()]);
        let head = s.query("select count(*) from PhotoObj").unwrap();
        let pinned = s.query("select count(*) from PhotoObj as of dr1").unwrap();
        assert_eq!(head.rows, pinned.rows);
        // Publish a second release off a fork and check the diff API.
        let mut next = s.fork();
        next.execute("delete from PhotoObj where objID = 1000001")
            .unwrap();
        next.publish_release("dr2").unwrap();
        assert_eq!(
            next.release_names(),
            vec!["dr1".to_string(), "dr2".to_string()]
        );
        // The original server never saw dr2 or the delete.
        assert_eq!(s.release_names(), vec!["dr1".to_string()]);
        let still = s
            .query("select count(*) from PhotoObj where objID = 1000001")
            .unwrap();
        assert_eq!(still.scalar().unwrap().as_i64(), Some(1));
        let diff = next.release_diff("dr1", "dr2").unwrap();
        assert!(diff.tables.iter().any(|t| t.table == "PhotoObj"));
        let infos = next.release_infos();
        assert_eq!(infos.len(), 2);
        assert!(infos[0].rows > 0);
    }

    #[test]
    fn nearby_and_plan_class() {
        let s = server();
        let nearby = s.nearby_objects(181.0, -0.8, 30.0).unwrap();
        let d = nearby.column_values("distance");
        for w in d.windows(2) {
            assert!(w[0] <= w[1]);
        }
        let class = s
            .plan_class("select count(*) from PhotoObj where rowv > 100")
            .unwrap();
        assert_eq!(class, PlanClass::Scan);
        let class = s
            .plan_class("select * from PhotoObj where objID = 1000001")
            .unwrap();
        assert_eq!(class, PlanClass::IndexSeek);
    }
}
