//! Keeps `docs/QUERIES.md` honest: the cookbook documents a plan class and
//! the fired optimizer rules for every data-mining query; this test parses
//! the document, runs each query against a real (tiny) SkyServer, and
//! asserts the documentation matches what the optimizer actually does.

use skyserver::SkyServerBuilder;
use skyserver_queries::runner::run_query;
use skyserver_queries::twenty::twenty_queries;
use std::collections::HashMap;

/// A query's documented plan facts, parsed from `docs/QUERIES.md`.
#[derive(Debug, PartialEq)]
struct Documented {
    plan_class: String,
    rules_fired: Vec<String>,
}

/// Parse the cookbook: each query section starts `### Qn — title` and is
/// followed by a `**Plan class:** \`X\` · **Rules fired:** \`a\`, \`b\``
/// block (possibly wrapped across lines).
fn parse_queries_doc(text: &str) -> HashMap<String, Documented> {
    let mut out = HashMap::new();
    let mut current_id: Option<String> = None;
    let mut pending: String = String::new();
    for line in text.lines() {
        if let Some(heading) = line.strip_prefix("### ") {
            current_id = heading
                .split_whitespace()
                .next()
                .map(|id| id.trim_end_matches('—').to_string());
            pending.clear();
            continue;
        }
        let Some(id) = &current_id else { continue };
        if line.contains("**Plan class:**") || !pending.is_empty() {
            pending.push_str(line);
            pending.push(' ');
        }
        // The metadata block ends at the first blank line after it began.
        if !pending.is_empty() && line.trim().is_empty() {
            let backticked: Vec<String> = pending
                .split('`')
                .skip(1)
                .step_by(2)
                .map(str::to_string)
                .collect();
            let (class, rules) = backticked
                .split_first()
                .expect("plan-class block lists at least the class");
            out.insert(
                id.clone(),
                Documented {
                    plan_class: class.clone(),
                    rules_fired: rules.to_vec(),
                },
            );
            pending.clear();
            current_id = None;
        }
    }
    out
}

#[test]
fn cookbook_plan_classes_match_the_optimizer() {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../docs/QUERIES.md"
    ))
    .expect("docs/QUERIES.md exists");
    let documented = parse_queries_doc(&text);
    let queries = twenty_queries();
    assert_eq!(
        documented.len(),
        queries.len(),
        "the cookbook documents every query exactly once (found: {:?})",
        {
            let mut ids: Vec<&String> = documented.keys().collect();
            ids.sort();
            ids
        }
    );

    let mut sky = SkyServerBuilder::new().tiny().build().unwrap();
    for query in &queries {
        let doc = documented
            .get(query.id)
            .unwrap_or_else(|| panic!("{} missing from docs/QUERIES.md", query.id));
        // Run the query for real (not just plan it): the report carries the
        // chosen plan class, the fired rules, and any invariant violations.
        let report =
            run_query(&mut sky, query).unwrap_or_else(|e| panic!("{} does not run: {e}", query.id));
        assert!(
            report.violations.is_empty(),
            "{}: invariants violated: {:?}",
            query.id,
            report.violations
        );
        assert_eq!(
            doc.plan_class,
            format!("{:?}", report.plan_class),
            "{}: docs/QUERIES.md documents plan class `{}`, the optimizer chose `{:?}`",
            query.id,
            doc.plan_class,
            report.plan_class
        );
        assert_eq!(
            doc.rules_fired, report.rules_fired,
            "{}: docs/QUERIES.md documents different fired rules than the optimizer reports",
            query.id
        );
        // The documented class also matches the spec the Figure 13 harness
        // asserts, so code, spec and prose cannot drift apart pairwise.
        assert_eq!(
            doc.plan_class,
            format!("{:?}", query.expected_class),
            "{}: docs/QUERIES.md disagrees with the QuerySpec expected class",
            query.id
        );
    }
}
