//! Every documented query passes the static plan verifier with zero
//! findings — both through the structured [`SqlEngine::verify`] API and
//! through the user-facing `EXPLAIN VERIFY` statement.

use skyserver::SkyServerBuilder;
use skyserver_queries::twenty::twenty_queries;

#[test]
fn the_documented_queries_verify_clean() {
    let sky = SkyServerBuilder::new().tiny().build().unwrap();
    for query in &twenty_queries() {
        let report = sky
            .engine()
            .verify(&query.sql)
            .unwrap_or_else(|e| panic!("{} does not plan: {e}", query.id));
        assert!(
            report.is_clean(),
            "{}: plan verifier found violations: {}",
            query.id,
            report.render_violations()
        );
        assert!(
            report.checks_run > 0,
            "{}: verifier ran no checks",
            query.id
        );
    }
}

#[test]
fn explain_verify_reports_success_for_the_documented_queries() {
    let sky = SkyServerBuilder::new().tiny().build().unwrap();
    for query in &twenty_queries() {
        // Rewrite the script so its SELECT runs under EXPLAIN VERIFY; any
        // DECLARE/SET prelude stays intact.
        let script: Vec<String> = query
            .sql
            .split(';')
            .map(str::trim)
            .filter(|frag| !frag.is_empty())
            .map(|frag| {
                let starts_select = frag
                    .split_whitespace()
                    .next()
                    .is_some_and(|w| w.eq_ignore_ascii_case("select"));
                if starts_select {
                    format!("explain verify {frag}")
                } else {
                    frag.to_string()
                }
            })
            .collect();
        let result = sky
            .engine()
            .query(&script.join(";\n"))
            .unwrap_or_else(|e| panic!("{}: EXPLAIN VERIFY failed: {e}", query.id));
        assert_eq!(
            result.columns,
            vec!["plan_verify".to_string()],
            "{}: unexpected EXPLAIN VERIFY shape",
            query.id
        );
        let cell = result.rows[0][0].to_string();
        assert!(
            cell.starts_with("plan verified:"),
            "{}: EXPLAIN VERIFY reported: {cell}",
            query.id
        );
    }
}
