//! The 15 "astronomer" queries (§11).
//!
//! "our actual query set includes 15 additional queries posed by astronomers
//! using the Objectivity archive ... Those 15 queries are much simpler and
//! run more quickly than most of the original 20 queries."  They are the
//! kind of extract-a-subset-and-analyse-at-home queries normal astronomers
//! write.

use crate::spec::{Invariant, QueryFamily, QuerySpec};
use crate::twenty::{FOOTPRINT_DEC, FOOTPRINT_RA};
use skyserver_sql::PlanClass;

fn a(
    id: &'static str,
    title: &'static str,
    sql: &str,
    expected_class: PlanClass,
    invariants: Vec<Invariant>,
) -> QuerySpec {
    QuerySpec {
        id,
        title,
        sql: sql.to_string(),
        family: QueryFamily::Astronomer,
        expected_class,
        invariants,
        adaptation: "Simple extraction query; runs unchanged on the synthetic catalog.",
    }
}

/// The fifteen astronomer queries.
pub fn astronomer_queries() -> Vec<QuerySpec> {
    vec![
        a(
            "A1",
            "How many objects of each type are there?",
            "select type, count(*) as n from PhotoObj group by type order by n desc",
            PlanClass::IndexSeek,
            vec![Invariant::NonEmpty, Invariant::AtMostRows(10)],
        ),
        a(
            "A2",
            "The ten brightest galaxies",
            "select top 10 objID, modelMag_r from Galaxy order by modelMag_r",
            PlanClass::IndexSeek,
            vec![
                Invariant::AtMostRows(10),
                Invariant::SortedAscending("modelMag_r"),
            ],
        ),
        a(
            "A3",
            "Everything about one object",
            "select * from PhotoObj where objID = 1000001",
            PlanClass::IndexSeek,
            vec![Invariant::AtMostRows(1)],
        ),
        a(
            "A4",
            "All objects in a small rectangle of sky",
            &format!(
                "select objID, ra, dec, type from fGetObjFromRectEq({}, {}, {}, {})",
                FOOTPRINT_RA - 0.2,
                FOOTPRINT_RA + 0.2,
                FOOTPRINT_DEC - 0.2,
                FOOTPRINT_DEC + 0.2
            ),
            PlanClass::FunctionOnly,
            vec![Invariant::NonEmpty],
        ),
        a(
            "A5",
            "How many spectra of each class?",
            "select specClass, count(*) as n from SpecObj group by specClass order by n desc",
            PlanClass::IndexSeek,
            vec![Invariant::NonEmpty],
        ),
        a(
            "A6",
            "Redshift histogram of galaxies with spectra",
            "select floor(z * 10) as zbin, count(*) as n from SpecObj \
             where specClass = 2 group by floor(z * 10) order by zbin",
            PlanClass::IndexSeek,
            vec![Invariant::MayBeEmpty, Invariant::SortedAscending("zbin")],
        ),
        a(
            "A7",
            "Mean colours of stars and galaxies",
            "select type, avg(modelMag_g - modelMag_r) as gr, avg(modelMag_u - modelMag_g) as ug \
             from PhotoPrimary group by type",
            PlanClass::IndexSeek,
            vec![Invariant::NonEmpty],
        ),
        a(
            "A8",
            "How many objects have saturated pixels?",
            "declare @saturated bigint;
             set @saturated = dbo.fPhotoFlags('saturated');
             select count(*) from PhotoObj where (flags & @saturated) > 0",
            PlanClass::IndexSeek,
            vec![Invariant::ScalarAtLeast(0)],
        ),
        a(
            "A9",
            "The ten highest-redshift quasars",
            "select top 10 specObjID, z from SpecQso order by z desc",
            PlanClass::Scan,
            vec![Invariant::AtMostRows(10)],
        ),
        a(
            "A10",
            "The object nearest to a given position",
            &format!(
                "select objID, distance from fGetNearestObjEq({FOOTPRINT_RA}, {FOOTPRINT_DEC}, 30)"
            ),
            PlanClass::FunctionOnly,
            vec![Invariant::AtMostRows(1)],
        ),
        a(
            "A11",
            "The ten most crowded fields",
            "select fieldID, count(*) as n from PhotoObj group by fieldID order by n desc",
            PlanClass::IndexSeek,
            vec![Invariant::NonEmpty],
        ),
        a(
            "A12",
            "Objects with a tight USNO astrometric match",
            "select U.objID, U.delta from USNO U where U.delta < 0.5",
            PlanClass::Scan,
            vec![
                Invariant::MayBeEmpty,
                Invariant::ColumnInRange("delta", 0.0, 0.5),
            ],
        ),
        a(
            "A13",
            "All spectral lines of one spectrum (the paper's specObjID example)",
            "select * from SpecLine where specObjID = 3000001",
            PlanClass::IndexSeek,
            vec![Invariant::MayBeEmpty, Invariant::AtMostRows(60)],
        ),
        a(
            "A14",
            "Plates and how many spectra each produced",
            "select P.plateID, P.nFibers, count(*) as spectra
             from Plate P join SpecObj S on S.plateID = P.plateID
             group by P.plateID, P.nFibers order by P.plateID",
            PlanClass::JoinScan,
            vec![Invariant::NonEmpty],
        ),
        a(
            "A15",
            "How much of the catalog is duplicate (secondary) detections?",
            "declare @secondary bigint;
             set @secondary = dbo.fPhotoFlags('secondary');
             select count(*) from PhotoObj where (flags & @secondary) > 0",
            PlanClass::IndexSeek,
            vec![Invariant::ScalarAtLeast(1)],
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifteen_queries_defined_and_parse() {
        let queries = astronomer_queries();
        assert_eq!(queries.len(), 15);
        for q in &queries {
            assert_eq!(q.family, QueryFamily::Astronomer);
            skyserver_sql::parse_script(&q.sql)
                .unwrap_or_else(|e| panic!("{} does not parse: {e}", q.id));
        }
    }
}
