//! The query timing harness behind Figure 13.
//!
//! For every query it records: rows returned, measured wall-clock and
//! CPU-proxy time on the synthetic data, the plan class, and the
//! I/O-model projection of the same access pattern onto the paper's
//! hardware at the paper's 14 M-object scale (the axis Figure 13 actually
//! plots).

use crate::spec::QuerySpec;
use skyserver::{SkyServer, SkyServerError};
use skyserver_sql::PlanClass;

/// Timing/result report for one query.
#[derive(Debug, Clone, serde::Serialize)]
pub struct QueryReport {
    pub id: String,
    pub title: String,
    pub rows: usize,
    /// Measured wall-clock seconds on the synthetic database.
    pub wall_seconds: f64,
    /// Simulated CPU seconds at the current data scale.
    pub sim_cpu_seconds: f64,
    /// Simulated elapsed seconds at the current data scale.
    pub sim_elapsed_seconds: f64,
    /// Simulated CPU seconds projected to the paper's 14 M-row scale.
    pub paper_cpu_seconds: f64,
    /// Simulated elapsed seconds projected to the paper's 14 M-row scale.
    pub paper_elapsed_seconds: f64,
    /// The plan class the optimizer chose.
    pub plan_class: PlanClass,
    /// The optimizer rules that produced the plan, in pipeline order.
    pub rules_fired: Vec<String>,
    /// The optimizer's estimated result cardinality (the statistics
    /// model's `est_rows` for the whole plan; compare with `rows` for the
    /// query's q-error).
    pub est_rows: Option<u64>,
    /// Violated invariants (empty = the query behaved as documented).
    pub violations: Vec<String>,
    /// Heap rows read by full scans (raw counter; `BENCH_SQL.json` tracks
    /// this so executor refactors cannot silently change the access
    /// pattern).
    pub rows_scanned: u64,
    /// Rows read through indices (seeks and covering scans).
    pub rows_from_index: u64,
    /// Predicate evaluations performed.
    pub predicates_evaluated: u64,
    /// Heap bytes read by full scans (per-column: only the columns the
    /// plan touches are charged).
    pub bytes_scanned: u64,
    /// Whole segments skipped by zone-map pruning.
    pub segments_pruned: u64,
    /// Row batches the vectorized heap scans processed.
    pub batches_processed: u64,
}

/// Run one query and build its report.
pub fn run_query(server: &mut SkyServer, query: &QuerySpec) -> Result<QueryReport, SkyServerError> {
    let summary = server.plan_summary(&query.sql)?;
    let plan_class = summary.class;
    let outcome = server.execute(&query.sql)?;
    let mut violations = Vec::new();
    for invariant in &query.invariants {
        if let Err(v) = invariant.check(&outcome.result) {
            violations.push(v);
        }
    }
    if plan_class != query.expected_class {
        violations.push(format!(
            "expected plan class {}, optimizer chose {}",
            query.expected_class, plan_class
        ));
    }
    let stats = &outcome.stats;
    let paper = stats.simulated_at_paper_scale.unwrap_or(stats.simulated);
    Ok(QueryReport {
        id: query.id.to_string(),
        title: query.title.to_string(),
        rows: outcome.result.len(),
        wall_seconds: stats.wall_seconds,
        sim_cpu_seconds: stats.simulated.cpu_seconds,
        sim_elapsed_seconds: stats.simulated.elapsed_seconds,
        paper_cpu_seconds: paper.cpu_seconds,
        paper_elapsed_seconds: paper.elapsed_seconds,
        plan_class,
        rules_fired: summary.rules_fired.iter().map(|r| r.to_string()).collect(),
        est_rows: summary.est_rows,
        violations,
        rows_scanned: stats.stats.rows_scanned,
        rows_from_index: stats.stats.rows_from_index,
        predicates_evaluated: stats.stats.predicates_evaluated,
        bytes_scanned: stats.stats.bytes_scanned,
        segments_pruned: stats.stats.segments_pruned,
        batches_processed: stats.stats.batches_processed,
    })
}

/// Run a whole query family and return the reports in order.
pub fn run_all(
    server: &mut SkyServer,
    queries: &[QuerySpec],
) -> Result<Vec<QueryReport>, SkyServerError> {
    queries.iter().map(|q| run_query(server, q)).collect()
}

/// Render reports as the Figure 13 style table (one row per query, CPU and
/// elapsed seconds at paper scale, sorted the way the figure is: fastest
/// first).
pub fn render_figure13(reports: &[QueryReport]) -> String {
    let mut sorted: Vec<&QueryReport> = reports.iter().collect();
    sorted.sort_by(|a, b| a.paper_elapsed_seconds.total_cmp(&b.paper_elapsed_seconds));
    let mut out = String::from(
        "query  class       rows    cpu_s(paper)  elapsed_s(paper)  wall_s(measured)\n",
    );
    for r in sorted {
        out.push_str(&format!(
            "{:<6} {:<10} {:>6}  {:>12.2}  {:>16.2}  {:>16.4}\n",
            r.id,
            r.plan_class.to_string(),
            r.rows,
            r.paper_cpu_seconds,
            r.paper_elapsed_seconds,
            r.wall_seconds
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::twenty::twenty_queries;
    use skyserver::SkyServerBuilder;

    #[test]
    fn run_a_single_query_produces_a_report() {
        let mut server = SkyServerBuilder::new().tiny().build().unwrap();
        let queries = twenty_queries();
        let q15 = queries.iter().find(|q| q.id == "Q15A").unwrap();
        let report = run_query(&mut server, q15).unwrap();
        assert!(report.rows > 0);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert_eq!(report.plan_class, PlanClass::Scan);
        assert!(
            report.rules_fired.iter().any(|r| r == "predicate_pushdown"),
            "rules: {:?}",
            report.rules_fired
        );
        assert!(report.paper_elapsed_seconds > report.sim_elapsed_seconds);
        let rendered = render_figure13(&[report]);
        assert!(rendered.contains("Q15A"));
    }
}
