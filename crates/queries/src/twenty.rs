//! The 20 data-mining queries (Q1..Q20) of Szalay/Gray, §3 and §11 of
//! the SkyServer paper, adapted to the synthetic catalog.
//!
//! The paper gives three of them verbatim (Q1, Q15 and the fast-moving
//! variant of Q15); the others are reconstructed from their one-line
//! descriptions in the Gray technical report.  Columns the synthetic survey
//! does not model (surface brightness, extinction, photometric redshift) are
//! substituted with documented proxies -- what matters for the evaluation is
//! the *shape* of each query (index lookup vs scan vs join) and its result
//! class, not the astrophysics.

use crate::spec::{Invariant, QueryFamily, QuerySpec};
use skyserver_sql::PlanClass;

fn q(
    id: &'static str,
    title: &'static str,
    sql: &str,
    expected_class: PlanClass,
    invariants: Vec<Invariant>,
    adaptation: &'static str,
) -> QuerySpec {
    QuerySpec {
        id,
        title,
        sql: sql.to_string(),
        family: QueryFamily::DataMining,
        expected_class,
        invariants,
        adaptation,
    }
}

/// The centre of the synthetic footprint used by the spatial queries.
pub const FOOTPRINT_RA: f64 = 181.0;
/// Declination near the centre of the synthetic footprint.
pub const FOOTPRINT_DEC: f64 = -0.8;

/// All twenty data-mining queries.
pub fn twenty_queries() -> Vec<QuerySpec> {
    vec![
        q(
            "Q1",
            "Galaxies without saturated pixels within 1' of a given point",
            &format!(
                "declare @saturated bigint;
                 set @saturated = dbo.fPhotoFlags('saturated');
                 select G.objID, GN.distance
                 into ##results
                 from Galaxy as G
                 join fGetNearbyObjEq({FOOTPRINT_RA}, {FOOTPRINT_DEC}, 3) as GN on G.objID = GN.objID
                 where (G.flags & @saturated) = 0
                 order by distance"
            ),
            PlanClass::IndexSeek,
            vec![Invariant::MayBeEmpty, Invariant::SortedAscending("distance")],
            "Verbatim from the paper; the radius is 3' instead of 1' so the small synthetic catalog returns a handful of rows.",
        ),
        q(
            "Q2",
            "Galaxies with blue surface brightness between 23 and 25 mag and dec < 0",
            "select objID, modelMag_g, petroRad_r from Galaxy \
             where modelMag_g between 18 and 23 and petroRad_r > 3 and dec < 0",
            PlanClass::IndexSeek,
            vec![Invariant::NonEmpty, Invariant::ColumnInRange("modelMag_g", 18.0, 23.0)],
            "Surface brightness is proxied by g magnitude + Petrosian radius.",
        ),
        q(
            "Q3",
            "Galaxies brighter than magnitude 22 where the local extinction is > 0.75",
            "select objID, modelMag_r, modelMagErr_r from PhotoPrimary \
             where type = 3 and modelMag_r < 22 and modelMagErr_r > 0.02",
            PlanClass::IndexSeek,
            vec![Invariant::NonEmpty],
            "Extinction is proxied by the model magnitude error.",
        ),
        q(
            "Q4",
            "Galaxies with large isophotal axes and ellipticity > 0.5",
            "select objID, isoA_r, isoB_r from Galaxy \
             where isoA_r > 3 and (power(q_r,2) + power(u_r,2)) > 0.25",
            PlanClass::IndexSeek,
            vec![Invariant::MayBeEmpty, Invariant::ColumnInRange("isoA_r", 3.0, 1e9)],
            "Ellipticity is the Stokes (q,u) norm, as in the paper's fast-mover query.",
        ),
        q(
            "Q5",
            "Galaxies with a deVaucouleurs profile and elliptical-galaxy colors",
            "select objID, modelMag_u - modelMag_g as ug, petroRad_r from Galaxy \
             where probPSF < 0.2 and (modelMag_u - modelMag_g) > 1.0 and petroRad_r > 3",
            PlanClass::IndexSeek,
            vec![Invariant::NonEmpty, Invariant::ColumnInRange("ug", 1.0, 10.0)],
            "The profile fit is proxied by low probPSF and a red u-g colour.",
        ),
        q(
            "Q6",
            "Galaxies blended with another object, output the deblended child magnitudes",
            "declare @child bigint;
             set @child = dbo.fPhotoFlags('child');
             select C.objID, C.parentID, C.modelMag_r, P.modelMag_r as parentMag
             from PhotoObj C
             join PhotoObj P on C.parentID = P.objID
             where (C.flags & @child) > 0 and C.type = 3",
            PlanClass::IndexSeek,
            vec![Invariant::MayBeEmpty],
            "Deblended children carry the CHILD flag and a parentID; the parent lookup uses the objID primary key.",
        ),
        q(
            "Q7",
            "Star-like objects with rare colours (about 1% of the population)",
            "select objID, modelMag_u - modelMag_g as ug from Star \
             where (modelMag_u - modelMag_g) < 0.55",
            PlanClass::IndexSeek,
            vec![Invariant::MayBeEmpty, Invariant::ColumnInRange("ug", -10.0, 0.55)],
            "The rare population is the blue tail of the u-g colour distribution.",
        ),
        q(
            "Q8",
            "Objects with unclassified spectra",
            "select specObjID, objID, z from SpecObj where specClass = 0",
            PlanClass::Scan,
            vec![Invariant::MayBeEmpty],
            "Unclassified = SpecClass 'unknown'; the SpecObj table is scanned.",
        ),
        q(
            "Q9",
            "Quasar spectra with broad lines and redshift in a window",
            "select S.specObjID, S.z, L.sigma
             from SpecObj S
             join SpecLine L on L.specObjID = S.specObjID
             where S.z between 0.5 and 4.0 and S.specClass = 3 and L.sigma > 6",
            PlanClass::JoinScan,
            vec![Invariant::MayBeEmpty, Invariant::ColumnInRange("z", 0.5, 4.0)],
            "Line width > 2000 km/s becomes a sigma cut on the synthetic lines; the z window uses the ix_SpecObj_z index.",
        ),
        q(
            "Q10",
            "Galaxies with spectra whose H-alpha equivalent width is large",
            "select S.specObjID, S.objID, L.ew
             from SpecObj S
             join SpecLine L on L.specObjID = S.specObjID
             where L.lineID = 6563 and L.ew > 40 and S.specClass = 2",
            PlanClass::JoinScan,
            vec![Invariant::MayBeEmpty],
            "Direct translation: the 6563 Angstrom line with EW > 40.",
        ),
        q(
            "Q11",
            "Emission-line galaxies with an anomalous (absorption-like) line",
            "select S.specObjID, L.lineID, L.ew
             from SpecObj S
             join SpecLine L on L.specObjID = S.specObjID
             where S.specClass = 7 and L.ew < -10",
            PlanClass::JoinScan,
            vec![Invariant::MayBeEmpty],
            "Anomalous line = strongly negative equivalent width in a GAL_EM spectrum.",
        ),
        q(
            "Q12",
            "Gridded count of blue galaxies over a rectangle of sky (2' cells)",
            &format!(
                "select floor(ra * 30) as cellRa, floor(dec * 30) as cellDec, count(*) as n
                 from Galaxy
                 where ra between {} and {} and dec between {} and {}
                   and (modelMag_u - modelMag_g) > 1 and modelMag_r < 21.5
                 group by floor(ra * 30), floor(dec * 30)
                 order by n desc",
                FOOTPRINT_RA - 1.0,
                FOOTPRINT_RA + 1.0,
                FOOTPRINT_DEC - 1.0,
                FOOTPRINT_DEC + 1.0
            ),
            PlanClass::IndexSeek,
            vec![Invariant::MayBeEmpty],
            "The 2-arcminute grid is floor(coordinate * 30); masks are not modelled.",
        ),
        q(
            "Q13",
            "Count of colour-cut galaxies per coarse HTM triangle (for visualisation)",
            "select floor(htmID / 16777216) as trixel, count(*) as n
             from Galaxy
             where (0.7 * modelMag_u - 0.5 * modelMag_g - 0.2 * modelMag_i) < 12 and modelMag_r < 21.75
             group by floor(htmID / 16777216)
             order by n desc",
            PlanClass::IndexSeek,
            vec![Invariant::NonEmpty],
            "The coarse trixel is the depth-8 prefix of the 20-deep HTM id (divide by 4^12).",
        ),
        q(
            "Q14",
            "Stars observed more than once whose magnitudes differ by more than 0.01",
            "select P.objID, S.objID as otherID, P.psfMag_r - S.psfMag_r as dmag
             from Neighbors N
             join PhotoObj P on N.objID = P.objID
             join PhotoObj S on N.neighborObjID = S.objID
             where N.distance < 0.05 and P.type = 6 and S.type = 6
               and P.objID < S.objID and abs(P.psfMag_r - S.psfMag_r) > 0.01",
            PlanClass::JoinScan,
            vec![Invariant::MayBeEmpty],
            "Repeat measurements are the overlap duplicates, found through the Neighbors materialised view.",
        ),
        q(
            "Q15A",
            "Slow-moving objects consistent with asteroids (the paper's Query 15)",
            "select objID, sqrt(rowv*rowv + colv*colv) as velocity, dbo.fGetUrlExpId(objID) as Url
             into ##results
             from PhotoObj
             where (rowv*rowv + colv*colv) between 50 and 1000 and rowv >= 0 and colv >= 0",
            PlanClass::Scan,
            vec![Invariant::NonEmpty, Invariant::ColumnInRange("velocity", 7.0, 32.0)],
            "Verbatim from §11: a parallel table scan computing the velocity predicate.",
        ),
        q(
            "Q15B",
            "Fast-moving near-earth objects: pairs of elongated red/green detections (Fig 12)",
            "select r.objID as rId, g.objId as gId,
                    dbo.fGetUrlExpId(r.objID) as rURL, dbo.fGetUrlExpId(g.objID) as gURL
             from PhotoObj r, PhotoObj g
             where r.run = g.run and r.camcol = g.camcol
               and abs(g.field - r.field) <= 1
               and r.objID <> g.objID
               and ((power(r.q_r,2) + power(r.u_r,2)) > 0.111111)
               and r.fiberMag_r between 6 and 22
               and r.fiberMag_r < r.fiberMag_u
               and r.fiberMag_r < r.fiberMag_g
               and r.fiberMag_r < r.fiberMag_i
               and r.fiberMag_r < r.fiberMag_z
               and r.parentID = 0
               and r.isoA_r / r.isoB_r > 1.5
               and r.isoA_r > 2.0
               and ((power(g.q_g,2) + power(g.u_g,2)) > 0.111111)
               and g.fiberMag_g between 6 and 22
               and g.fiberMag_g < g.fiberMag_u
               and g.fiberMag_g < g.fiberMag_r
               and g.fiberMag_g < g.fiberMag_i
               and g.fiberMag_g < g.fiberMag_z
               and g.parentID = 0
               and g.isoA_g / g.isoB_g > 1.5
               and g.isoA_g > 2.0
               and sqrt(power(r.cx - g.cx, 2) + power(r.cy - g.cy, 2) + power(r.cz - g.cz, 2)) * (180 * 60 / pi()) < 4.0
               and abs(r.fiberMag_r - g.fiberMag_g) < 2.0",
            PlanClass::IndexSeek,
            vec![Invariant::NonEmpty, Invariant::AtMostRows(64)],
            "Verbatim from §11 (plus an objID inequality to suppress the degenerate self-pair); finds the planted NEO pairs.",
        ),
        q(
            "Q16",
            "Objects with the colours of a very-high-redshift quasar (i-dropouts)",
            "select objID, modelMag_i - modelMag_z as iz from PhotoPrimary \
             where (modelMag_i - modelMag_z) > 2.0 and modelMag_z < 20.5",
            PlanClass::IndexSeek,
            vec![Invariant::MayBeEmpty],
            "The i-z dropout cut; the synthetic colour distributions make such objects vanishingly rare, as in the real sky.",
        ),
        q(
            "Q17",
            "Close pairs of stars where one has white-dwarf colours",
            "select N.objID, N.neighborObjID, A.modelMag_u - A.modelMag_g as ug
             from Neighbors N
             join PhotoObj A on N.objID = A.objID
             join PhotoObj B on N.neighborObjID = B.objID
             where N.distance < 0.2 and A.type = 6 and B.type = 6
               and (A.modelMag_u - A.modelMag_g) < 0.6",
            PlanClass::JoinScan,
            vec![Invariant::MayBeEmpty],
            "Binaries are Neighbors pairs of stars; the white-dwarf colour is a blue u-g cut.",
        ),
        q(
            "Q18",
            "Pairs of objects within 30 arcseconds with very similar colours",
            "select N.objID, N.neighborObjID,
                    (A.modelMag_g - A.modelMag_r) - (B.modelMag_g - B.modelMag_r) as dcolor
             from Neighbors N
             join PhotoObj A on N.objID = A.objID
             join PhotoObj B on N.neighborObjID = B.objID
             where N.distance < 0.5 and N.objID < N.neighborObjID
               and abs((A.modelMag_g - A.modelMag_r) - (B.modelMag_g - B.modelMag_r)) < 0.05",
            PlanClass::JoinScan,
            vec![Invariant::MayBeEmpty, Invariant::ColumnInRange("dcolor", -0.05, 0.05)],
            "Lensing candidates: neighbouring pairs whose g-r colours agree to 0.05 mag.",
        ),
        q(
            "Q19",
            "Quasars with an absorption line and a nearby galaxy",
            "select S.specObjID, S.z, N.neighborObjID
             from SpecObj S
             join SpecLine L on L.specObjID = S.specObjID
             join Neighbors N on N.objID = S.objID
             where S.specClass = 3 and L.ew < -5 and N.neighborType = 3 and N.distance < 0.5",
            PlanClass::JoinScan,
            vec![Invariant::MayBeEmpty],
            "Broad absorption line = negative equivalent width; the nearby galaxy comes from Neighbors.",
        ),
        q(
            "Q20",
            "For each galaxy with a spectrum, count the nearby galaxies at a similar distance",
            "select G.objID, count(*) as nNearby
             from Galaxy G
             join SpecObj S on S.objID = G.objID
             join Neighbors N on N.objID = G.objID
             where N.neighborType = 3
             group by G.objID
             order by nNearby desc",
            PlanClass::JoinScan,
            vec![Invariant::MayBeEmpty],
            "The brightest-cluster-galaxy count; the photometric-redshift cut is dropped (no photo-z column).",
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_queries_are_defined_with_unique_ids() {
        let queries = twenty_queries();
        assert_eq!(queries.len(), 21, "Q1..Q20 plus the Q15B variant");
        let mut ids: Vec<&str> = queries.iter().map(|q| q.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), queries.len());
        for q in &queries {
            assert!(!q.sql.trim().is_empty());
            assert!(!q.title.is_empty());
            assert!(!q.adaptation.is_empty());
            assert!(!q.invariants.is_empty());
        }
    }

    #[test]
    fn all_queries_parse() {
        for query in twenty_queries() {
            skyserver_sql::parse_script(&query.sql)
                .unwrap_or_else(|e| panic!("{} does not parse: {e}", query.id));
        }
    }

    #[test]
    fn headline_queries_are_verbatim_shapes() {
        let queries = twenty_queries();
        let q1 = queries.iter().find(|q| q.id == "Q1").unwrap();
        assert!(q1.sql.contains("fGetNearbyObjEq"));
        assert!(q1.sql.contains("fPhotoFlags"));
        let q15 = queries.iter().find(|q| q.id == "Q15A").unwrap();
        assert!(q15.sql.contains("rowv*rowv + colv*colv"));
        let q15b = queries.iter().find(|q| q.id == "Q15B").unwrap();
        assert!(q15b.sql.contains("isoA_r / r.isoB_r") || q15b.sql.contains("r.isoA_r / r.isoB_r"));
    }
}
