//! # skyserver-queries
//!
//! The evaluation workload of the SkyServer paper: the 20 data-mining
//! queries of Szalay/Gray (§3, §11, Figure 13), the 15 simpler
//! astronomer queries, result invariants for each, and the timing harness
//! that regenerates the Figure 13 table.

#![forbid(unsafe_code)]

pub mod astronomer;
pub mod runner;
pub mod spec;
pub mod twenty;

pub use astronomer::astronomer_queries;
pub use runner::{render_figure13, run_all, run_query, QueryReport};
pub use spec::{Invariant, QueryFamily, QuerySpec};
pub use twenty::{twenty_queries, FOOTPRINT_DEC, FOOTPRINT_RA};

/// All 36 queries: the 20 data-mining queries (incl. the Q15 fast-mover
/// variant) followed by the 15 astronomer queries.
pub fn all_queries() -> Vec<QuerySpec> {
    let mut queries = twenty_queries();
    queries.extend(astronomer_queries());
    queries
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyserver::SkyServerBuilder;

    #[test]
    fn every_query_runs_and_honours_its_invariants() {
        // One shared tiny server keeps this test fast while still executing
        // all 36 queries end to end.
        let mut server = SkyServerBuilder::new().tiny().build().unwrap();
        let reports = run_all(&mut server, &all_queries()).unwrap();
        assert_eq!(reports.len(), 36);
        let problems: Vec<String> = reports
            .iter()
            .filter(|r| !r.violations.is_empty())
            .map(|r| format!("{}: {:?}", r.id, r.violations))
            .collect();
        assert!(
            problems.is_empty(),
            "query problems:\n{}",
            problems.join("\n")
        );
    }

    #[test]
    fn figure13_table_contains_every_query_and_orders_by_time() {
        let mut server = SkyServerBuilder::new().tiny().build().unwrap();
        let reports = run_all(&mut server, &twenty_queries()).unwrap();
        let table = render_figure13(&reports);
        for q in twenty_queries() {
            assert!(table.contains(q.id), "figure 13 table is missing {}", q.id);
        }
        // The headline comparison of the paper: the spatial index-lookup
        // query (Q1, 0.19 s elapsed) is orders of magnitude faster than the
        // full PhotoObj scan (Q15, 162 s elapsed) at the 14 M-object scale.
        let q1 = reports.iter().find(|r| r.id == "Q1").unwrap();
        let q15 = reports.iter().find(|r| r.id == "Q15A").unwrap();
        assert!(
            q15.paper_elapsed_seconds > q1.paper_elapsed_seconds * 10.0,
            "the full scan (Q15A: {:.2}s) should be far slower than the index lookup (Q1: {:.2}s)",
            q15.paper_elapsed_seconds,
            q1.paper_elapsed_seconds
        );
        assert!(
            q15.paper_elapsed_seconds > 30.0,
            "a 31 GB PhotoObj scan should project to minutes, got {:.2}s",
            q15.paper_elapsed_seconds
        );
    }
}
