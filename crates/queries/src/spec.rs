//! Query specifications: SQL text plus machine-checkable result invariants.
//!
//! The paper's evaluation is built around 20 representative astronomy
//! queries (Szalay, detailed in Gray) plus 15 simpler queries posed by
//! astronomers.  Absolute timings depend on hardware and data volume, but
//! each query has properties that must hold on any faithful SDSS-like
//! catalog (result cardinality class, orderings, plan class); those are what
//! the test suite checks.

use skyserver_sql::{PlanClass, ResultSet};

/// Which evaluation family a query belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum QueryFamily {
    /// The 20 data-mining queries of Szalay/Gray (Figure 13).
    DataMining,
    /// The 15 simpler queries posed by astronomers (§11).
    Astronomer,
}

/// A machine-checkable invariant on a query's result.
#[derive(Debug, Clone, PartialEq)]
pub enum Invariant {
    /// The result has at least this many rows.
    AtLeastRows(usize),
    /// The result has at most this many rows.
    AtMostRows(usize),
    /// The result is non-empty.
    NonEmpty,
    /// May legitimately be empty at small scale (rare populations).
    MayBeEmpty,
    /// A named numeric column is sorted ascending.
    SortedAscending(&'static str),
    /// Every value of a named column lies in `[lo, hi]`.
    ColumnInRange(&'static str, f64, f64),
    /// The scalar result (first cell) is at least this value.
    ScalarAtLeast(i64),
}

impl Invariant {
    /// Check the invariant against a result set.  Returns an error message
    /// on violation.
    pub fn check(&self, result: &ResultSet) -> Result<(), String> {
        match self {
            Invariant::AtLeastRows(n) => {
                if result.len() >= *n {
                    Ok(())
                } else {
                    Err(format!("expected at least {n} rows, got {}", result.len()))
                }
            }
            Invariant::AtMostRows(n) => {
                if result.len() <= *n {
                    Ok(())
                } else {
                    Err(format!("expected at most {n} rows, got {}", result.len()))
                }
            }
            Invariant::NonEmpty => {
                if result.is_empty() {
                    Err("expected a non-empty result".into())
                } else {
                    Ok(())
                }
            }
            Invariant::MayBeEmpty => Ok(()),
            Invariant::SortedAscending(column) => {
                let values = result.column_values(column);
                if values.is_empty() && result.column_index(column).is_none() {
                    return Err(format!("column {column} missing from result"));
                }
                for w in values.windows(2) {
                    if w[0] > w[1] {
                        return Err(format!("column {column} is not sorted ascending"));
                    }
                }
                Ok(())
            }
            Invariant::ColumnInRange(column, lo, hi) => {
                if result.column_index(column).is_none() {
                    return Err(format!("column {column} missing from result"));
                }
                for v in result.column_values(column) {
                    if let Some(x) = v.as_f64() {
                        if x < *lo || x > *hi {
                            return Err(format!("column {column} value {x} outside [{lo}, {hi}]"));
                        }
                    }
                }
                Ok(())
            }
            Invariant::ScalarAtLeast(n) => {
                let v = result
                    .scalar()
                    .and_then(skyserver_storage::Value::as_i64)
                    .ok_or_else(|| "expected a scalar result".to_string())?;
                if v >= *n {
                    Ok(())
                } else {
                    Err(format!("expected scalar >= {n}, got {v}"))
                }
            }
        }
    }
}

/// One benchmark query.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    /// Short identifier, e.g. "Q1" or "A7".
    pub id: &'static str,
    /// One-line description from the paper.
    pub title: &'static str,
    /// The SQL script (may contain DECLARE/SET statements).
    pub sql: String,
    /// Which family the query belongs to.
    pub family: QueryFamily,
    /// Plan class the paper's discussion implies (index lookup vs scan vs
    /// join-with-scan) -- what Figure 13's grouping reflects.
    pub expected_class: PlanClass,
    /// Result invariants to verify.
    pub invariants: Vec<Invariant>,
    /// Notes about how the query was adapted to the synthetic schema.
    pub adaptation: &'static str,
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyserver_storage::Value;

    fn rs(rows: Vec<Vec<Value>>) -> ResultSet {
        ResultSet {
            columns: vec!["n".into(), "distance".into()],
            rows,
            truncated: false,
        }
    }

    #[test]
    fn invariant_checks() {
        let r = rs(vec![
            vec![Value::Int(5), Value::Float(0.1)],
            vec![Value::Int(7), Value::Float(0.4)],
        ]);
        assert!(Invariant::AtLeastRows(2).check(&r).is_ok());
        assert!(Invariant::AtLeastRows(3).check(&r).is_err());
        assert!(Invariant::AtMostRows(2).check(&r).is_ok());
        assert!(Invariant::NonEmpty.check(&r).is_ok());
        assert!(Invariant::MayBeEmpty.check(&rs(vec![])).is_ok());
        assert!(Invariant::SortedAscending("distance").check(&r).is_ok());
        assert!(Invariant::SortedAscending("missing").check(&r).is_err());
        assert!(Invariant::ColumnInRange("distance", 0.0, 1.0)
            .check(&r)
            .is_ok());
        assert!(Invariant::ColumnInRange("distance", 0.0, 0.2)
            .check(&r)
            .is_err());
        assert!(Invariant::ScalarAtLeast(5).check(&r).is_ok());
        assert!(Invariant::ScalarAtLeast(6).check(&r).is_err());
    }

    #[test]
    fn unsorted_column_detected() {
        let r = rs(vec![
            vec![Value::Int(5), Value::Float(0.9)],
            vec![Value::Int(7), Value::Float(0.1)],
        ]);
        assert!(Invariant::SortedAscending("distance").check(&r).is_err());
    }
}
