//! The complete synthetic survey: geometry + photometry + spectroscopy +
//! cross-matches, plus summary statistics and the scale factor used to
//! project measurements onto the paper's data volume.

use crate::config::SurveyConfig;
use crate::geometry::SurveyGeometry;
use crate::photo::{generate_photo, PhotoCatalog};
use crate::spectro::{generate_spectro, SpectroCatalog};
use crate::xmatch::{generate_xmatch, CrossMatchCatalog};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A fully generated synthetic survey.
#[derive(Debug, Clone)]
pub struct Survey {
    pub config: SurveyConfig,
    pub geometry: SurveyGeometry,
    pub photo: PhotoCatalog,
    pub spectro: SpectroCatalog,
    pub xmatch: CrossMatchCatalog,
}

/// Per-table row counts of a generated survey (the generator-side view of
/// the paper's Table 1).
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SurveyCounts {
    pub fields: usize,
    pub frames: usize,
    pub photo_obj: usize,
    pub profiles: usize,
    pub plates: usize,
    pub spec_obj: usize,
    pub spec_lines: usize,
    pub spec_line_indices: usize,
    pub xc_redshifts: usize,
    pub el_redshifts: usize,
    pub usno: usize,
    pub rosat: usize,
    pub first: usize,
}

impl Survey {
    /// Generate a survey from a configuration (fully deterministic in the
    /// seed).
    pub fn generate(config: SurveyConfig) -> Result<Survey, String> {
        config.validate()?;
        let geometry = SurveyGeometry::generate(&config);
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let photo = generate_photo(&config, &geometry, &mut rng);
        let spectro = generate_spectro(&config, &photo.objects, &mut rng);
        let xmatch = generate_xmatch(&config, &photo.objects, &mut rng);
        Ok(Survey {
            config,
            geometry,
            photo,
            spectro,
            xmatch,
        })
    }

    /// Row counts per table.
    pub fn counts(&self) -> SurveyCounts {
        SurveyCounts {
            fields: self.geometry.fields.len(),
            frames: self.geometry.frames.len(),
            photo_obj: self.photo.objects.len(),
            profiles: self.photo.profiles.len(),
            plates: self.spectro.plates.len(),
            spec_obj: self.spectro.spec_objs.len(),
            spec_lines: self.spectro.spec_lines.len(),
            spec_line_indices: self.spectro.spec_line_indices.len(),
            xc_redshifts: self.spectro.xc_redshifts.len(),
            el_redshifts: self.spectro.el_redshifts.len(),
            usno: self.xmatch.usno.len(),
            rosat: self.xmatch.rosat.len(),
            first: self.xmatch.first.len(),
        }
    }

    /// Fraction of photo objects flagged primary (paper: ~80 %).
    pub fn primary_fraction(&self) -> f64 {
        if self.photo.objects.is_empty() {
            return 0.0;
        }
        self.photo.objects.iter().filter(|o| o.is_primary()).count() as f64
            / self.photo.objects.len() as f64
    }

    /// Multiplier from this survey's photoObj row count to the paper's 14 M.
    pub fn paper_scale_factor(&self) -> f64 {
        14_000_000.0 / self.photo.objects.len().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_tiny_survey() {
        let survey = Survey::generate(SurveyConfig::tiny()).unwrap();
        let counts = survey.counts();
        assert!(counts.photo_obj >= 2000);
        assert_eq!(counts.frames, counts.fields * 5);
        assert_eq!(counts.profiles, counts.photo_obj);
        assert!(counts.spec_obj > 0);
        assert_eq!(counts.spec_lines, counts.spec_obj * 30);
        assert!(counts.plates >= 1);
    }

    #[test]
    fn ratios_match_the_papers_table1_shape() {
        let survey = Survey::generate(SurveyConfig::tiny()).unwrap();
        let c = survey.counts();
        // Paper Table 1 ratios: frames ~5x fields, specLine ~27x specObj,
        // specLineIndex same order as specLine, xcRedShift ~= specLine order,
        // elRedShift a few percent of specObj... we check the qualitative
        // orderings that the reproduction relies on.
        assert_eq!(c.frames, 5 * c.fields);
        assert!(c.spec_lines >= 20 * c.spec_obj);
        assert!(
            c.photo_obj > 100 * c.spec_obj / 2,
            "spectra are ~1% of objects"
        );
        assert!(c.el_redshifts < c.xc_redshifts);
        assert!(c.usno > c.rosat);
    }

    #[test]
    fn primary_fraction_about_80_percent() {
        let survey = Survey::generate(SurveyConfig::tiny()).unwrap();
        let f = survey.primary_fraction();
        assert!((0.7..=0.95).contains(&f), "primary fraction {f}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Survey::generate(SurveyConfig::tiny()).unwrap();
        let b = Survey::generate(SurveyConfig::tiny()).unwrap();
        assert_eq!(a.counts(), b.counts());
        assert_eq!(a.photo.objects[0], b.photo.objects[0]);
        let mut different = SurveyConfig::tiny();
        different.seed += 1;
        let c = Survey::generate(different).unwrap();
        assert_ne!(a.photo.objects[0].ra, c.photo.objects[0].ra);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut bad = SurveyConfig::tiny();
        bad.galaxy_fraction = 2.0;
        assert!(Survey::generate(bad).is_err());
    }
}
