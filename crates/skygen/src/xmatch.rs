//! Cross-survey matches.
//!
//! "The pipeline tries to correlate each object with objects in other
//! surveys: United States Naval Observatory (USNO), Röntgen Satellite
//! (ROSAT), Faint Images of the Radio Sky at Twenty-centimeters (FIRST), and
//! others.  Successful correlations are recorded in a set of relationship
//! tables." (§9)

use crate::config::SurveyConfig;
use crate::photo::PhotoObjRecord;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// A USNO (optical astrometric catalog) match.
#[derive(Debug, Clone, PartialEq)]
pub struct UsnoRecord {
    pub obj_id: i64,
    pub usno_id: i64,
    /// Match distance in arcseconds.
    pub delta: f64,
    /// USNO blue and red plate magnitudes.
    pub blue_mag: f64,
    pub red_mag: f64,
}

/// A ROSAT (X-ray) match.
#[derive(Debug, Clone, PartialEq)]
pub struct RosatRecord {
    pub obj_id: i64,
    pub rosat_id: i64,
    pub delta: f64,
    /// X-ray count rate.
    pub cps: f64,
}

/// A FIRST (radio) match.
#[derive(Debug, Clone, PartialEq)]
pub struct FirstRecord {
    pub obj_id: i64,
    pub first_id: i64,
    pub delta: f64,
    /// Peak radio flux in mJy.
    pub peak_flux: f64,
}

/// All cross-match tables.
#[derive(Debug, Clone, Default)]
pub struct CrossMatchCatalog {
    pub usno: Vec<UsnoRecord>,
    pub rosat: Vec<RosatRecord>,
    pub first: Vec<FirstRecord>,
}

/// Generate cross-survey matches for primary objects.
pub fn generate_xmatch(
    config: &SurveyConfig,
    objects: &[PhotoObjRecord],
    rng: &mut ChaCha8Rng,
) -> CrossMatchCatalog {
    let mut catalog = CrossMatchCatalog::default();
    let mut usno_id = 7_000_000i64;
    let mut rosat_id = 40_000i64;
    let mut first_id = 90_000i64;
    for obj in objects.iter().filter(|o| o.is_primary()) {
        // USNO matches go to brighter objects (it is a shallow catalog).
        if obj.model_mag[2] < 20.0 && rng.gen_bool(config.usno_match_rate) {
            usno_id += 1;
            catalog.usno.push(UsnoRecord {
                obj_id: obj.obj_id,
                usno_id,
                delta: rng.gen_range(0.0..1.0),
                blue_mag: obj.model_mag[0] + rng.gen_range(-0.5..0.5),
                red_mag: obj.model_mag[2] + rng.gen_range(-0.5..0.5),
            });
        }
        if rng.gen_bool(config.rosat_match_rate) {
            rosat_id += 1;
            catalog.rosat.push(RosatRecord {
                obj_id: obj.obj_id,
                rosat_id,
                delta: rng.gen_range(0.0..20.0),
                cps: rng.gen_range(0.001..0.5),
            });
        }
        if rng.gen_bool(config.first_match_rate) {
            first_id += 1;
            catalog.first.push(FirstRecord {
                obj_id: obj.obj_id,
                first_id,
                delta: rng.gen_range(0.0..3.0),
                peak_flux: rng.gen_range(1.0..500.0),
            });
        }
    }
    catalog
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::SurveyGeometry;
    use crate::photo::generate_photo;
    use rand::SeedableRng;

    fn xmatch() -> (SurveyConfig, usize, CrossMatchCatalog) {
        let config = SurveyConfig::tiny();
        let geometry = SurveyGeometry::generate(&config);
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let photo = generate_photo(&config, &geometry, &mut rng);
        let primaries = photo.objects.iter().filter(|o| o.is_primary()).count();
        let xm = generate_xmatch(&config, &photo.objects, &mut rng);
        (config, primaries, xm)
    }

    #[test]
    fn match_rates_are_plausible() {
        let (config, primaries, xm) = xmatch();
        let usno_rate = xm.usno.len() as f64 / primaries as f64;
        // USNO is magnitude-limited so the realised rate is below the raw
        // probability, but it should be the biggest of the three by far.
        assert!(usno_rate > config.rosat_match_rate);
        assert!(xm.usno.len() > xm.first.len());
        assert!(xm.first.len() >= xm.rosat.len() / 2);
    }

    #[test]
    fn matches_have_sane_values() {
        let (_, _, xm) = xmatch();
        for m in &xm.usno {
            assert!(m.delta >= 0.0 && m.delta < 2.0);
            assert!(m.blue_mag > 5.0 && m.blue_mag < 30.0);
        }
        for m in &xm.rosat {
            assert!(m.cps > 0.0);
        }
        for m in &xm.first {
            assert!(m.peak_flux > 0.0);
        }
    }

    #[test]
    fn ids_are_unique() {
        let (_, _, xm) = xmatch();
        let mut ids: Vec<i64> = xm.usno.iter().map(|m| m.usno_id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), xm.usno.len());
    }
}
