//! # skyserver-skygen
//!
//! A deterministic synthetic Sloan Digital Sky Survey: the stand-in for the
//! real SDSS Early Data Release that the SkyServer paper publishes.
//!
//! The generator reproduces the observational geometry (stripes → strips →
//! runs → camcols → fields → frames, Fig 6 of the paper) and the statistical
//! properties the evaluation queries depend on:
//!
//! * ~11 % duplicate detections from strip/stripe overlaps, deblended
//!   parent/child families, and ~80 % of rows flagged `PRIMARY`;
//! * 5-band magnitudes in four measurement styles with colour correlations
//!   and magnitude-dependent errors;
//! * bit flags (`saturated`, `bright`, `edge`, ...) behind `fPhotoFlags`;
//! * a rare slow-moving asteroid population (Query 15) and planted
//!   fast-moving NEO pairs (the modified Query 15);
//! * ~1 % spectroscopic targeting, ~600-fibre plates, ~30 lines per
//!   spectrum, and a magnitude-redshift (Hubble) relation;
//! * USNO / ROSAT / FIRST cross-matches.
//!
//! ```
//! use skyserver_skygen::{Survey, SurveyConfig};
//!
//! let survey = Survey::generate(SurveyConfig::tiny()).unwrap();
//! assert!(survey.primary_fraction() > 0.7);
//! let csv = skyserver_skygen::export_survey(&survey);
//! assert_eq!(csv[2].name, "PhotoObj");
//! ```

#![forbid(unsafe_code)]

pub mod config;
pub mod csv;
pub mod flags;
pub mod geometry;
pub mod photo;
pub mod spectro;
pub mod survey;
pub mod xmatch;

pub use config::SurveyConfig;
pub use csv::{export_survey, CsvTable};
pub use flags::{
    photo_flag_value, photo_type_value, spec_class_value, PhotoFlag, PhotoType, SpecClass, BANDS,
    PHOTO_FLAGS, PHOTO_TYPES, SPEC_CLASSES,
};
pub use geometry::{FieldRecord, FrameRecord, SurveyGeometry};
pub use photo::{PhotoCatalog, PhotoObjRecord, ProfileRecord};
pub use spectro::{
    ElRedshiftRecord, PlateRecord, SpecLineIndexRecord, SpecLineRecord, SpecObjRecord,
    SpectroCatalog, XcRedshiftRecord,
};
pub use survey::{Survey, SurveyCounts};
pub use xmatch::{CrossMatchCatalog, FirstRecord, RosatRecord, UsnoRecord};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Any valid configuration generates a structurally consistent
        /// survey: every FK-style reference points at an existing parent and
        /// the headline statistics stay in their documented ranges.
        #[test]
        fn generated_surveys_are_consistent(seed in 0u64..1000, objects in 300usize..1500) {
            let config = SurveyConfig {
                seed,
                target_objects: objects,
                ..SurveyConfig::tiny()
            };
            let survey = Survey::generate(config).unwrap();
            // Primary fraction in the paper's ballpark.
            let pf = survey.primary_fraction();
            prop_assert!((0.65..=1.0).contains(&pf), "primary fraction {}", pf);
            // Spectra reference existing photo objects.
            for s in survey.spectro.spec_objs.iter().take(50) {
                prop_assert!(survey.photo.objects.iter().any(|o| o.obj_id == s.obj_id));
            }
            // Every photo object sits inside the survey footprint.
            let (ra_min, ra_max) = survey.geometry.ra_range;
            for o in survey.photo.objects.iter().take(200) {
                prop_assert!(o.ra >= ra_min - 1e-9 && o.ra <= ra_max + 1e-9);
            }
            // Object ids are unique.
            let mut ids: Vec<i64> = survey.photo.objects.iter().map(|o| o.obj_id).collect();
            ids.sort_unstable();
            let before = ids.len();
            ids.dedup();
            prop_assert_eq!(before, ids.len());
        }
    }
}
