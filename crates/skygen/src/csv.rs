//! CSV export of the synthetic pipeline output.
//!
//! "The SDSS data pipeline produces FITS files, but also produces
//! comma-separated list (csv) files of the object data and PNG files...
//! From there, a script loads the data using the SQL Server's Data
//! Transformation Service." (§9.4)  This module is the "pipeline side" of
//! that hand-off: it renders every catalog table as a CSV document the
//! loader crate ingests and validates.

use crate::flags::BANDS;
use crate::survey::Survey;

/// One exported CSV table.
#[derive(Debug, Clone, PartialEq)]
pub struct CsvTable {
    /// Destination table name.
    pub name: String,
    /// Header line (comma-separated column names).
    pub header: String,
    /// Data lines (comma-separated values, no trailing newline).
    pub rows: Vec<String>,
}

impl CsvTable {
    /// Render the whole document (header + rows).
    pub fn to_document(&self) -> String {
        let mut s = String::with_capacity(self.rows.len() * 64 + self.header.len() + 1);
        s.push_str(&self.header);
        s.push('\n');
        for r in &self.rows {
            s.push_str(r);
            s.push('\n');
        }
        s
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

fn f(v: f64) -> String {
    // Keep full precision but a compact form.
    format!("{v}")
}

fn mag_columns(prefix: &str) -> String {
    BANDS
        .iter()
        .map(|b| format!("{prefix}_{b}"))
        .collect::<Vec<_>>()
        .join(",")
}

fn mags(values: &[f64; 5]) -> String {
    values.iter().map(|v| f(*v)).collect::<Vec<_>>().join(",")
}

/// Export every table of a survey as CSV (in load order: parents before
/// children so foreign keys validate).
pub fn export_survey(survey: &Survey) -> Vec<CsvTable> {
    let mut tables = Vec::new();

    // Field ------------------------------------------------------------
    tables.push(CsvTable {
        name: "Field".into(),
        header: "fieldID,run,rerun,camcol,field,ra,dec,raWidth,decWidth,stripe,strip,quality"
            .into(),
        rows: survey
            .geometry
            .fields
            .iter()
            .map(|x| {
                format!(
                    "{},{},{},{},{},{},{},{},{},{},{},{}",
                    x.field_id,
                    x.run,
                    x.rerun,
                    x.camcol,
                    x.field,
                    f(x.ra),
                    f(x.dec),
                    f(x.ra_width),
                    f(x.dec_width),
                    x.stripe,
                    x.strip,
                    x.quality
                )
            })
            .collect(),
    });

    // Frame ------------------------------------------------------------
    tables.push(CsvTable {
        name: "Frame".into(),
        header: "frameID,fieldID,band,zoom,imgBytes".into(),
        rows: survey
            .geometry
            .frames
            .iter()
            .map(|x| {
                format!(
                    "{},{},{},{},{}",
                    x.frame_id, x.field_id, x.band, x.zoom, x.image_bytes
                )
            })
            .collect(),
    });

    // PhotoObj ----------------------------------------------------------
    let header = format!(
        "objID,parentID,fieldID,run,camcol,field,obj,nChild,type,probPSF,flags,status,\
         ra,dec,cx,cy,cz,htmID,rowv,colv,{},{},{},{},{},petroRad_r,isoA_r,isoB_r,isoA_g,isoB_g,\
         q_r,u_r,q_g,u_g",
        mag_columns("modelMag"),
        mag_columns("psfMag"),
        mag_columns("petroMag"),
        mag_columns("fiberMag"),
        mag_columns("modelMagErr"),
    );
    tables.push(CsvTable {
        name: "PhotoObj".into(),
        header,
        rows: survey
            .photo
            .objects
            .iter()
            .map(|o| {
                format!(
                    "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
                    o.obj_id,
                    o.parent_id,
                    o.field_id,
                    o.run,
                    o.camcol,
                    o.field,
                    o.obj,
                    o.n_child,
                    o.obj_type,
                    f(o.prob_psf),
                    o.flags,
                    o.status,
                    f(o.ra),
                    f(o.dec),
                    f(o.cx),
                    f(o.cy),
                    f(o.cz),
                    o.htm_id,
                    f(o.rowv),
                    f(o.colv),
                    mags(&o.model_mag),
                    mags(&o.psf_mag),
                    mags(&o.petro_mag),
                    mags(&o.fiber_mag),
                    mags(&o.model_mag_err),
                    f(o.petro_rad_r),
                    f(o.iso_a[2]),
                    f(o.iso_b[2]),
                    f(o.iso_a[1]),
                    f(o.iso_b[1]),
                    f(o.q[2]),
                    f(o.u[2]),
                    f(o.q[1]),
                    f(o.u[1]),
                )
            })
            .collect(),
    });

    // Profile ------------------------------------------------------------
    tables.push(CsvTable {
        name: "Profile".into(),
        header: "objID,nBins,profile".into(),
        rows: survey
            .photo
            .profiles
            .iter()
            .map(|p| {
                format!(
                    "{},{},{}",
                    p.obj_id,
                    p.n_bins,
                    skyserver_hex(&p.profile_blob)
                )
            })
            .collect(),
    });

    // Plate / SpecObj / SpecLine / SpecLineIndex / redshifts --------------
    tables.push(CsvTable {
        name: "Plate".into(),
        header: "plateID,ra,dec,mjd,nFibers".into(),
        rows: survey
            .spectro
            .plates
            .iter()
            .map(|p| {
                format!(
                    "{},{},{},{},{}",
                    p.plate_id,
                    f(p.ra),
                    f(p.dec),
                    p.mjd,
                    p.n_fibers
                )
            })
            .collect(),
    });
    tables.push(CsvTable {
        name: "SpecObj".into(),
        header: "specObjID,plateID,fiberID,objID,ra,dec,htmID,z,zErr,zConf,specClass,imgBytes"
            .into(),
        rows: survey
            .spectro
            .spec_objs
            .iter()
            .map(|s| {
                format!(
                    "{},{},{},{},{},{},{},{},{},{},{},{}",
                    s.spec_obj_id,
                    s.plate_id,
                    s.fiber_id,
                    s.obj_id,
                    f(s.ra),
                    f(s.dec),
                    s.htm_id,
                    f(s.z),
                    f(s.z_err),
                    f(s.z_conf),
                    s.spec_class,
                    s.img_bytes
                )
            })
            .collect(),
    });
    tables.push(CsvTable {
        name: "SpecLine".into(),
        header: "specLineID,specObjID,lineID,wave,sigma,height,ew".into(),
        rows: survey
            .spectro
            .spec_lines
            .iter()
            .map(|l| {
                format!(
                    "{},{},{},{},{},{},{}",
                    l.spec_line_id,
                    l.spec_obj_id,
                    l.line_id,
                    f(l.wave),
                    f(l.sigma),
                    f(l.height),
                    f(l.ew)
                )
            })
            .collect(),
    });
    tables.push(CsvTable {
        name: "SpecLineIndex".into(),
        header: "specLineIndexID,specObjID,name,ew,mag".into(),
        rows: survey
            .spectro
            .spec_line_indices
            .iter()
            .map(|l| {
                format!(
                    "{},{},{},{},{}",
                    l.spec_line_index_id,
                    l.spec_obj_id,
                    l.name,
                    f(l.ew),
                    f(l.mag)
                )
            })
            .collect(),
    });
    tables.push(CsvTable {
        name: "xcRedShift".into(),
        header: "xcRedShiftID,specObjID,z,r,peak".into(),
        rows: survey
            .spectro
            .xc_redshifts
            .iter()
            .map(|x| {
                format!(
                    "{},{},{},{},{}",
                    x.xc_red_shift_id,
                    x.spec_obj_id,
                    f(x.z),
                    f(x.r),
                    f(x.peak)
                )
            })
            .collect(),
    });
    tables.push(CsvTable {
        name: "elRedShift".into(),
        header: "elRedShiftID,specObjID,z,nLines".into(),
        rows: survey
            .spectro
            .el_redshifts
            .iter()
            .map(|x| {
                format!(
                    "{},{},{},{}",
                    x.el_red_shift_id,
                    x.spec_obj_id,
                    f(x.z),
                    x.n_lines
                )
            })
            .collect(),
    });

    // Cross-match tables ---------------------------------------------------
    tables.push(CsvTable {
        name: "USNO".into(),
        header: "objID,usnoID,delta,blueMag,redMag".into(),
        rows: survey
            .xmatch
            .usno
            .iter()
            .map(|m| {
                format!(
                    "{},{},{},{},{}",
                    m.obj_id,
                    m.usno_id,
                    f(m.delta),
                    f(m.blue_mag),
                    f(m.red_mag)
                )
            })
            .collect(),
    });
    tables.push(CsvTable {
        name: "ROSAT".into(),
        header: "objID,rosatID,delta,cps".into(),
        rows: survey
            .xmatch
            .rosat
            .iter()
            .map(|m| format!("{},{},{},{}", m.obj_id, m.rosat_id, f(m.delta), f(m.cps)))
            .collect(),
    });
    tables.push(CsvTable {
        name: "FIRST".into(),
        header: "objID,firstID,delta,peakFlux".into(),
        rows: survey
            .xmatch
            .first
            .iter()
            .map(|m| {
                format!(
                    "{},{},{},{}",
                    m.obj_id,
                    m.first_id,
                    f(m.delta),
                    f(m.peak_flux)
                )
            })
            .collect(),
    });

    tables
}

fn skyserver_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2 + 2);
    s.push_str("0x");
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SurveyConfig;

    #[test]
    fn export_produces_all_tables_in_fk_order() {
        let survey = Survey::generate(SurveyConfig::tiny()).unwrap();
        let tables = export_survey(&survey);
        let names: Vec<&str> = tables.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "Field",
                "Frame",
                "PhotoObj",
                "Profile",
                "Plate",
                "SpecObj",
                "SpecLine",
                "SpecLineIndex",
                "xcRedShift",
                "elRedShift",
                "USNO",
                "ROSAT",
                "FIRST"
            ]
        );
        // Parents appear before children.
        let pos = |n: &str| names.iter().position(|x| *x == n).unwrap();
        assert!(pos("Field") < pos("PhotoObj"));
        assert!(pos("PhotoObj") < pos("SpecObj"));
        assert!(pos("Plate") < pos("SpecObj"));
        assert!(pos("SpecObj") < pos("SpecLine"));
    }

    #[test]
    fn header_arity_matches_row_arity() {
        let survey = Survey::generate(SurveyConfig::tiny()).unwrap();
        for table in export_survey(&survey) {
            let header_cols = table.header.split(',').count();
            for (i, row) in table.rows.iter().take(20).enumerate() {
                let cols = row.split(',').count();
                assert_eq!(
                    cols, header_cols,
                    "table {} row {i} has {cols} fields, header has {header_cols}",
                    table.name
                );
            }
            assert_eq!(table.len(), table.rows.len());
        }
    }

    #[test]
    fn row_counts_match_survey_counts() {
        let survey = Survey::generate(SurveyConfig::tiny()).unwrap();
        let counts = survey.counts();
        let tables = export_survey(&survey);
        let rows = |n: &str| tables.iter().find(|t| t.name == n).unwrap().len();
        assert_eq!(rows("PhotoObj"), counts.photo_obj);
        assert_eq!(rows("Field"), counts.fields);
        assert_eq!(rows("SpecLine"), counts.spec_lines);
        assert_eq!(rows("USNO"), counts.usno);
    }

    #[test]
    fn document_round_trips_lines() {
        let survey = Survey::generate(SurveyConfig::tiny()).unwrap();
        let tables = export_survey(&survey);
        let doc = tables[0].to_document();
        let lines: Vec<&str> = doc.lines().collect();
        assert_eq!(lines.len(), tables[0].len() + 1);
        assert_eq!(lines[0], tables[0].header);
    }
}
