//! Spectroscopic synthesis: plates, spectra, spectral lines, line indices
//! and redshifts.
//!
//! About 1 % of photometric objects are targeted for spectroscopy.  Each
//! plate carries ~600 optical fibres; the pipeline extracts ~30 spectral
//! lines per spectrum, measures a cross-correlation redshift and an
//! emission-line redshift, and classifies the spectrum (§9.1.2).  The
//! synthetic redshifts follow a magnitude-redshift (Hubble-diagram) relation
//! so the education example can "discover" the expanding universe and the
//! photometric-redshift anecdote of §11 is reproducible.

use crate::config::SurveyConfig;
use crate::flags::{PhotoType, SpecClass};
use crate::photo::PhotoObjRecord;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use skyserver_htm::{lookup_id, SDSS_DEPTH};

/// One spectroscopic plate (~600 fibres observed simultaneously).
#[derive(Debug, Clone, PartialEq)]
pub struct PlateRecord {
    pub plate_id: i64,
    /// Plate centre.
    pub ra: f64,
    pub dec: f64,
    /// Modified Julian Date of the observation.
    pub mjd: i64,
    /// Number of fibres actually used.
    pub n_fibers: i64,
}

/// One measured spectrum.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecObjRecord {
    pub spec_obj_id: i64,
    pub plate_id: i64,
    pub fiber_id: i64,
    /// The photometric object this spectrum targets (FK into PhotoObj).
    pub obj_id: i64,
    pub ra: f64,
    pub dec: f64,
    pub htm_id: i64,
    /// Final redshift.
    pub z: f64,
    pub z_err: f64,
    pub z_conf: f64,
    /// Spectral classification code (see [`crate::flags::SpecClass`]).
    pub spec_class: i64,
    /// Size of the spectrum's GIF image blob, bytes (each spectrogram has "a
    /// handsome GIF image associated with it").
    pub img_bytes: i64,
}

/// One extracted spectral line.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecLineRecord {
    pub spec_line_id: i64,
    pub spec_obj_id: i64,
    /// Rest-frame line id (e.g. 6563 for H-alpha).
    pub line_id: i64,
    /// Observed wavelength in Angstroms.
    pub wave: f64,
    /// Line width.
    pub sigma: f64,
    /// Line height above the continuum.
    pub height: f64,
    /// Equivalent width.
    pub ew: f64,
}

/// Derived line-group quantities.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecLineIndexRecord {
    pub spec_line_index_id: i64,
    pub spec_obj_id: i64,
    pub name: String,
    pub ew: f64,
    pub mag: f64,
}

/// Cross-correlation redshift measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct XcRedshiftRecord {
    pub xc_red_shift_id: i64,
    pub spec_obj_id: i64,
    pub z: f64,
    pub r: f64,
    pub peak: f64,
}

/// Emission-line redshift measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct ElRedshiftRecord {
    pub el_red_shift_id: i64,
    pub spec_obj_id: i64,
    pub z: f64,
    pub n_lines: i64,
}

/// Everything the spectroscopic pipeline produces.
#[derive(Debug, Clone, Default)]
pub struct SpectroCatalog {
    pub plates: Vec<PlateRecord>,
    pub spec_objs: Vec<SpecObjRecord>,
    pub spec_lines: Vec<SpecLineRecord>,
    pub spec_line_indices: Vec<SpecLineIndexRecord>,
    pub xc_redshifts: Vec<XcRedshiftRecord>,
    pub el_redshifts: Vec<ElRedshiftRecord>,
}

/// Rest wavelengths of the most prominent optical lines (Angstroms).
const REST_LINES: &[(i64, f64)] = &[
    (3727, 3727.0), // [OII]
    (4102, 4102.0), // H-delta
    (4340, 4340.0), // H-gamma
    (4861, 4861.0), // H-beta
    (4959, 4959.0), // [OIII]
    (5007, 5007.0), // [OIII]
    (5890, 5890.0), // Na D
    (6563, 6563.0), // H-alpha
    (6583, 6583.0), // [NII]
    (6717, 6717.0), // [SII]
];

/// Generate spectroscopy for a photometric catalog.
pub fn generate_spectro(
    config: &SurveyConfig,
    objects: &[PhotoObjRecord],
    rng: &mut ChaCha8Rng,
) -> SpectroCatalog {
    let mut catalog = SpectroCatalog::default();
    // Target ~spectro_fraction of *primary* objects, favouring the brighter
    // ones (the real targeting is magnitude limited).
    let mut targets: Vec<&PhotoObjRecord> = objects
        .iter()
        .filter(|o| o.is_primary() && o.model_mag[2] < 20.5)
        .collect();
    targets.sort_by(|a, b| a.model_mag[2].total_cmp(&b.model_mag[2]));
    let n_targets = ((objects.len() as f64) * config.spectro_fraction)
        .round()
        .max(1.0) as usize;
    let targets = &targets[..n_targets.min(targets.len())];

    let mut spec_obj_id = 3_000_000i64;
    let mut spec_line_id = 1i64;
    let mut index_id = 1i64;
    let mut xc_id = 1i64;
    let mut el_id = 1i64;
    for (i, chunk) in targets.chunks(config.fibers_per_plate as usize).enumerate() {
        let plate_id = 300 + i as i64;
        let ra = chunk.iter().map(|o| o.ra).sum::<f64>() / chunk.len() as f64;
        let dec = chunk.iter().map(|o| o.dec).sum::<f64>() / chunk.len() as f64;
        catalog.plates.push(PlateRecord {
            plate_id,
            ra,
            dec,
            mjd: 52_000 + i as i64 * 3,
            n_fibers: chunk.len() as i64,
        });
        for (fiber, obj) in chunk.iter().enumerate() {
            spec_obj_id += 1;
            let is_galaxy = obj.obj_type == PhotoType::Galaxy as i64;
            // Hubble-like relation: fainter galaxies are further away.
            let z = if is_galaxy {
                let base = 10f64.powf((obj.model_mag[2] - 15.5) / 5.0) * 0.01;
                (base * rng.gen_range(0.7..1.3)).clamp(0.003, 0.6)
            } else if rng.gen_bool(0.03) {
                // A few quasars at high redshift.
                rng.gen_range(0.5..4.0)
            } else {
                // Stars: essentially zero redshift.
                rng.gen_range(-0.0005..0.0005)
            };
            let spec_class = if is_galaxy {
                if rng.gen_bool(0.1) {
                    SpecClass::GalEm as i64
                } else {
                    SpecClass::Galaxy as i64
                }
            } else if z > 0.5 {
                SpecClass::Qso as i64
            } else {
                SpecClass::Star as i64
            };
            catalog.spec_objs.push(SpecObjRecord {
                spec_obj_id,
                plate_id,
                fiber_id: fiber as i64 + 1,
                obj_id: obj.obj_id,
                ra: obj.ra,
                dec: obj.dec,
                htm_id: lookup_id(obj.ra, obj.dec, SDSS_DEPTH) as i64,
                z,
                z_err: (0.0001 + z.abs() * 0.002) * rng.gen_range(0.5..1.5),
                z_conf: rng.gen_range(0.85..1.0),
                spec_class,
                img_bytes: rng.gen_range(15_000..25_000),
            });
            // Spectral lines: rest wavelengths shifted by (1 + z).
            let n_lines = config.lines_per_spectrum as usize;
            for l in 0..n_lines {
                let (line_id, rest) = REST_LINES[l % REST_LINES.len()];
                spec_line_id += 1;
                catalog.spec_lines.push(SpecLineRecord {
                    spec_line_id,
                    spec_obj_id,
                    line_id,
                    wave: rest * (1.0 + z) + rng.gen_range(-0.5..0.5),
                    sigma: rng.gen_range(1.0..8.0),
                    height: rng.gen_range(0.5..50.0),
                    ew: rng.gen_range(-20.0..60.0),
                });
            }
            // A handful of line-index rows per spectrum.
            for name in ["Mg", "Na", "Hdelta_A"] {
                index_id += 1;
                catalog.spec_line_indices.push(SpecLineIndexRecord {
                    spec_line_index_id: index_id,
                    spec_obj_id,
                    name: name.to_string(),
                    ew: rng.gen_range(-5.0..15.0),
                    mag: rng.gen_range(-0.2..0.4),
                });
            }
            // Redshift measurements: cross-correlation (always) plus an
            // emission-line redshift for emission spectra.
            xc_id += 1;
            catalog.xc_redshifts.push(XcRedshiftRecord {
                xc_red_shift_id: xc_id,
                spec_obj_id,
                z: z + rng.gen_range(-0.0005..0.0005),
                r: rng.gen_range(3.0..20.0),
                peak: rng.gen_range(0.3..1.0),
            });
            if spec_class == SpecClass::GalEm as i64 || rng.gen_bool(0.3) {
                el_id += 1;
                catalog.el_redshifts.push(ElRedshiftRecord {
                    el_red_shift_id: el_id,
                    spec_obj_id,
                    z: z + rng.gen_range(-0.001..0.001),
                    n_lines: rng.gen_range(2..8),
                });
            }
        }
    }
    catalog
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::SurveyGeometry;
    use crate::photo::generate_photo;
    use rand::SeedableRng;

    fn spectro() -> (SurveyConfig, Vec<PhotoObjRecord>, SpectroCatalog) {
        let config = SurveyConfig::tiny();
        let geometry = SurveyGeometry::generate(&config);
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let photo = generate_photo(&config, &geometry, &mut rng);
        let spectro = generate_spectro(&config, &photo.objects, &mut rng);
        (config, photo.objects, spectro)
    }

    #[test]
    fn about_one_percent_of_objects_have_spectra() {
        let (config, objects, cat) = spectro();
        let fraction = cat.spec_objs.len() as f64 / objects.len() as f64;
        assert!(
            (fraction - config.spectro_fraction).abs() < config.spectro_fraction,
            "got fraction {fraction}"
        );
        assert!(!cat.plates.is_empty());
    }

    #[test]
    fn plates_hold_at_most_the_fiber_budget() {
        let (config, _, cat) = spectro();
        for p in &cat.plates {
            assert!(p.n_fibers as u32 <= config.fibers_per_plate);
            assert!(p.n_fibers > 0);
        }
        let fibers: i64 = cat.plates.iter().map(|p| p.n_fibers).sum();
        assert_eq!(fibers as usize, cat.spec_objs.len());
    }

    #[test]
    fn spectra_reference_existing_primary_objects() {
        let (_, objects, cat) = spectro();
        for s in &cat.spec_objs {
            let obj = objects.iter().find(|o| o.obj_id == s.obj_id);
            assert!(
                obj.is_some(),
                "specObj {0} references missing photoObj",
                s.spec_obj_id
            );
            assert!(obj.unwrap().is_primary());
        }
    }

    #[test]
    fn lines_per_spectrum_matches_config() {
        let (config, _, cat) = spectro();
        assert_eq!(
            cat.spec_lines.len(),
            cat.spec_objs.len() * config.lines_per_spectrum as usize
        );
        // Lines reference their spectra.
        for l in cat.spec_lines.iter().take(100) {
            assert!(cat.spec_objs.iter().any(|s| s.spec_obj_id == l.spec_obj_id));
        }
    }

    #[test]
    fn line_wavelengths_are_redshifted() {
        let (_, _, cat) = spectro();
        for l in cat.spec_lines.iter().take(200) {
            let s = cat
                .spec_objs
                .iter()
                .find(|s| s.spec_obj_id == l.spec_obj_id)
                .unwrap();
            if s.z > 0.01 {
                // Observed wavelength exceeds every rest wavelength used.
                assert!(l.wave > 3700.0);
            }
        }
    }

    #[test]
    fn galaxy_redshifts_correlate_with_magnitude() {
        // The Hubble-diagram property: among galaxies, fainter means more
        // distant (higher z) on average.
        let (_, objects, cat) = spectro();
        let mut bright = Vec::new();
        let mut faint = Vec::new();
        for s in &cat.spec_objs {
            if s.spec_class == SpecClass::Galaxy as i64 || s.spec_class == SpecClass::GalEm as i64 {
                let o = objects.iter().find(|o| o.obj_id == s.obj_id).unwrap();
                if o.model_mag[2] < 17.0 {
                    bright.push(s.z);
                } else if o.model_mag[2] > 18.5 {
                    faint.push(s.z);
                }
            }
        }
        if !bright.is_empty() && !faint.is_empty() {
            let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
            assert!(mean(&faint) > mean(&bright));
        }
    }

    #[test]
    fn redshift_measurements_cover_all_spectra() {
        let (_, _, cat) = spectro();
        assert_eq!(cat.xc_redshifts.len(), cat.spec_objs.len());
        assert!(cat.el_redshifts.len() <= cat.spec_objs.len());
        assert_eq!(cat.spec_line_indices.len(), cat.spec_objs.len() * 3);
    }
}
