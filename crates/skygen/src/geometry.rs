//! Observational geometry: stripes, strips, runs, camera columns, fields and
//! frames.
//!
//! The SDSS observes the sky in 2.5°-wide **stripes**; each stripe is the
//! mosaic of two interleaved night's **strips** with ~10 % overlap (Fig 6).
//! A strip observation is a **run**; the camera has 6 **camcols**, and the
//! data stream is chopped into **fields** (~10'x13').  Every field yields 5
//! **frames** (one per band), which is why the paper's Table 1 has ~5x more
//! frame rows than field rows.

use crate::config::SurveyConfig;

/// One observed field (the unit of pipeline processing).
#[derive(Debug, Clone, PartialEq)]
pub struct FieldRecord {
    pub field_id: i64,
    pub run: i64,
    pub rerun: i64,
    pub camcol: i64,
    pub field: i64,
    /// Field centre.
    pub ra: f64,
    pub dec: f64,
    /// Right-ascension extent of the field, degrees.
    pub ra_width: f64,
    /// Declination extent of the field, degrees.
    pub dec_width: f64,
    /// Stripe number this field belongs to.
    pub stripe: i64,
    /// Strip within the stripe (0 = North strip, 1 = South strip).
    pub strip: i64,
    /// Photometric quality (1 = acceptable, matching the "OK run" flag).
    pub quality: i64,
}

/// One frame: the image of a field in one band.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameRecord {
    pub frame_id: i64,
    pub field_id: i64,
    /// Band index 0..5 (u, g, r, i, z).
    pub band: i64,
    /// Zoom level of the stored JPEG (0 = full resolution).
    pub zoom: i64,
    /// Synthetic JPEG payload size in bytes (the real frames store the image
    /// blob in the database, §5).
    pub image_bytes: i64,
}

/// The geometric layout of the whole survey.
#[derive(Debug, Clone, Default)]
pub struct SurveyGeometry {
    pub fields: Vec<FieldRecord>,
    pub frames: Vec<FrameRecord>,
    /// Stripe declination centres.
    pub stripe_decs: Vec<f64>,
    /// (ra_min, ra_max) of the surveyed area.
    pub ra_range: (f64, f64),
    /// (dec_min, dec_max) of the surveyed area.
    pub dec_range: (f64, f64),
}

/// Width of one stripe in degrees.
pub const STRIPE_WIDTH_DEG: f64 = 2.5;
/// Number of camera columns.
pub const CAMCOLS: i64 = 6;
/// Fractional overlap between the two strips of a stripe.
pub const STRIP_OVERLAP: f64 = 0.10;

impl SurveyGeometry {
    /// Lay out the survey footprint for a configuration.
    pub fn generate(config: &SurveyConfig) -> SurveyGeometry {
        let mut geometry = SurveyGeometry {
            ra_range: (
                config.base_ra_deg,
                config.base_ra_deg + config.stripe_length_deg,
            ),
            ..Default::default()
        };
        let mut field_id = 0i64;
        let mut frame_id = 0i64;
        for stripe in 0..config.stripes {
            let stripe_dec = config.base_dec_deg + f64::from(stripe) * STRIPE_WIDTH_DEG;
            geometry.stripe_decs.push(stripe_dec);
            for strip in 0..2i64 {
                // The two strips interleave: each covers half the stripe
                // width plus the overlap margin.
                let strip_dec = stripe_dec + (strip as f64 - 0.5) * STRIPE_WIDTH_DEG / 2.0;
                let run = 1000 + i64::from(stripe) * 10 + strip;
                for camcol in 1..=CAMCOLS {
                    let camcol_dec = strip_dec
                        + (camcol as f64 - 3.5)
                            * (STRIPE_WIDTH_DEG / 2.0 / CAMCOLS as f64)
                            * (1.0 + STRIP_OVERLAP);
                    let ra_step = config.stripe_length_deg / f64::from(config.fields_per_camcol);
                    for field in 0..config.fields_per_camcol {
                        let ra = config.base_ra_deg + (f64::from(field) + 0.5) * ra_step;
                        field_id += 1;
                        let record = FieldRecord {
                            field_id,
                            run,
                            rerun: 1,
                            camcol,
                            field: i64::from(field) + 11, // SDSS field numbering starts around 11
                            ra,
                            dec: camcol_dec,
                            ra_width: ra_step,
                            dec_width: STRIPE_WIDTH_DEG / 2.0 / CAMCOLS as f64
                                * (1.0 + STRIP_OVERLAP),
                            stripe: i64::from(stripe) + 82, // SDSS stripe numbering
                            strip,
                            quality: 1,
                        };
                        // One frame per band for each field.
                        for band in 0..5i64 {
                            frame_id += 1;
                            geometry.frames.push(FrameRecord {
                                frame_id,
                                field_id,
                                band,
                                zoom: 0,
                                image_bytes: 60_000 + (band * 7_000),
                            });
                        }
                        geometry.fields.push(record);
                    }
                }
            }
        }
        let dec_min = geometry
            .fields
            .iter()
            .map(|f| f.dec - f.dec_width / 2.0)
            .fold(f64::INFINITY, f64::min);
        let dec_max = geometry
            .fields
            .iter()
            .map(|f| f.dec + f.dec_width / 2.0)
            .fold(f64::NEG_INFINITY, f64::max);
        geometry.dec_range = (dec_min, dec_max);
        geometry
    }

    /// The field whose footprint contains `(ra, dec)`, if any (used to
    /// assign generated objects to fields).  Ties go to the first match,
    /// mimicking the primary/secondary resolution of overlaps.
    pub fn field_containing(&self, ra: f64, dec: f64) -> Option<&FieldRecord> {
        self.fields.iter().find(|f| {
            (ra - f.ra).abs() <= f.ra_width / 2.0 && (dec - f.dec).abs() <= f.dec_width / 2.0
        })
    }

    /// All fields whose footprint contains the position (more than one in
    /// overlap regions -- the source of duplicate detections).
    pub fn fields_containing(&self, ra: f64, dec: f64) -> Vec<&FieldRecord> {
        self.fields
            .iter()
            .filter(|f| {
                (ra - f.ra).abs() <= f.ra_width / 2.0 && (dec - f.dec).abs() <= f.dec_width / 2.0
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_and_frame_counts() {
        let config = SurveyConfig::tiny();
        let g = SurveyGeometry::generate(&config);
        let expected_fields =
            (config.stripes * 2 * CAMCOLS as u32 * config.fields_per_camcol) as usize;
        assert_eq!(g.fields.len(), expected_fields);
        assert_eq!(g.frames.len(), expected_fields * 5);
    }

    #[test]
    fn frames_reference_fields() {
        let g = SurveyGeometry::generate(&SurveyConfig::tiny());
        let max_field = g.fields.iter().map(|f| f.field_id).max().unwrap();
        for frame in &g.frames {
            assert!(frame.field_id >= 1 && frame.field_id <= max_field);
            assert!((0..5).contains(&frame.band));
        }
    }

    #[test]
    fn footprint_covers_requested_area() {
        let config = SurveyConfig::personal_skyserver();
        let g = SurveyGeometry::generate(&config);
        assert_eq!(g.stripe_decs.len(), config.stripes as usize);
        assert!((g.ra_range.1 - g.ra_range.0 - config.stripe_length_deg).abs() < 1e-9);
        assert!(g.dec_range.1 > g.dec_range.0);
    }

    #[test]
    fn positions_map_to_fields() {
        let config = SurveyConfig::tiny();
        let g = SurveyGeometry::generate(&config);
        // The centre of every field must map back to a field.
        for f in &g.fields {
            let found = g.field_containing(f.ra, f.dec);
            assert!(found.is_some());
        }
        // A far-away point maps to nothing.
        assert!(g.field_containing(10.0, 80.0).is_none());
    }

    #[test]
    fn overlap_regions_hit_multiple_fields() {
        let config = SurveyConfig::personal_skyserver();
        let g = SurveyGeometry::generate(&config);
        let multi = g
            .fields
            .iter()
            .filter(|f| g.fields_containing(f.ra, f.dec).len() > 1)
            .count();
        // Interleaved strips overlap, so a noticeable share of field centres
        // land in more than one footprint.
        assert!(multi > 0, "expected some overlapping footprints");
    }

    #[test]
    fn runs_distinguish_strips() {
        let g = SurveyGeometry::generate(&SurveyConfig::tiny());
        let north_run = g.fields.iter().find(|f| f.strip == 0).unwrap().run;
        let south_run = g.fields.iter().find(|f| f.strip == 1).unwrap().run;
        assert_ne!(north_run, south_run);
    }
}
