//! Survey generation configuration.
//!
//! The real SDSS Early Data Release holds ~14 million photometric objects in
//! ~80 GB.  The generator is parameterised so tests run on thousands of
//! objects, benchmarks on hundreds of thousands, and the "Personal
//! SkyServer" preset mimics the paper's 1 % / 6°x6° cut (§10).  All
//! statistical knobs (duplicate rate, deblend rate, spectroscopic targeting
//! fraction, asteroid rate, ...) default to the values quoted in the paper.

/// Configuration for synthetic survey generation.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SurveyConfig {
    /// RNG seed: the survey is fully deterministic given the config.
    pub seed: u64,
    /// Number of *primary* celestial objects to synthesise (duplicates and
    /// deblended children are added on top of this).
    pub target_objects: usize,
    /// Number of 2.5-degree stripes observed.
    pub stripes: u32,
    /// Fields per (run, camcol); the real survey has ~10-12 fields per
    /// square degree of strip.
    pub fields_per_camcol: u32,
    /// Right-ascension extent of each stripe, degrees (the real stripes are
    /// ~120-130 degrees long; the Personal SkyServer cut is 6 degrees).
    pub stripe_length_deg: f64,
    /// Fraction of detections that are duplicates from strip/stripe overlaps
    /// (paper: "about 11% of the objects appear more than once").
    pub duplicate_fraction: f64,
    /// Fraction of primaries that are blended parents which get deblended
    /// into two children (tuned so ~80% of all photo objects end up primary).
    pub deblend_fraction: f64,
    /// Fraction of primaries targeted for spectroscopy (paper: ~1 %).
    pub spectro_fraction: f64,
    /// Fibres per spectroscopic plate (paper: ~600-640).
    pub fibers_per_plate: u32,
    /// Spectral lines extracted per spectrum (paper: ~30).
    pub lines_per_spectrum: u32,
    /// Fraction of objects that are slow-moving asteroids (velocity in the
    /// Q15 window); the paper finds 1,303 in 14 M objects.
    pub asteroid_fraction: f64,
    /// Number of fast-moving near-earth-object *pairs* to plant (the paper's
    /// modified Q15 finds 3 genuine NEOs + 1 degenerate pair).
    pub fast_mover_pairs: usize,
    /// Fraction of galaxies among primaries (the rest are stars, with a
    /// sprinkle of unknown/defect classifications).
    pub galaxy_fraction: f64,
    /// Cross-match rates into the external survey tables.
    pub usno_match_rate: f64,
    pub rosat_match_rate: f64,
    pub first_match_rate: f64,
    /// Declination of the first stripe centre, degrees.
    pub base_dec_deg: f64,
    /// Right ascension where stripes start, degrees.
    pub base_ra_deg: f64,
}

impl Default for SurveyConfig {
    fn default() -> Self {
        SurveyConfig::personal_skyserver()
    }
}

impl SurveyConfig {
    /// A tiny survey for unit tests (a few thousand objects).
    pub fn tiny() -> Self {
        SurveyConfig {
            seed: 271828,
            target_objects: 2_000,
            stripes: 1,
            fields_per_camcol: 4,
            stripe_length_deg: 2.0,
            ..SurveyConfig::personal_skyserver()
        }
    }

    /// The "Personal SkyServer" scale: a ~1 % cut of the survey that fits on
    /// a laptop (§10 of the paper: about 0.5 GB, a 6°x6° patch of sky).
    pub fn personal_skyserver() -> Self {
        SurveyConfig {
            seed: 42,
            target_objects: 50_000,
            stripes: 2,
            fields_per_camcol: 12,
            stripe_length_deg: 6.0,
            duplicate_fraction: 0.11,
            deblend_fraction: 0.05,
            spectro_fraction: 0.01,
            fibers_per_plate: 600,
            lines_per_spectrum: 30,
            asteroid_fraction: 1.0e-4,
            fast_mover_pairs: 4,
            galaxy_fraction: 0.55,
            usno_match_rate: 0.30,
            rosat_match_rate: 0.01,
            first_match_rate: 0.02,
            base_dec_deg: -1.25,
            base_ra_deg: 180.0,
        }
    }

    /// A benchmark-scale survey (a few hundred thousand objects).
    pub fn benchmark() -> Self {
        SurveyConfig {
            seed: 20020603, // SIGMOD 2002, June 3rd
            target_objects: 250_000,
            stripes: 3,
            fields_per_camcol: 24,
            stripe_length_deg: 15.0,
            ..SurveyConfig::personal_skyserver()
        }
    }

    /// Scale factor from this configuration to the paper's 14 M-object Early
    /// Data Release (used to project measured timings onto Figure 13).
    pub fn paper_scale_factor(&self) -> f64 {
        14_000_000.0 / self.target_objects.max(1) as f64
    }

    /// Rough number of total photo rows (primaries + duplicates + children)
    /// this configuration will generate.
    pub fn expected_photo_rows(&self) -> usize {
        let primaries = self.target_objects as f64;
        let dups = primaries * self.duplicate_fraction;
        let children = primaries * self.deblend_fraction * 2.0;
        let parents_demoted = primaries * self.deblend_fraction;
        (primaries + dups + children + parents_demoted) as usize
    }

    /// Validate the statistical knobs.
    pub fn validate(&self) -> Result<(), String> {
        if self.target_objects == 0 {
            return Err("target_objects must be positive".into());
        }
        for (name, v) in [
            ("duplicate_fraction", self.duplicate_fraction),
            ("deblend_fraction", self.deblend_fraction),
            ("spectro_fraction", self.spectro_fraction),
            ("asteroid_fraction", self.asteroid_fraction),
            ("galaxy_fraction", self.galaxy_fraction),
            ("usno_match_rate", self.usno_match_rate),
            ("rosat_match_rate", self.rosat_match_rate),
            ("first_match_rate", self.first_match_rate),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{name} must lie in [0, 1], got {v}"));
            }
        }
        if self.stripes == 0 || self.fields_per_camcol == 0 || self.fibers_per_plate == 0 {
            return Err("geometry counts must be positive".into());
        }
        if self.stripe_length_deg <= 0.0 || self.stripe_length_deg > 120.0 {
            return Err("stripe_length_deg must be in (0, 120]".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        SurveyConfig::tiny().validate().unwrap();
        SurveyConfig::personal_skyserver().validate().unwrap();
        SurveyConfig::benchmark().validate().unwrap();
    }

    #[test]
    fn default_is_personal() {
        assert_eq!(SurveyConfig::default(), SurveyConfig::personal_skyserver());
    }

    #[test]
    fn scale_factor_reflects_object_count() {
        let c = SurveyConfig::personal_skyserver();
        assert!((c.paper_scale_factor() - 280.0).abs() < 1.0);
        let t = SurveyConfig::tiny();
        assert!(t.paper_scale_factor() > c.paper_scale_factor());
    }

    #[test]
    fn expected_rows_exceed_primaries() {
        let c = SurveyConfig::personal_skyserver();
        assert!(c.expected_photo_rows() > c.target_objects);
        // Roughly +11% dups +15% blend family members.
        assert!(c.expected_photo_rows() < c.target_objects * 13 / 10);
    }

    #[test]
    fn validation_catches_bad_values() {
        let mut c = SurveyConfig::tiny();
        c.duplicate_fraction = 1.5;
        assert!(c.validate().is_err());
        let mut c = SurveyConfig::tiny();
        c.target_objects = 0;
        assert!(c.validate().is_err());
        let mut c = SurveyConfig::tiny();
        c.stripe_length_deg = 0.0;
        assert!(c.validate().is_err());
    }
}
