//! Photometric flag bits, object type codes and spectral classes.
//!
//! The SDSS pipeline attaches ~100 boolean properties to every object,
//! "encoded as bit flags" (§9).  Queries test them with expressions like
//! `flags & dbo.fPhotoFlags('saturated') = 0`.  This module defines the
//! subset of flags the paper's queries use plus the type/class dictionaries,
//! and the name↔bit mappings behind the `fPhotoFlags`, `fPhotoType` and
//! `fSpecClass` scalar functions.

/// Photometric status/flag bits (a representative subset of the ~100 real
/// ones).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u64)]
pub enum PhotoFlag {
    /// Best (primary) detection of the object.
    Primary = 0x1,
    /// Detection from an overlap area (duplicate of some primary).
    Secondary = 0x2,
    /// Object is a deblended child.
    Child = 0x4,
    /// Object was blended with another and has deblended children.
    Blended = 0x8,
    /// At least one pixel is saturated.
    Saturated = 0x10,
    /// Object is brighter than the survey's bright limit.
    Bright = 0x20,
    /// Object touches the edge of its frame.
    Edge = 0x40,
    /// The observation came from an acceptable ("OK") run.
    OkRun = 0x80,
    /// Pixels interpolated over cosmic rays / bad columns.
    Interpolated = 0x100,
    /// The deblend is suspect.
    DeblendNopeak = 0x200,
    /// Moving object detected by the pipeline.
    Moved = 0x400,
    /// Photometry may be contaminated by a nearby bright star.
    NearBrightStar = 0x800,
}

/// All flags with their SkyServer names (the `PhotoFlags` dictionary table).
pub const PHOTO_FLAGS: &[(&str, u64)] = &[
    ("primary", PhotoFlag::Primary as u64),
    ("secondary", PhotoFlag::Secondary as u64),
    ("child", PhotoFlag::Child as u64),
    ("blended", PhotoFlag::Blended as u64),
    ("saturated", PhotoFlag::Saturated as u64),
    ("bright", PhotoFlag::Bright as u64),
    ("edge", PhotoFlag::Edge as u64),
    ("ok run", PhotoFlag::OkRun as u64),
    ("interpolated", PhotoFlag::Interpolated as u64),
    ("deblend_nopeak", PhotoFlag::DeblendNopeak as u64),
    ("moved", PhotoFlag::Moved as u64),
    ("near_bright_star", PhotoFlag::NearBrightStar as u64),
];

/// Look up a flag bit by its SkyServer name (case-insensitive).  This is the
/// behaviour of the `dbo.fPhotoFlags(name)` scalar UDF.
pub fn photo_flag_value(name: &str) -> Option<u64> {
    let lower = name.trim().to_ascii_lowercase();
    PHOTO_FLAGS
        .iter()
        .find(|(n, _)| *n == lower)
        .map(|(_, v)| *v)
}

/// Object classification codes (the `PhotoType` dictionary).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(i64)]
pub enum PhotoType {
    Unknown = 0,
    CosmicRay = 1,
    Defect = 2,
    Galaxy = 3,
    Ghost = 4,
    KnownObject = 5,
    Star = 6,
    Trail = 8,
    Sky = 9,
}

/// Name -> type-code mapping (the `dbo.fPhotoType(name)` UDF).
pub const PHOTO_TYPES: &[(&str, i64)] = &[
    ("unknown", PhotoType::Unknown as i64),
    ("cosmicray", PhotoType::CosmicRay as i64),
    ("defect", PhotoType::Defect as i64),
    ("galaxy", PhotoType::Galaxy as i64),
    ("ghost", PhotoType::Ghost as i64),
    ("knownobject", PhotoType::KnownObject as i64),
    ("star", PhotoType::Star as i64),
    ("trail", PhotoType::Trail as i64),
    ("sky", PhotoType::Sky as i64),
];

/// Look up a type code by name (case-insensitive).
pub fn photo_type_value(name: &str) -> Option<i64> {
    let lower = name.trim().to_ascii_lowercase();
    PHOTO_TYPES
        .iter()
        .find(|(n, _)| *n == lower)
        .map(|(_, v)| *v)
}

/// Spectral classification codes (the `SpecClass` dictionary).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(i64)]
pub enum SpecClass {
    Unknown = 0,
    Star = 1,
    Galaxy = 2,
    Qso = 3,
    HizQso = 4,
    Sky = 5,
    StarLate = 6,
    GalEm = 7,
}

/// Name -> spectral-class mapping.
pub const SPEC_CLASSES: &[(&str, i64)] = &[
    ("unknown", SpecClass::Unknown as i64),
    ("star", SpecClass::Star as i64),
    ("galaxy", SpecClass::Galaxy as i64),
    ("qso", SpecClass::Qso as i64),
    ("hizqso", SpecClass::HizQso as i64),
    ("sky", SpecClass::Sky as i64),
    ("star_late", SpecClass::StarLate as i64),
    ("galem", SpecClass::GalEm as i64),
];

/// Look up a spectral class code by name.
pub fn spec_class_value(name: &str) -> Option<i64> {
    let lower = name.trim().to_ascii_lowercase();
    SPEC_CLASSES
        .iter()
        .find(|(n, _)| *n == lower)
        .map(|(_, v)| *v)
}

/// The five SDSS photometric bands, in the canonical u, g, r, i, z order.
pub const BANDS: [char; 5] = ['u', 'g', 'r', 'i', 'z'];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_lookup_by_name() {
        assert_eq!(photo_flag_value("saturated"), Some(0x10));
        assert_eq!(photo_flag_value("SATURATED"), Some(0x10));
        assert_eq!(photo_flag_value("primary"), Some(1));
        assert_eq!(photo_flag_value("OK Run"), Some(0x80));
        assert_eq!(photo_flag_value("no such flag"), None);
    }

    #[test]
    fn flag_bits_are_distinct_powers_of_two() {
        let mut seen = 0u64;
        for (_, bit) in PHOTO_FLAGS {
            assert_eq!(bit.count_ones(), 1, "flag {bit:#x} is not a single bit");
            assert_eq!(seen & bit, 0, "flag {bit:#x} reused");
            seen |= bit;
        }
    }

    #[test]
    fn type_lookup() {
        assert_eq!(photo_type_value("galaxy"), Some(3));
        assert_eq!(photo_type_value("Star"), Some(6));
        assert_eq!(photo_type_value("nebula"), None);
    }

    #[test]
    fn spec_class_lookup() {
        assert_eq!(spec_class_value("qso"), Some(3));
        assert_eq!(spec_class_value("GALAXY"), Some(2));
        assert_eq!(spec_class_value("none"), None);
    }

    #[test]
    fn bands_order() {
        assert_eq!(BANDS, ['u', 'g', 'r', 'i', 'z']);
    }
}
