//! Photometric object synthesis.
//!
//! Generates `PhotoObj` records with the statistical properties the paper's
//! queries depend on: 5-band magnitudes in several measurement styles with
//! realistic colour correlations, bit flags, primary/secondary duplicates
//! from strip overlaps (~11 %), deblended parent/child families, row/column
//! velocities with a rare asteroid population, ellipticities (with elongated
//! fast movers), and the three positional encodings (ra/dec, unit vector,
//! 20-deep HTM id).

use crate::config::SurveyConfig;
use crate::flags::{PhotoFlag, PhotoType};
use crate::geometry::SurveyGeometry;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use skyserver_htm::{lookup_id, Vec3, SDSS_DEPTH};

/// One row of the PhotoObj table.
#[derive(Debug, Clone, PartialEq)]
pub struct PhotoObjRecord {
    pub obj_id: i64,
    /// 0 when the object is not a deblended child.
    pub parent_id: i64,
    pub field_id: i64,
    pub run: i64,
    pub camcol: i64,
    pub field: i64,
    /// Object number within its field.
    pub obj: i64,
    pub n_child: i64,
    /// PhotoType code (3 = galaxy, 6 = star, ...).
    pub obj_type: i64,
    /// Probability the object is a point source.
    pub prob_psf: f64,
    /// Bit flags (see [`crate::flags::PhotoFlag`]).
    pub flags: i64,
    pub status: i64,
    // Position.
    pub ra: f64,
    pub dec: f64,
    pub cx: f64,
    pub cy: f64,
    pub cz: f64,
    pub htm_id: i64,
    // Motion (pixels per exposure; asteroids move, §11 query 15).
    pub rowv: f64,
    pub colv: f64,
    // Magnitudes: model, PSF, Petrosian and fibre, in the five bands.
    pub model_mag: [f64; 5],
    pub psf_mag: [f64; 5],
    pub petro_mag: [f64; 5],
    pub fiber_mag: [f64; 5],
    pub model_mag_err: [f64; 5],
    // Shape.
    pub petro_rad_r: f64,
    pub iso_a: [f64; 5],
    pub iso_b: [f64; 5],
    /// Stokes Q parameter per band (ellipticity component).
    pub q: [f64; 5],
    /// Stokes U parameter per band (ellipticity component).
    pub u: [f64; 5],
}

impl PhotoObjRecord {
    /// Is the primary flag set?
    pub fn is_primary(&self) -> bool {
        (self.flags as u64) & (PhotoFlag::Primary as u64) != 0
    }

    /// Velocity-squared value used by the asteroid query.
    pub fn velocity_sq(&self) -> f64 {
        self.rowv * self.rowv + self.colv * self.colv
    }
}

/// One row of the Profile table: the radial light profile of an object,
/// stored as a binary blob of mean surface brightnesses in concentric rings
/// (the paper stores it as a blob accessed through functions, §9.1.1).
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileRecord {
    pub obj_id: i64,
    /// Number of radial bins.
    pub n_bins: i64,
    /// Encoded blob: 8-byte little-endian f64 per bin.
    pub profile_blob: Vec<u8>,
}

impl ProfileRecord {
    /// Decode the blob back into radial bin values (the `fProfileValue`
    /// access-function behaviour).
    pub fn values(&self) -> Vec<f64> {
        self.profile_blob
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk")))
            .collect()
    }
}

/// Output of photometric synthesis.
#[derive(Debug, Clone, Default)]
pub struct PhotoCatalog {
    pub objects: Vec<PhotoObjRecord>,
    pub profiles: Vec<ProfileRecord>,
}

/// Generate the photometric catalog.
pub fn generate_photo(
    config: &SurveyConfig,
    geometry: &SurveyGeometry,
    rng: &mut ChaCha8Rng,
) -> PhotoCatalog {
    let mut catalog = PhotoCatalog::default();
    let mut next_obj_id: i64 = 1_000_000;
    let (ra_min, ra_max) = geometry.ra_range;
    let (dec_min, dec_max) = geometry.dec_range;
    let n_asteroids = ((config.target_objects as f64) * config.asteroid_fraction).ceil() as usize;

    for i in 0..config.target_objects {
        let ra = rng.gen_range(ra_min..ra_max);
        let dec = rng.gen_range(dec_min..dec_max);
        let field = geometry
            .field_containing(ra, dec)
            .or_else(|| geometry.fields.first())
            .expect("the survey footprint is never empty");
        let is_galaxy = rng.gen_bool(config.galaxy_fraction);
        let obj_type = if is_galaxy {
            PhotoType::Galaxy as i64
        } else if rng.gen_bool(0.98) {
            PhotoType::Star as i64
        } else {
            PhotoType::Unknown as i64
        };
        // Plant slow-moving asteroids among the first objects (deterministic
        // count) -- they must be star-like to mimic the paper's moving
        // point sources.
        let is_asteroid = i < n_asteroids;
        next_obj_id += 1;
        let obj_id = next_obj_id;
        let mut record = synthesize_object(
            obj_id,
            field.field_id,
            field.run,
            field.camcol,
            field.field,
            (i % 1000) as i64,
            ra,
            dec,
            if is_asteroid {
                PhotoType::Star as i64
            } else {
                obj_type
            },
            is_galaxy && !is_asteroid,
            rng,
        );
        record.flags |= PhotoFlag::Primary as i64 | PhotoFlag::OkRun as i64;
        if is_asteroid {
            // Velocity magnitude in the Q15 window: 50 <= v^2 < 1000.
            let v = rng.gen_range(8.0..30.0);
            let theta: f64 = rng.gen_range(0.0..std::f64::consts::FRAC_PI_2);
            record.rowv = v * theta.cos();
            record.colv = v * theta.sin();
            record.flags |= PhotoFlag::Moved as i64;
        }
        // Saturated bright objects (a few percent).
        if record.model_mag[2] < 15.0 && rng.gen_bool(0.5) {
            record.flags |= PhotoFlag::Saturated as i64 | PhotoFlag::Bright as i64;
        }
        let primary_index = catalog.objects.len();
        catalog.profiles.push(make_profile(&record, rng));
        catalog.objects.push(record);

        // Duplicate (secondary) detection from strip/stripe overlap.
        if rng.gen_bool(config.duplicate_fraction) {
            next_obj_id += 1;
            let mut dup = catalog.objects[primary_index].clone();
            dup.obj_id = next_obj_id;
            dup.flags &= !(PhotoFlag::Primary as i64);
            dup.flags |= PhotoFlag::Secondary as i64;
            // The duplicate is observed in the other strip: different run.
            dup.run += 1;
            for b in 0..5 {
                dup.model_mag[b] += rng.gen_range(-0.02..0.02);
            }
            catalog.profiles.push(make_profile(&dup, rng));
            catalog.objects.push(dup);
        }

        // Deblended families: the parent loses primary status, two children
        // appear (children of blends are the primaries, §9).
        if rng.gen_bool(config.deblend_fraction) {
            let parent_pos = catalog.objects.len() - 1;
            // Re-borrow the primary (it may be the duplicate that was pushed
            // last; always deblend the *primary* record).
            let parent_obj_id = catalog.objects[primary_index].obj_id;
            {
                let parent = &mut catalog.objects[primary_index];
                parent.flags &= !(PhotoFlag::Primary as i64);
                parent.flags |= PhotoFlag::Blended as i64;
                parent.n_child = 2;
            }
            let _ = parent_pos;
            for c in 0..2 {
                next_obj_id += 1;
                let base = catalog.objects[primary_index].clone();
                let mut child = synthesize_object(
                    next_obj_id,
                    base.field_id,
                    base.run,
                    base.camcol,
                    base.field,
                    base.obj * 10 + c,
                    base.ra + rng.gen_range(-0.0005..0.0005),
                    base.dec + rng.gen_range(-0.0005..0.0005),
                    base.obj_type,
                    base.obj_type == PhotoType::Galaxy as i64,
                    rng,
                );
                child.parent_id = parent_obj_id;
                child.flags |=
                    PhotoFlag::Child as i64 | PhotoFlag::Primary as i64 | PhotoFlag::OkRun as i64;
                catalog.profiles.push(make_profile(&child, rng));
                catalog.objects.push(child);
            }
        }
    }

    plant_fast_mover_pairs(config, geometry, rng, &mut next_obj_id, &mut catalog);
    catalog
}

/// Plant the fast-moving NEO pairs of the modified Query 15: elongated
/// detections in adjacent fields whose red and green magnitudes line up.
fn plant_fast_mover_pairs(
    config: &SurveyConfig,
    geometry: &SurveyGeometry,
    rng: &mut ChaCha8Rng,
    next_obj_id: &mut i64,
    catalog: &mut PhotoCatalog,
) {
    for pair in 0..config.fast_mover_pairs {
        let Some(field) = geometry.fields.get(pair * 3 % geometry.fields.len().max(1)) else {
            break;
        };
        let base_mag = rng.gen_range(16.0..20.0);
        let ra = field.ra;
        let dec = field.dec;
        for member in 0..2 {
            *next_obj_id += 1;
            let mut obj = synthesize_object(
                *next_obj_id,
                field.field_id,
                field.run,
                field.camcol,
                field.field + member, // adjacent fields
                900 + member,
                ra + member as f64 * 0.02, // within 4 arcminutes
                dec,
                PhotoType::Star as i64,
                false,
                rng,
            );
            obj.parent_id = 0;
            obj.flags |=
                PhotoFlag::Primary as i64 | PhotoFlag::OkRun as i64 | PhotoFlag::Moved as i64;
            // Elongated streak: isoA/isoB > 1.5 and large Stokes parameters.
            for b in 0..5 {
                obj.iso_a[b] = rng.gen_range(2.5..4.0);
                obj.iso_b[b] = obj.iso_a[b] / rng.gen_range(1.8..2.5);
                obj.q[b] = 0.5;
                obj.u[b] = 0.3;
            }
            // The member detected in r is fainter in all other bands, and the
            // g member vice versa, with |r - g| < 2 between the pair.
            let faint = 24.0;
            if member == 0 {
                obj.fiber_mag = [faint, faint, base_mag, faint, faint];
            } else {
                obj.fiber_mag = [
                    faint,
                    base_mag + rng.gen_range(-1.5..1.5),
                    faint,
                    faint,
                    faint,
                ];
            }
            obj.rowv = 80.0; // too fast for the slow-mover query window
            obj.colv = 80.0;
            catalog.profiles.push(make_profile(&obj, rng));
            catalog.objects.push(obj);
        }
    }
}

/// Synthesize one object's photometry at a position.
#[allow(clippy::too_many_arguments)]
fn synthesize_object(
    obj_id: i64,
    field_id: i64,
    run: i64,
    camcol: i64,
    field: i64,
    obj: i64,
    ra: f64,
    dec: f64,
    obj_type: i64,
    extended: bool,
    rng: &mut ChaCha8Rng,
) -> PhotoObjRecord {
    let v = Vec3::from_radec(ra, dec);
    // Brightness: apparent magnitude distribution rises toward the faint
    // end (roughly Euclidean number counts), clipped to the survey limits.
    let u01: f64 = rng.gen_range(0.0f64..1.0).max(1e-6);
    let r_mag = 22.5 + 2.5 * u01.log10().max(-3.4); // ~14 .. 22.5
                                                    // Colours: galaxies are redder on average than stars.
    let g_r = if extended {
        rng.gen_range(0.4..1.2)
    } else {
        rng.gen_range(-0.2..0.8)
    };
    let u_g = rng.gen_range(0.5..2.0);
    let r_i = rng.gen_range(0.0..0.6);
    let i_z = rng.gen_range(-0.1..0.4);
    let model_mag = [
        r_mag + g_r + u_g,
        r_mag + g_r,
        r_mag,
        r_mag - r_i,
        r_mag - r_i - i_z,
    ];
    let mut psf_mag = model_mag;
    let mut petro_mag = model_mag;
    let mut fiber_mag = model_mag;
    let mut model_mag_err = [0.0; 5];
    for b in 0..5 {
        // Point sources: PSF ≈ model; extended sources lose light in the PSF
        // aperture and gain in the Petrosian aperture.
        let extended_offset = if extended {
            rng.gen_range(0.3..0.9)
        } else {
            rng.gen_range(-0.02..0.02)
        };
        psf_mag[b] = model_mag[b] + extended_offset;
        petro_mag[b] = model_mag[b]
            - if extended {
                rng.gen_range(0.0..0.2)
            } else {
                0.0
            };
        fiber_mag[b] = model_mag[b] + rng.gen_range(0.05..0.25);
        // Fainter objects have larger errors.
        model_mag_err[b] =
            0.01 + 0.02 * ((model_mag[b] - 14.0).max(0.0) / 8.0).powi(2) + rng.gen_range(0.0..0.01);
    }
    let (iso_a, iso_b, q, u) = if extended {
        let mut a = [0.0; 5];
        let mut bb = [0.0; 5];
        let mut qq = [0.0; 5];
        let mut uu = [0.0; 5];
        for b in 0..5 {
            a[b] = rng.gen_range(1.0..6.0);
            bb[b] = a[b] * rng.gen_range(0.5..1.0);
            let e = (a[b] - bb[b]) / (a[b] + bb[b]);
            let phi: f64 = rng.gen_range(0.0..std::f64::consts::PI);
            qq[b] = e * (2.0 * phi).cos();
            uu[b] = e * (2.0 * phi).sin();
        }
        (a, bb, qq, uu)
    } else {
        ([1.2; 5], [1.1; 5], [0.02; 5], [0.02; 5])
    };
    PhotoObjRecord {
        obj_id,
        parent_id: 0,
        field_id,
        run,
        camcol,
        field,
        obj,
        n_child: 0,
        obj_type,
        prob_psf: if extended {
            rng.gen_range(0.0..0.3)
        } else {
            rng.gen_range(0.7..1.0)
        },
        flags: 0,
        status: 1,
        ra,
        dec,
        cx: v.x,
        cy: v.y,
        cz: v.z,
        htm_id: lookup_id(ra, dec, SDSS_DEPTH) as i64,
        rowv: rng.gen_range(-0.05..0.05),
        colv: rng.gen_range(-0.05..0.05),
        model_mag,
        psf_mag,
        petro_mag,
        fiber_mag,
        model_mag_err,
        petro_rad_r: if extended {
            rng.gen_range(2.0..15.0)
        } else {
            rng.gen_range(1.0..2.0)
        },
        iso_a,
        iso_b,
        q,
        u,
    }
}

fn make_profile(obj: &PhotoObjRecord, rng: &mut ChaCha8Rng) -> ProfileRecord {
    let n_bins = if obj.obj_type == PhotoType::Galaxy as i64 {
        12
    } else {
        6
    };
    let mut blob = Vec::with_capacity(n_bins * 8);
    let central = 10f64.powf((22.5 - obj.model_mag[2]) / 2.5);
    for bin in 0..n_bins {
        let value = central / (1.0 + bin as f64).powi(2) * rng.gen_range(0.9..1.1);
        blob.extend_from_slice(&value.to_le_bytes());
    }
    ProfileRecord {
        obj_id: obj.obj_id,
        n_bins: n_bins as i64,
        profile_blob: blob,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn catalog() -> (SurveyConfig, PhotoCatalog) {
        let config = SurveyConfig::tiny();
        let geometry = SurveyGeometry::generate(&config);
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        (config.clone(), generate_photo(&config, &geometry, &mut rng))
    }

    #[test]
    fn generation_is_deterministic() {
        let (_, a) = catalog();
        let (_, b) = catalog();
        assert_eq!(a.objects.len(), b.objects.len());
        assert_eq!(a.objects[10], b.objects[10]);
        assert_eq!(a.profiles[5].values(), b.profiles[5].values());
    }

    #[test]
    fn row_count_close_to_expected() {
        let (config, cat) = catalog();
        let expected = config.expected_photo_rows() as f64;
        let got = cat.objects.len() as f64;
        assert!(
            (got - expected).abs() / expected < 0.15,
            "expected ~{expected}, got {got}"
        );
    }

    #[test]
    fn primary_fraction_near_80_percent() {
        let (_, cat) = catalog();
        let primaries = cat.objects.iter().filter(|o| o.is_primary()).count();
        let fraction = primaries as f64 / cat.objects.len() as f64;
        assert!(
            (0.72..=0.95).contains(&fraction),
            "primary fraction {fraction} outside the paper's ~80% ballpark"
        );
    }

    #[test]
    fn duplicates_are_not_primary_and_children_reference_parents() {
        let (_, cat) = catalog();
        let mut children = 0;
        for o in &cat.objects {
            let flags = o.flags as u64;
            if flags & PhotoFlag::Secondary as u64 != 0 {
                assert!(!o.is_primary());
            }
            if flags & PhotoFlag::Child as u64 != 0 {
                children += 1;
                assert!(o.parent_id != 0);
                assert!(cat.objects.iter().any(|p| p.obj_id == o.parent_id));
            }
            if flags & PhotoFlag::Blended as u64 != 0 {
                assert!(!o.is_primary(), "deblended parents are never primary");
                assert_eq!(o.n_child, 2);
            }
        }
        assert!(children > 0);
    }

    #[test]
    fn asteroid_population_matches_config() {
        let (config, cat) = catalog();
        let slow_movers = cat
            .objects
            .iter()
            .filter(|o| {
                let v2 = o.velocity_sq();
                (50.0..1000.0).contains(&v2) && o.rowv >= 0.0 && o.colv >= 0.0
            })
            .count();
        let expected = ((config.target_objects as f64) * config.asteroid_fraction).ceil() as usize;
        assert_eq!(slow_movers, expected);
    }

    #[test]
    fn fast_mover_pairs_are_elongated_and_adjacent() {
        let (config, cat) = catalog();
        let fast: Vec<&PhotoObjRecord> = cat
            .objects
            .iter()
            .filter(|o| {
                o.iso_a[2] / o.iso_b[2] > 1.5
                    && o.iso_a[2] > 2.0
                    && o.parent_id == 0
                    && o.fiber_mag.iter().any(|&m| m > 23.0)
            })
            .collect();
        assert!(fast.len() >= config.fast_mover_pairs * 2 - 1);
    }

    #[test]
    fn magnitudes_and_errors_in_survey_range() {
        let (_, cat) = catalog();
        for o in &cat.objects {
            for b in 0..5 {
                assert!(o.model_mag[b] > 10.0 && o.model_mag[b] < 30.0);
                assert!(o.model_mag_err[b] > 0.0 && o.model_mag_err[b] < 1.0);
            }
            assert!((o.cx * o.cx + o.cy * o.cy + o.cz * o.cz - 1.0).abs() < 1e-9);
            assert!(skyserver_htm::is_valid_id(o.htm_id as u64));
        }
    }

    #[test]
    fn galaxies_are_more_extended_than_stars() {
        let (_, cat) = catalog();
        let mean = |ty: i64, f: &dyn Fn(&PhotoObjRecord) -> f64| {
            let v: Vec<f64> = cat
                .objects
                .iter()
                .filter(|o| o.obj_type == ty)
                .map(f)
                .collect();
            v.iter().sum::<f64>() / v.len().max(1) as f64
        };
        let galaxy_rad = mean(PhotoType::Galaxy as i64, &|o| o.petro_rad_r);
        let star_rad = mean(PhotoType::Star as i64, &|o| o.petro_rad_r);
        assert!(galaxy_rad > star_rad);
        // PSF magnitude is fainter than model magnitude for extended sources.
        let galaxy_psf_excess = mean(PhotoType::Galaxy as i64, &|o| o.psf_mag[2] - o.model_mag[2]);
        assert!(galaxy_psf_excess > 0.2);
    }

    #[test]
    fn profiles_decode_and_decline() {
        let (_, cat) = catalog();
        for p in cat.profiles.iter().take(50) {
            let values = p.values();
            assert_eq!(values.len() as i64, p.n_bins);
            assert!(values[0] > *values.last().unwrap());
        }
    }
}
