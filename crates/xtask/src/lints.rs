//! The skylint rules and driver.
//!
//! Rule catalogue (see ARCHITECTURE.md "Static analysis & verification"):
//!
//! | lint | scope | what it catches |
//! |------|-------|-----------------|
//! | `no-unwrap` | web request paths + sql executor hot path + failpoints + release catalog | `.unwrap()` that turns a recoverable error into a worker panic |
//! | `no-expect` | same | `.expect(...)` likewise |
//! | `no-panic` | same | `panic!` / `unreachable!` / `todo!` / `unimplemented!` |
//! | `no-slice-index` | web request paths | `x[i]` indexing that can panic on malformed input |
//! | `lock-unwrap` | whole workspace | `.lock()/.read()/.write()` + `.unwrap()` — poisons cascade across requests |
//! | `value-clone-in-kernel` | vectorized kernels | `.clone()` inside the batch kernels (per-value clones defeat the point) |
//! | `forbid-unsafe` | every workspace crate | missing `#![forbid(unsafe_code)]` |
//! | `doc-links` | *.md in root + docs/ | relative links to files that do not exist |
//! | `ci-drift` | .github/workflows/ci.yml | `-p <package>` / `--bin <name>` that the workspace no longer has |
//!
//! Escapes: `// skylint: allow(<lint>) <reason>` on the finding's line or
//! the line above.  The reason is mandatory; unused escapes are themselves
//! findings so the allowlist can never go stale.

use crate::lexer::{lex, strip_cfg_test, AllowDirective, Tok};
use std::fmt;
use std::path::{Path, PathBuf};

/// One lint finding.
#[derive(Debug)]
pub struct Finding {
    /// File the finding is in, repo-relative.
    pub file: PathBuf,
    /// 1-based line.
    pub line: usize,
    /// Lint name (e.g. `no-unwrap`).
    pub lint: &'static str,
    /// What is wrong.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.lint,
            self.message
        )
    }
}

/// Which rule families apply to a source file.
struct Scope {
    /// `no-unwrap` / `no-expect` / `no-panic`.
    hot_path: bool,
    /// `no-slice-index` (web request handlers only — the sql executor
    /// indexes ordinal-verified rows, which the plan verifier covers).
    slice_index: bool,
    /// `value-clone-in-kernel`.
    kernel: bool,
}

fn scope_for(rel: &Path) -> Scope {
    let p = rel.to_string_lossy().replace('\\', "/");
    let web = p.starts_with("crates/web/src/");
    let executor = p == "crates/sql/src/executor.rs" || p.starts_with("crates/sql/src/exec/");
    // The fault-injection layer sits on the storage read path and inside
    // executor checkpoints: an accidental panic there would take down
    // the very workers the chaos suite exists to protect.
    let failpoints = p == "crates/storage/src/failpoints.rs";
    // The release catalog runs inside every admin publish and every
    // pinned read: a panic there poisons the serving slot for all
    // requests, so it gets the same no-panic discipline.
    let releases = p == "crates/storage/src/release.rs";
    Scope {
        hot_path: web || executor || failpoints || releases,
        slice_index: web,
        kernel: p == "crates/sql/src/exec/vector.rs",
    }
}

/// Run every lint over the workspace rooted at `root`.  Returns all
/// findings (empty = clean).
pub fn run(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for crate_dir in workspace_crates(root)? {
        let src = crate_dir.join("src");
        check_forbid_unsafe(root, &crate_dir, &mut findings);
        for file in rust_files(&src)? {
            lint_rust_file(root, &file, &mut findings)?;
        }
    }
    check_doc_links(root, &mut findings)?;
    check_ci_drift(root, &mut findings)?;
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(findings)
}

/// The workspace's own crates (vendored stand-ins are third-party code and
/// exempt).
fn workspace_crates(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(root.join("crates"))? {
        let path = entry?.path();
        if path.is_dir() && path.join("Cargo.toml").exists() {
            out.push(path);
        }
    }
    out.sort();
    Ok(out)
}

fn rust_files(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    if !dir.exists() {
        return Ok(out);
    }
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d)? {
            let path = entry?.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

fn lint_rust_file(root: &Path, file: &Path, findings: &mut Vec<Finding>) -> std::io::Result<()> {
    let rel = file.strip_prefix(root).unwrap_or(file).to_path_buf();
    let scope = scope_for(&rel);
    let src = std::fs::read_to_string(file)?;
    let lexed = lex(&src);
    let tokens = strip_cfg_test(lexed.tokens);
    let mut allows: Vec<(AllowDirective, bool)> =
        lexed.allows.into_iter().map(|d| (d, false)).collect();

    let mut raw: Vec<(usize, &'static str, String)> = Vec::new();
    scan_tokens(&tokens, &scope, &mut raw);

    for (line, lint, message) in raw {
        let allowed = allows.iter_mut().any(|(d, used)| {
            let hit = d.lint == lint && (d.line == line || d.line + 1 == line);
            if hit && !d.reason.is_empty() {
                *used = true;
            }
            hit && !d.reason.is_empty()
        });
        if !allowed {
            findings.push(Finding {
                file: rel.clone(),
                line,
                lint,
                message,
            });
        }
    }
    for (d, used) in allows {
        if d.reason.is_empty() {
            findings.push(Finding {
                file: rel.clone(),
                line: d.line,
                lint: "allow-without-reason",
                message: format!("skylint escape for {} has no written reason", d.lint),
            });
        } else if !used {
            findings.push(Finding {
                file: rel.clone(),
                line: d.line,
                lint: "unused-allow",
                message: format!("skylint escape for {} matches no finding", d.lint),
            });
        }
    }
    Ok(())
}

/// All token-stream rules in one pass.
fn scan_tokens(tokens: &[Tok], scope: &Scope, out: &mut Vec<(usize, &'static str, String)>) {
    let text = |i: usize| tokens.get(i).map(|t| t.text.as_str());
    for i in 0..tokens.len() {
        let t = &tokens[i];
        // lock-unwrap fires everywhere; the plain no-unwrap/no-expect rules
        // only in hot-path scopes (a finding is reported once — the more
        // specific lock-unwrap wins).
        let lock_unwrap = t.text == "."
            && matches!(text(i + 1), Some("lock" | "read" | "write"))
            && text(i + 2) == Some("(")
            && text(i + 3) == Some(")")
            && text(i + 4) == Some(".")
            && text(i + 5) == Some("unwrap")
            && text(i + 6) == Some("(");
        if lock_unwrap {
            out.push((
                t.line,
                "lock-unwrap",
                format!(
                    ".{}().unwrap() panics forever once the lock is poisoned; \
                     recover with unwrap_or_else(PoisonError::into_inner)",
                    text(i + 1).unwrap_or_default()
                ),
            ));
            continue;
        }
        if !scope.hot_path && !scope.kernel {
            continue;
        }
        let method_call = |name: &str, j: usize| {
            tokens[j].text == "." && text(j + 1) == Some(name) && text(j + 2) == Some("(")
        };
        if scope.hot_path {
            // Skip the `.unwrap()` that belongs to a lock-unwrap match at
            // i-4 — already reported above.
            let after_lock = i >= 4
                && tokens[i - 4].text == "."
                && matches!(text(i - 3), Some("lock" | "read" | "write"))
                && text(i - 2) == Some("(")
                && text(i - 1) == Some(")");
            if method_call("unwrap", i) && !after_lock {
                out.push((
                    t.line,
                    "no-unwrap",
                    "unwrap() on a hot path panics the worker; propagate the error".into(),
                ));
            }
            if method_call("expect", i) {
                out.push((
                    t.line,
                    "no-expect",
                    "expect() on a hot path panics the worker; propagate the error".into(),
                ));
            }
            if matches!(
                t.text.as_str(),
                "panic" | "unreachable" | "todo" | "unimplemented"
            ) && text(i + 1) == Some("!")
            {
                out.push((
                    t.line,
                    "no-panic",
                    format!("{}! on a hot path kills the worker thread", t.text),
                ));
            }
            if scope.slice_index && t.text == "[" && i > 0 {
                let prev = &tokens[i - 1].text;
                let indexable = prev == ")"
                    || prev == "]"
                    || (prev
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_alphabetic() || c == '_')
                        && !is_keyword(prev));
                if indexable {
                    out.push((
                        t.line,
                        "no-slice-index",
                        format!("indexing after `{prev}` panics when out of bounds; use .get()"),
                    ));
                }
            }
        }
        if scope.kernel && method_call("clone", i) {
            out.push((
                t.line,
                "value-clone-in-kernel",
                "clone() inside a vectorized kernel; operate on borrowed values".into(),
            ));
        }
    }
}

/// Keywords that can precede `[` without forming an index expression
/// (`impl [T]`, `mut [0u8; 4]`, `in [a, b]`, ...).
fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "as" | "box"
            | "break"
            | "const"
            | "continue"
            | "crate"
            | "dyn"
            | "else"
            | "enum"
            | "extern"
            | "fn"
            | "for"
            | "if"
            | "impl"
            | "in"
            | "let"
            | "loop"
            | "match"
            | "mod"
            | "move"
            | "mut"
            | "pub"
            | "ref"
            | "return"
            | "static"
            | "struct"
            | "trait"
            | "type"
            | "unsafe"
            | "use"
            | "where"
            | "while"
    )
}

/// Satellite: every workspace crate locks in `#![forbid(unsafe_code)]`.
fn check_forbid_unsafe(root: &Path, crate_dir: &Path, findings: &mut Vec<Finding>) {
    let entry = ["src/lib.rs", "src/main.rs"]
        .iter()
        .map(|p| crate_dir.join(p))
        .find(|p| p.exists());
    let Some(entry) = entry else { return };
    let rel = entry.strip_prefix(root).unwrap_or(&entry).to_path_buf();
    let has = std::fs::read_to_string(&entry)
        .map(|s| s.contains("#![forbid(unsafe_code)]"))
        .unwrap_or(false);
    if !has {
        findings.push(Finding {
            file: rel,
            line: 1,
            lint: "forbid-unsafe",
            message: "crate root is missing #![forbid(unsafe_code)]".into(),
        });
    }
}

/// Satellite: relative links in the repo's markdown must resolve.
fn check_doc_links(root: &Path, findings: &mut Vec<Finding>) -> std::io::Result<()> {
    let mut docs: Vec<PathBuf> = Vec::new();
    for dir in [root.to_path_buf(), root.join("docs")] {
        if !dir.exists() {
            continue;
        }
        for entry in std::fs::read_dir(&dir)? {
            let path = entry?.path();
            if path.extension().is_some_and(|e| e == "md") {
                docs.push(path);
            }
        }
    }
    docs.sort();
    for doc in docs {
        let rel = doc.strip_prefix(root).unwrap_or(&doc).to_path_buf();
        let text = std::fs::read_to_string(&doc)?;
        for (lineno, line) in text.lines().enumerate() {
            let mut rest = line;
            while let Some(open) = rest.find("](") {
                let after = &rest[open + 2..];
                let Some(close) = after.find(')') else { break };
                let target = &after[..close];
                rest = &after[close + 1..];
                let target = target.split('#').next().unwrap_or("");
                if target.is_empty() || target.contains("://") || target.starts_with("mailto:") {
                    continue;
                }
                let base = doc.parent().unwrap_or(root);
                if !base.join(target).exists() {
                    findings.push(Finding {
                        file: rel.clone(),
                        line: lineno + 1,
                        lint: "doc-links",
                        message: format!("broken relative link: {target}"),
                    });
                }
            }
        }
    }
    Ok(())
}

/// Satellite: CI steps must reference packages and binaries that exist.
fn check_ci_drift(root: &Path, findings: &mut Vec<Finding>) -> std::io::Result<()> {
    let ci = root.join(".github/workflows/ci.yml");
    if !ci.exists() {
        return Ok(());
    }
    let rel = ci.strip_prefix(root).unwrap_or(&ci).to_path_buf();

    let mut packages: Vec<String> = Vec::new();
    let mut bins: Vec<String> = Vec::new();
    for crate_dir in workspace_crates(root)? {
        let manifest = std::fs::read_to_string(crate_dir.join("Cargo.toml"))?;
        if let Some(name) = toml_package_name(&manifest) {
            bins.push(name.clone()); // a crate's default bin shares its name
            packages.push(name);
        }
        for line in manifest.lines() {
            // `name = "…"` lines under [[bin]] sections double as bin names;
            // collecting every name over-approximates, which is safe here.
            if let Some(name) = toml_string_value(line, "name") {
                if !bins.contains(&name) {
                    bins.push(name);
                }
            }
        }
        let bin_dir = crate_dir.join("src/bin");
        if bin_dir.exists() {
            for entry in std::fs::read_dir(&bin_dir)? {
                let path = entry?.path();
                if path.extension().is_some_and(|e| e == "rs") {
                    if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                        bins.push(stem.to_string());
                    }
                }
            }
        }
    }

    let text = std::fs::read_to_string(&ci)?;
    for (lineno, line) in text.lines().enumerate() {
        let words: Vec<&str> = line.split_whitespace().collect();
        for w in words.windows(2) {
            let (flag, value) = (
                w[0],
                w[1].trim_matches(|c: char| !c.is_alphanumeric() && c != '_' && c != '-'),
            );
            let missing = match flag {
                "-p" | "--package" => !packages.iter().any(|p| p == value),
                "--bin" => !bins.iter().any(|b| b == value),
                _ => false,
            };
            if missing {
                findings.push(Finding {
                    file: rel.clone(),
                    line: lineno + 1,
                    lint: "ci-drift",
                    message: format!(
                        "CI references {flag} {value}, which the workspace does not have"
                    ),
                });
            }
        }
    }
    Ok(())
}

fn toml_package_name(manifest: &str) -> Option<String> {
    let mut in_package = false;
    for line in manifest.lines() {
        let t = line.trim();
        if t.starts_with('[') {
            in_package = t == "[package]";
            continue;
        }
        if in_package {
            if let Some(name) = toml_string_value(t, "name") {
                return Some(name);
            }
        }
    }
    None
}

fn toml_string_value(line: &str, key: &str) -> Option<String> {
    let t = line.trim();
    let rest = t.strip_prefix(key)?.trim_start();
    let rest = rest.strip_prefix('=')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    rest.split('"').next().map(str::to_string)
}
