//! Workspace automation tasks (`cargo run -p xtask -- <task>`).
//!
//! The only task today is `lint` — the **skylint** repo-specific lint pass
//! described in ARCHITECTURE.md ("Static analysis & verification").  It is
//! wired into CI as a named step and fails the build on any finding.

#![forbid(unsafe_code)]

mod lexer;
mod lints;

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(),
        Some(other) => {
            eprintln!("unknown task: {other}");
            eprintln!("usage: cargo run -p xtask -- lint");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: cargo run -p xtask -- lint");
            ExitCode::FAILURE
        }
    }
}

fn run_lint() -> ExitCode {
    let root = workspace_root();
    match lints::run(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("skylint: clean");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            println!("skylint: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("skylint: io error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The workspace root: `CARGO_MANIFEST_DIR` is `crates/xtask`.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

#[cfg(test)]
mod tests {
    use crate::lexer::{lex, strip_cfg_test};

    #[test]
    fn lexer_skips_comments_strings_and_lifetimes() {
        let src = r##"
            // a .unwrap() in a comment
            /* panic!("nested /* block */ comment") */
            fn f<'a>(s: &'a str) -> char {
                let _msg = "contains .unwrap() and panic!";
                let _raw = r#"also .expect( inside"#;
                '\n'
            }
        "##;
        let lexed = lex(src);
        let texts: Vec<&str> = lexed.tokens.iter().map(|t| t.text.as_str()).collect();
        assert!(!texts.contains(&"unwrap"));
        assert!(!texts.contains(&"panic"));
        assert!(!texts.contains(&"expect"));
        assert!(texts.contains(&"fn"));
    }

    #[test]
    fn cfg_test_blocks_are_stripped() {
        let src = r#"
            fn live() { work(); }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { x.unwrap(); }
            }
            fn also_live() {}
        "#;
        let tokens = strip_cfg_test(lex(src).tokens);
        let texts: Vec<&str> = tokens.iter().map(|t| t.text.as_str()).collect();
        assert!(!texts.contains(&"unwrap"));
        assert!(texts.contains(&"live"));
        assert!(texts.contains(&"also_live"));
    }

    #[test]
    fn allow_directives_parse() {
        let src = "// skylint: allow(no-unwrap) checked two lines above\nx.unwrap();\n";
        let lexed = lex(src);
        assert_eq!(lexed.allows.len(), 1);
        assert_eq!(lexed.allows[0].lint, "no-unwrap");
        assert_eq!(lexed.allows[0].reason, "checked two lines above");
        assert_eq!(lexed.allows[0].line, 1);
    }

    #[test]
    fn the_workspace_is_lint_clean() {
        let findings = crate::lints::run(&crate::workspace_root()).unwrap();
        let rendered: Vec<String> = findings.iter().map(ToString::to_string).collect();
        assert!(
            rendered.is_empty(),
            "skylint findings:\n{}",
            rendered.join("\n")
        );
    }
}
