//! A minimal token-level Rust lexer for skylint.
//!
//! The linter does not need a real parse tree — every rule is a query over
//! the token stream ("`.unwrap` followed by `(`", "`[` preceded by an
//! identifier").  What it *does* need is to never be fooled by comments,
//! string/char literals or lifetimes, which is exactly what this hand-rolled
//! lexer handles (there is no crates.io access, so no syn/proc-macro2).

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Tok {
    /// Token text: an identifier, a number, or a single punctuation char.
    /// String literals are collapsed to `"…"` so rules can never match
    /// inside them.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: usize,
}

/// A `// skylint: allow(<lint>) <reason>` escape found in a comment.
#[derive(Debug, Clone)]
pub struct AllowDirective {
    /// The lint name inside `allow(...)`.
    pub lint: String,
    /// The justification after the closing parenthesis (may be empty —
    /// the driver rejects empty reasons).
    pub reason: String,
    /// 1-based line of the comment.
    pub line: usize,
}

/// The lexer output: code tokens plus the allow-escapes seen in comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens (comments, literals-content and lifetimes stripped).
    pub tokens: Vec<Tok>,
    /// skylint allow directives harvested from `//` comments.
    pub allows: Vec<AllowDirective>,
}

/// Lex a Rust source file.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0;
    let mut line = 1;
    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if chars.get(i + 1) == Some(&'/') => {
                let start = i;
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
                let comment: String = chars[start..i].iter().collect();
                if let Some(d) = parse_allow(&comment, line) {
                    out.allows.push(d);
                }
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                // Block comments nest in Rust.
                let mut depth = 1;
                i += 2;
                while i < chars.len() && depth > 0 {
                    if chars[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                let tok_line = line;
                i = skip_string(&chars, i, &mut line);
                out.tokens.push(Tok {
                    text: "\"…\"".into(),
                    line: tok_line,
                });
            }
            'r' | 'b' if raw_string_start(&chars, i).is_some() => {
                let tok_line = line;
                i = skip_raw_string(&chars, i, &mut line);
                out.tokens.push(Tok {
                    text: "\"…\"".into(),
                    line: tok_line,
                });
            }
            '\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                let next = chars.get(i + 1);
                let is_lifetime = matches!(next, Some(ch) if (ch.is_alphabetic() || *ch == '_'))
                    && chars.get(i + 2) != Some(&'\'');
                if is_lifetime {
                    // Emit `'name` as one token: keeping the quote stops the
                    // slice-index rule from mistaking `&'a [T]` for indexing.
                    let start = i;
                    i += 1;
                    while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                    out.tokens.push(Tok {
                        text: chars[start..i].iter().collect(),
                        line,
                    });
                } else {
                    i = skip_char_literal(&chars, i);
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.tokens.push(Tok {
                    text: chars[start..i].iter().collect(),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                // A fractional part: `.` followed by a digit (leaves `..`
                // ranges and `.method()` calls alone).
                if chars.get(i) == Some(&'.')
                    && chars.get(i + 1).is_some_and(|d| d.is_ascii_digit())
                {
                    i += 1;
                    while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                }
                out.tokens.push(Tok {
                    text: chars[start..i].iter().collect(),
                    line,
                });
            }
            c => {
                out.tokens.push(Tok {
                    text: c.to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// `r"…"` / `r#"…"#` / `br#"…"#` start detection: returns the index of the
/// opening quote.
fn raw_string_start(chars: &[char], i: usize) -> Option<usize> {
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    (chars.get(j) == Some(&'"')).then_some(j)
}

fn skip_string(chars: &[char], mut i: usize, line: &mut usize) -> usize {
    i += 1; // opening quote
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            '"' => return i + 1,
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

fn skip_raw_string(chars: &[char], mut i: usize, line: &mut usize) -> usize {
    if chars.get(i) == Some(&'b') {
        i += 1;
    }
    i += 1; // 'r'
    let mut hashes = 0;
    while chars.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    i += 1; // opening quote
    while i < chars.len() {
        if chars[i] == '\n' {
            *line += 1;
            i += 1;
        } else if chars[i] == '"' {
            let mut j = i + 1;
            let mut seen = 0;
            while seen < hashes && chars.get(j) == Some(&'#') {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return j;
            }
            i += 1;
        } else {
            i += 1;
        }
    }
    i
}

fn skip_char_literal(chars: &[char], mut i: usize) -> usize {
    i += 1; // opening quote
    if chars.get(i) == Some(&'\\') {
        i += 2;
        // `\u{…}` escapes
        if chars.get(i - 1) == Some(&'{') || chars.get(i) == Some(&'{') {
            while i < chars.len() && chars[i] != '\'' {
                i += 1;
            }
            return i + 1;
        }
    } else {
        i += 1;
    }
    if chars.get(i) == Some(&'\'') {
        i += 1;
    }
    i
}

/// Parse `skylint: allow(<lint>) <reason>` out of a `//` comment.
fn parse_allow(comment: &str, line: usize) -> Option<AllowDirective> {
    let body = comment.trim_start_matches('/').trim();
    let rest = body.strip_prefix("skylint:")?.trim();
    let rest = rest.strip_prefix("allow(")?;
    let close = rest.find(')')?;
    Some(AllowDirective {
        lint: rest[..close].trim().to_string(),
        reason: rest[close + 1..].trim().to_string(),
        line,
    })
}

/// Remove every token region belonging to a `#[cfg(test)]` item (the module
/// holding unit tests).  Findings inside tests are noise — `unwrap` in a
/// test is idiomatic.
pub fn strip_cfg_test(tokens: Vec<Tok>) -> Vec<Tok> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut i = 0;
    while i < tokens.len() {
        if is_cfg_test_attr(&tokens, i) {
            // Skip the attribute itself: `#` `[` … matching `]`.
            let mut depth = 0;
            while i < tokens.len() {
                match tokens[i].text.as_str() {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            i += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
            // Skip the annotated item: up to a top-level `;` or the
            // matching `}` of its first brace block.  `nest` tracks all
            // bracket kinds so a `;` inside `[u8; 4]` or `(…)` does not end
            // the item early.
            let (mut braces, mut nest) = (0i32, 0i32);
            while i < tokens.len() {
                match tokens[i].text.as_str() {
                    "{" => {
                        braces += 1;
                        nest += 1;
                    }
                    "(" | "[" => nest += 1,
                    ")" | "]" => nest -= 1,
                    "}" => {
                        braces -= 1;
                        nest -= 1;
                        if braces == 0 {
                            i += 1;
                            break;
                        }
                    }
                    ";" if nest == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
                i += 1;
            }
        } else {
            out.push(tokens[i].clone());
            i += 1;
        }
    }
    out
}

/// Does `#` at `i` start a `#[cfg(test)]`-style attribute (any cfg whose
/// argument list mentions `test`)?
fn is_cfg_test_attr(tokens: &[Tok], i: usize) -> bool {
    let t = |k: usize| tokens.get(i + k).map(|t| t.text.as_str());
    if t(0) != Some("#") || t(1) != Some("[") || t(2) != Some("cfg") || t(3) != Some("(") {
        return false;
    }
    let mut depth = 0;
    for tok in &tokens[i + 3..] {
        match tok.text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return false;
                }
            }
            "test" => return true,
            _ => {}
        }
    }
    false
}
