//! Region covers: turning a sky region into a list of HTM id ranges.
//!
//! This is the Rust equivalent of the SkyServer's `spHTM_Cover(<area>)`
//! table-valued function: given an area (circle, half-space intersection or
//! polygon) it returns rows of `[start, end)` HTM id ranges at the object
//! depth (20 by default).  Joining those ranges against a B-tree index on the
//! `htmID` column restricts a spatial search to a handful of triangles.

use crate::region::{Convex, Coverage};
use crate::trixel::{id_range_at_depth, root_trixels, Trixel, SDSS_DEPTH};

/// A half-open range `[lo, hi)` of HTM ids at the *object* depth, tagged with
/// whether the underlying trixels are fully inside the region (`full`) or
/// only partially overlap it (in which case candidates must be re-checked
/// against the exact region).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HtmRange {
    pub lo: u64,
    pub hi: u64,
    pub full: bool,
}

impl HtmRange {
    /// Number of depth-`object_depth` trixels covered by the range.
    pub fn len(&self) -> u64 {
        self.hi - self.lo
    }

    /// True when the range covers no trixels.
    pub fn is_empty(&self) -> bool {
        self.hi <= self.lo
    }

    /// True if the object-depth id falls in this range.
    pub fn contains(&self, id: u64) -> bool {
        self.lo <= id && id < self.hi
    }
}

/// Options controlling the cover computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoverOptions {
    /// Depth at which partial trixels stop being subdivided.
    pub cover_depth: u8,
    /// Depth of the ids stored on objects (ranges are emitted at this depth).
    pub object_depth: u8,
    /// Upper bound on the number of ranges before subdivision stops early.
    pub max_ranges: usize,
}

impl Default for CoverOptions {
    fn default() -> Self {
        CoverOptions {
            cover_depth: 10,
            object_depth: SDSS_DEPTH,
            max_ranges: 4096,
        }
    }
}

/// The result of covering a region: a sorted, merged list of id ranges.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HtmCover {
    ranges: Vec<HtmRange>,
}

impl HtmCover {
    /// The ranges, sorted by `lo` and non-overlapping.
    pub fn ranges(&self) -> &[HtmRange] {
        &self.ranges
    }

    /// Number of ranges.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// True if the cover is empty (region missed the mesh entirely --
    /// impossible for non-degenerate regions).
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Does an object-depth HTM id fall inside the cover?
    pub fn contains(&self, id: u64) -> bool {
        // Binary search over the sorted ranges.
        let idx = self.ranges.partition_point(|r| r.hi <= id);
        self.ranges.get(idx).is_some_and(|r| r.contains(id))
    }

    /// Total number of object-depth trixels covered.
    pub fn total_trixels(&self) -> u64 {
        self.ranges.iter().map(HtmRange::len).sum()
    }
}

/// Compute the HTM cover of a convex region with default options.
pub fn cover(region: &Convex) -> HtmCover {
    cover_with(region, CoverOptions::default())
}

/// Compute the HTM cover of a convex region.
pub fn cover_with(region: &Convex, opts: CoverOptions) -> HtmCover {
    assert!(
        opts.cover_depth <= opts.object_depth,
        "cover depth must not exceed object depth"
    );
    let mut out: Vec<HtmRange> = Vec::new();
    let mut stack: Vec<Trixel> = root_trixels().to_vec();
    while let Some(t) = stack.pop() {
        match region.classify(&t) {
            Coverage::Outside => {}
            Coverage::Full => push_range(&mut out, &t, opts.object_depth, true),
            Coverage::Partial => {
                if t.depth() >= opts.cover_depth || out.len() >= opts.max_ranges {
                    push_range(&mut out, &t, opts.object_depth, false);
                } else {
                    stack.extend(t.children());
                }
            }
        }
    }
    HtmCover {
        ranges: merge_ranges(out),
    }
}

fn push_range(out: &mut Vec<HtmRange>, t: &Trixel, object_depth: u8, full: bool) {
    let (lo, hi) = id_range_at_depth(t.id, object_depth);
    out.push(HtmRange { lo, hi, full });
}

/// Sort and merge adjacent/overlapping ranges.  Ranges with different
/// `full` flags are only merged when both are full or both are partial, so a
/// consumer can skip the exact-distance re-check for full ranges.
fn merge_ranges(mut ranges: Vec<HtmRange>) -> Vec<HtmRange> {
    ranges.sort_by_key(|r| (r.lo, r.hi));
    let mut merged: Vec<HtmRange> = Vec::with_capacity(ranges.len());
    for r in ranges {
        if let Some(last) = merged.last_mut() {
            if r.lo <= last.hi && r.full == last.full {
                last.hi = last.hi.max(r.hi);
                continue;
            }
        }
        merged.push(r);
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::lookup_id;
    use crate::region::Convex;
    use crate::vector::Vec3;

    #[test]
    fn cover_of_small_circle_is_small() {
        let region = Convex::circle(185.0, -0.5, 1.0 / 60.0); // 1 arcminute
        let c = cover(&region);
        assert!(!c.is_empty());
        assert!(
            c.len() < 64,
            "1' circle should need few ranges, got {}",
            c.len()
        );
        // The fraction of the sphere covered should be tiny.
        let total = c.total_trixels() as f64;
        let sphere = 8.0 * 4f64.powi(i32::from(SDSS_DEPTH));
        assert!(total / sphere < 1e-6);
    }

    #[test]
    fn cover_contains_ids_of_points_inside_region() {
        let region = Convex::circle(200.0, 15.0, 0.5);
        let c = cover(&region);
        // Points inside the region must have covered HTM ids: this is the
        // completeness property the database join relies on.
        for i in 0..30 {
            for j in 0..30 {
                let ra = 199.5 + i as f64 * (1.0 / 30.0);
                let dec = 14.5 + j as f64 * (1.0 / 30.0);
                if region.contains_radec(ra, dec) {
                    let id = lookup_id(ra, dec, SDSS_DEPTH);
                    assert!(
                        c.contains(id),
                        "point ({ra},{dec}) id {id} missing from cover"
                    );
                }
            }
        }
    }

    #[test]
    fn full_ranges_really_are_inside() {
        let region = Convex::circle(100.0, 40.0, 2.0);
        let c = cover_with(
            &region,
            CoverOptions {
                cover_depth: 8,
                ..CoverOptions::default()
            },
        );
        let full: Vec<&HtmRange> = c.ranges().iter().filter(|r| r.full).collect();
        assert!(
            !full.is_empty(),
            "a 2-degree circle should have full trixels at depth 8"
        );
    }

    #[test]
    fn ranges_are_sorted_and_disjoint() {
        let region = Convex::rect(150.0, 160.0, 0.0, 5.0);
        let c = cover(&region);
        let rs = c.ranges();
        for w in rs.windows(2) {
            assert!(w[0].hi <= w[1].lo, "ranges overlap: {:?} {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn polygon_cover_contains_polygon_points() {
        let poly = Convex::polygon(&[(10.0, 0.0), (12.0, 0.0), (12.0, 2.0), (10.0, 2.0)]);
        let c = cover(&poly);
        let p = Vec3::from_radec(11.0, 1.0);
        assert!(poly.contains(p));
        let id = lookup_id(11.0, 1.0, SDSS_DEPTH);
        assert!(c.contains(id));
    }

    #[test]
    fn deeper_cover_is_tighter() {
        let region = Convex::circle(250.0, -30.0, 0.25);
        let coarse = cover_with(
            &region,
            CoverOptions {
                cover_depth: 6,
                ..CoverOptions::default()
            },
        );
        let fine = cover_with(
            &region,
            CoverOptions {
                cover_depth: 12,
                ..CoverOptions::default()
            },
        );
        assert!(
            fine.total_trixels() < coarse.total_trixels(),
            "finer cover should enclose fewer object-depth trixels"
        );
    }

    #[test]
    fn merge_ranges_collapses_adjacent() {
        let merged = merge_ranges(vec![
            HtmRange {
                lo: 0,
                hi: 4,
                full: false,
            },
            HtmRange {
                lo: 4,
                hi: 8,
                full: false,
            },
            HtmRange {
                lo: 10,
                hi: 12,
                full: true,
            },
            HtmRange {
                lo: 12,
                hi: 16,
                full: true,
            },
            HtmRange {
                lo: 20,
                hi: 24,
                full: false,
            },
        ]);
        assert_eq!(
            merged,
            vec![
                HtmRange {
                    lo: 0,
                    hi: 8,
                    full: false
                },
                HtmRange {
                    lo: 10,
                    hi: 16,
                    full: true
                },
                HtmRange {
                    lo: 20,
                    hi: 24,
                    full: false
                },
            ]
        );
    }

    #[test]
    fn range_contains() {
        let r = HtmRange {
            lo: 100,
            hi: 200,
            full: false,
        };
        assert!(r.contains(100));
        assert!(r.contains(199));
        assert!(!r.contains(200));
        assert!(!r.contains(99));
        assert_eq!(r.len(), 100);
        assert!(!r.is_empty());
    }
}
