//! # skyserver-htm
//!
//! A from-scratch implementation of the Johns Hopkins **Hierarchical
//! Triangular Mesh** (HTM) used by the SDSS SkyServer for spatial indexing
//! of the celestial sphere (Szalay et al., SIGMOD 2002, §9.1.4).
//!
//! The sphere is inscribed in an octahedron; each of the 8 faces is
//! recursively split into 4 spherical triangles ("trixels").  A point's HTM
//! id encodes the path from the root face down to the containing trixel, so
//!
//! * nearby points share id prefixes,
//! * every trixel's descendants occupy a contiguous id range, and therefore
//! * an ordinary B-tree on the id column answers "all objects in this sky
//!   region" queries by scanning a handful of id ranges.
//!
//! ## Quick example
//!
//! ```
//! use skyserver_htm::{lookup_id, Convex, cover, SDSS_DEPTH};
//!
//! // The htmID stored on a PhotoObj row:
//! let id = lookup_id(185.0, -0.5, SDSS_DEPTH);
//!
//! // The id ranges a query for "objects within 1 arcminute" must scan:
//! let region = Convex::circle_arcmin(185.0, -0.5, 1.0);
//! let ranges = cover(&region);
//! assert!(ranges.contains(id));
//! ```

#![forbid(unsafe_code)]

pub mod cover;
pub mod mesh;
pub mod region;
pub mod trixel;
pub mod vector;

pub use cover::{cover, cover_with, CoverOptions, HtmCover, HtmRange};
pub use mesh::{lookup_id, lookup_id_vec, lookup_trixel, lookup_trixel_vec, trixel_of_id};
pub use region::{Convex, Coverage, Halfspace};
pub use trixel::{
    depth_of_id, id_range_at_depth, id_to_name, is_valid_id, name_to_id, parent_id, root_trixels,
    Trixel, MAX_DEPTH, SDSS_DEPTH,
};
pub use vector::{angular_distance_arcmin, angular_distance_deg, Vec3};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_radec() -> impl Strategy<Value = (f64, f64)> {
        (0.0..360.0f64, -89.9..89.9f64)
    }

    proptest! {
        /// The trixel returned by lookup always contains the point.
        #[test]
        fn lookup_contains_point((ra, dec) in arb_radec(), depth in 0u8..16) {
            let t = lookup_trixel(ra, dec, depth);
            prop_assert!(t.contains(Vec3::from_radec(ra, dec)));
        }

        /// Round-tripping (ra, dec) through the unit vector is stable.
        #[test]
        fn radec_vector_round_trip((ra, dec) in arb_radec()) {
            let (ra2, dec2) = Vec3::from_radec(ra, dec).to_radec();
            prop_assert!((ra - ra2).abs() < 1e-8 || (ra - ra2).abs() > 359.9);
            prop_assert!((dec - dec2).abs() < 1e-8);
        }

        /// Every point inside a circular region has its id covered by the
        /// region's HTM cover (completeness of the spatial index path).
        #[test]
        fn cover_is_complete((ra, dec) in (5.0..355.0f64, -80.0..80.0f64),
                             radius in 0.01..2.0f64,
                             dra in -1.0..1.0f64, ddec in -1.0..1.0f64) {
            let region = Convex::circle(ra, dec, radius);
            let c = cover(&region);
            let pra = ra + dra * radius;
            let pdec = (dec + ddec * radius).clamp(-89.9, 89.9);
            if region.contains_radec(pra, pdec) {
                let id = lookup_id(pra, pdec, SDSS_DEPTH);
                prop_assert!(c.contains(id));
            }
        }

        /// HTM names round-trip through ids.
        #[test]
        fn name_id_round_trip((ra, dec) in arb_radec(), depth in 0u8..20) {
            let id = lookup_id(ra, dec, depth);
            let name = id_to_name(id);
            prop_assert_eq!(name_to_id(&name).unwrap(), id);
        }

        /// Deeper ids always descend from shallower ids of the same point.
        #[test]
        fn id_prefix_property((ra, dec) in arb_radec(), d1 in 0u8..10, extra in 1u8..10) {
            let shallow = lookup_id(ra, dec, d1);
            let deep = lookup_id(ra, dec, d1 + extra);
            prop_assert_eq!(deep >> (2 * u32::from(extra)), shallow);
        }

        /// Arc angles are symmetric and within [0, 180].
        #[test]
        fn arc_angle_bounds((ra1, dec1) in arb_radec(), (ra2, dec2) in arb_radec()) {
            let d = angular_distance_deg(ra1, dec1, ra2, dec2);
            prop_assert!((0.0..=180.0001).contains(&d));
            let d2 = angular_distance_deg(ra2, dec2, ra1, dec1);
            prop_assert!((d - d2).abs() < 1e-9);
        }
    }
}
