//! Cartesian unit vectors on the celestial sphere and conversions to and
//! from equatorial (right ascension / declination) coordinates.
//!
//! The SkyServer stores three coordinate representations for every object:
//! `(ra, dec)` in degrees (J2000), the unit vector `(cx, cy, cz)` used for
//! fast arc-angle computations via dot products, and the 20-deep HTM id.
//! This module provides the first two and the conversions between them.

use std::ops::{Add, Mul, Neg, Sub};

/// Degrees-to-radians factor.
pub const DEG: f64 = std::f64::consts::PI / 180.0;
/// Radians-to-degrees factor.
pub const RAD: f64 = 180.0 / std::f64::consts::PI;
/// Arcminutes per degree.
pub const ARCMIN_PER_DEG: f64 = 60.0;
/// Arcseconds per degree.
pub const ARCSEC_PER_DEG: f64 = 3600.0;

/// A 3-dimensional Cartesian vector.  When used to represent a point on the
/// celestial sphere it is kept normalised to unit length.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Vec3 {
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

impl Vec3 {
    /// Construct a vector from components (not necessarily normalised).
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// The zero vector.
    pub const fn zero() -> Self {
        Vec3::new(0.0, 0.0, 0.0)
    }

    /// Build a unit vector from equatorial coordinates in **degrees**.
    ///
    /// `ra` (right ascension) runs 0..360, `dec` (declination) runs -90..90.
    pub fn from_radec(ra_deg: f64, dec_deg: f64) -> Self {
        let ra = ra_deg * DEG;
        let dec = dec_deg * DEG;
        let cd = dec.cos();
        Vec3::new(ra.cos() * cd, ra.sin() * cd, dec.sin())
    }

    /// Convert back to `(ra, dec)` in degrees.  `ra` is normalised to
    /// `[0, 360)`.
    pub fn to_radec(self) -> (f64, f64) {
        let v = self.normalized();
        let dec = v.z.clamp(-1.0, 1.0).asin() * RAD;
        let mut ra = v.y.atan2(v.x) * RAD;
        if ra < 0.0 {
            ra += 360.0;
        }
        if ra >= 360.0 {
            ra -= 360.0;
        }
        (ra, dec)
    }

    /// Dot product.
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Cross product.
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3::new(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    /// Euclidean norm.
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Return the unit-length version of this vector.  The zero vector is
    /// returned unchanged.
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        if n == 0.0 {
            self
        } else {
            Vec3::new(self.x / n, self.y / n, self.z / n)
        }
    }

    /// Arc angle between two (unit) vectors, in **degrees**.
    ///
    /// Uses the numerically stable `atan2(|a×b|, a·b)` form rather than
    /// `acos(a·b)` which loses precision for small separations -- the
    /// neighbourhood searches of the SkyServer operate at arcsecond scales.
    pub fn arc_angle_deg(self, o: Vec3) -> f64 {
        let cross = self.cross(o).norm();
        let dot = self.dot(o);
        cross.atan2(dot) * RAD
    }

    /// Arc angle in arcminutes, the unit used by `fGetNearbyObjEq`.
    pub fn arc_angle_arcmin(self, o: Vec3) -> f64 {
        self.arc_angle_deg(o) * ARCMIN_PER_DEG
    }

    /// Midpoint of two unit vectors projected back onto the sphere.
    pub fn midpoint(self, o: Vec3) -> Vec3 {
        (self + o).normalized()
    }

    /// True if every component is finite.
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

/// Angular distance in degrees between two `(ra, dec)` positions given in
/// degrees.  Convenience wrapper used throughout the catalog code.
pub fn angular_distance_deg(ra1: f64, dec1: f64, ra2: f64, dec2: f64) -> f64 {
    Vec3::from_radec(ra1, dec1).arc_angle_deg(Vec3::from_radec(ra2, dec2))
}

/// Angular distance in arcminutes between two `(ra, dec)` positions.
pub fn angular_distance_arcmin(ra1: f64, dec1: f64, ra2: f64, dec2: f64) -> f64 {
    angular_distance_deg(ra1, dec1, ra2, dec2) * ARCMIN_PER_DEG
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, eps: f64) -> bool {
        (a - b).abs() < eps
    }

    #[test]
    fn radec_round_trip() {
        for &(ra, dec) in &[
            (0.0, 0.0),
            (185.0, -0.5),
            (359.9, 89.0),
            (12.25, -45.5),
            (90.0, 0.0),
            (270.0, 30.0),
        ] {
            let v = Vec3::from_radec(ra, dec);
            assert!(close(v.norm(), 1.0, 1e-12));
            let (ra2, dec2) = v.to_radec();
            assert!(close(ra, ra2, 1e-9), "ra {ra} vs {ra2}");
            assert!(close(dec, dec2, 1e-9), "dec {dec} vs {dec2}");
        }
    }

    #[test]
    fn poles_have_unit_z() {
        let north = Vec3::from_radec(123.0, 90.0);
        assert!(close(north.z, 1.0, 1e-12));
        let south = Vec3::from_radec(17.0, -90.0);
        assert!(close(south.z, -1.0, 1e-12));
    }

    #[test]
    fn arc_angle_along_equator_equals_ra_difference() {
        let a = Vec3::from_radec(10.0, 0.0);
        let b = Vec3::from_radec(14.0, 0.0);
        assert!(close(a.arc_angle_deg(b), 4.0, 1e-9));
    }

    #[test]
    fn arc_angle_is_symmetric_and_nonnegative() {
        let a = Vec3::from_radec(200.0, 45.0);
        let b = Vec3::from_radec(201.0, 44.0);
        assert!(close(a.arc_angle_deg(b), b.arc_angle_deg(a), 1e-12));
        assert!(a.arc_angle_deg(b) > 0.0);
        assert!(close(a.arc_angle_deg(a), 0.0, 1e-12));
    }

    #[test]
    fn small_angles_are_accurate() {
        // Half an arcsecond separation: the survey's resolution limit.
        let a = Vec3::from_radec(185.0, 0.0);
        let b = Vec3::from_radec(185.0 + 0.5 / 3600.0, 0.0);
        let arcsec = a.arc_angle_deg(b) * ARCSEC_PER_DEG;
        assert!(close(arcsec, 0.5, 1e-6), "got {arcsec}");
    }

    #[test]
    fn cross_product_is_orthogonal() {
        let a = Vec3::from_radec(10.0, 20.0);
        let b = Vec3::from_radec(80.0, -30.0);
        let c = a.cross(b);
        assert!(close(c.dot(a), 0.0, 1e-12));
        assert!(close(c.dot(b), 0.0, 1e-12));
    }

    #[test]
    fn midpoint_is_equidistant() {
        let a = Vec3::from_radec(10.0, 10.0);
        let b = Vec3::from_radec(20.0, -5.0);
        let m = a.midpoint(b);
        assert!(close(m.arc_angle_deg(a), m.arc_angle_deg(b), 1e-9));
    }

    #[test]
    fn angular_distance_helpers() {
        assert!(close(angular_distance_deg(0.0, 0.0, 1.0, 0.0), 1.0, 1e-9));
        assert!(close(
            angular_distance_arcmin(0.0, 0.0, 1.0, 0.0),
            60.0,
            1e-6
        ));
    }
}
