//! Sky regions used by the spatial cover functions.
//!
//! Regions follow the SkyServer `spHTM_Cover(<area>)` interface: an area can
//! be a **circle** (ra, dec, radius), a **half-space** (the intersection of
//! planes with the unit sphere) or a **convex polygon** given by a sequence
//! of vertices.  Internally everything is represented as a [`Convex`]: an
//! intersection of half-spaces, which makes the trixel classification logic
//! uniform.

use crate::trixel::Trixel;
use crate::vector::{Vec3, DEG};

/// A half-space: the set of unit vectors `p` with `p · normal >= distance`.
///
/// A circular cap of angular radius `r` around a direction `c` is the
/// half-space `(c, cos r)`; a great circle has `distance = 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Halfspace {
    /// Unit normal of the bounding plane.
    pub normal: Vec3,
    /// Signed distance of the plane from the origin, in `[-1, 1]`.
    pub distance: f64,
}

impl Halfspace {
    /// Construct from a normal (normalised internally) and distance.
    pub fn new(normal: Vec3, distance: f64) -> Self {
        Halfspace {
            normal: normal.normalized(),
            distance,
        }
    }

    /// The cap of angular `radius_deg` degrees around `(ra, dec)`.
    pub fn cap(ra_deg: f64, dec_deg: f64, radius_deg: f64) -> Self {
        Halfspace {
            normal: Vec3::from_radec(ra_deg, dec_deg),
            distance: (radius_deg * DEG).cos(),
        }
    }

    /// Does the half-space contain the point?
    pub fn contains(&self, p: Vec3) -> bool {
        self.normal.dot(p) >= self.distance
    }

    /// Angular radius of the cap in degrees (only meaningful for
    /// `distance >= -1`).
    pub fn radius_deg(&self) -> f64 {
        self.distance.clamp(-1.0, 1.0).acos() * crate::vector::RAD
    }
}

/// How a trixel relates to a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Coverage {
    /// The trixel is entirely inside the region.
    Full,
    /// The trixel may partially overlap the region.
    Partial,
    /// The trixel is entirely outside the region.
    Outside,
}

/// A convex sky region: the intersection of one or more half-spaces.
#[derive(Debug, Clone, PartialEq)]
pub struct Convex {
    halfspaces: Vec<Halfspace>,
}

impl Convex {
    /// A convex made of the given half-spaces.  At least one is required.
    pub fn new(halfspaces: Vec<Halfspace>) -> Self {
        assert!(
            !halfspaces.is_empty(),
            "a Convex needs at least one halfspace"
        );
        Convex { halfspaces }
    }

    /// Circle region: all points within `radius_deg` of `(ra, dec)`.
    pub fn circle(ra_deg: f64, dec_deg: f64, radius_deg: f64) -> Self {
        Convex::new(vec![Halfspace::cap(ra_deg, dec_deg, radius_deg)])
    }

    /// Circle region with the radius in arcminutes (the unit of
    /// `fGetNearbyObjEq`).
    pub fn circle_arcmin(ra_deg: f64, dec_deg: f64, radius_arcmin: f64) -> Self {
        Convex::circle(ra_deg, dec_deg, radius_arcmin / 60.0)
    }

    /// Rectangle in (ra, dec): the intersection of four great/small circles.
    /// `ra` bounds wrap is not handled (callers split at the wrap point).
    pub fn rect(ra_min: f64, ra_max: f64, dec_min: f64, dec_max: f64) -> Self {
        assert!(ra_min < ra_max && dec_min < dec_max, "degenerate rectangle");
        // Declination band: two caps around the poles.
        let north = Halfspace {
            normal: Vec3::new(0.0, 0.0, 1.0),
            distance: (dec_min * DEG).sin(),
        };
        let south = Halfspace {
            normal: Vec3::new(0.0, 0.0, -1.0),
            distance: -(dec_max * DEG).sin(),
        };
        // RA wedge: two half-spaces whose normals are the "inward" tangents of
        // the bounding meridians.
        let lo = Halfspace {
            normal: Vec3::new(-(ra_min * DEG).sin(), (ra_min * DEG).cos(), 0.0),
            distance: 0.0,
        };
        let hi = Halfspace {
            normal: Vec3::new((ra_max * DEG).sin(), -(ra_max * DEG).cos(), 0.0),
            distance: 0.0,
        };
        Convex::new(vec![north, south, lo, hi])
    }

    /// Convex spherical polygon from vertices given in counter-clockwise
    /// order (as seen from outside the sphere).  Each edge contributes the
    /// great-circle half-space containing the polygon.
    pub fn polygon(vertices: &[(f64, f64)]) -> Self {
        assert!(vertices.len() >= 3, "polygon needs at least 3 vertices");
        let pts: Vec<Vec3> = vertices
            .iter()
            .map(|&(ra, dec)| Vec3::from_radec(ra, dec))
            .collect();
        let mut hs = Vec::with_capacity(pts.len());
        for i in 0..pts.len() {
            let a = pts[i];
            let b = pts[(i + 1) % pts.len()];
            hs.push(Halfspace::new(a.cross(b), 0.0));
        }
        Convex::new(hs)
    }

    /// The half-spaces making up this convex.
    pub fn halfspaces(&self) -> &[Halfspace] {
        &self.halfspaces
    }

    /// Point-in-region test.
    pub fn contains(&self, p: Vec3) -> bool {
        self.halfspaces.iter().all(|h| h.contains(p))
    }

    /// Point-in-region test from equatorial coordinates.
    pub fn contains_radec(&self, ra_deg: f64, dec_deg: f64) -> bool {
        self.contains(Vec3::from_radec(ra_deg, dec_deg))
    }

    /// Classify a trixel against this region.
    ///
    /// The test is *conservative*: `Full` and `Outside` are only returned
    /// when provably correct, otherwise `Partial`.  It uses the trixel's
    /// bounding cap (centre `c`, angular radius `rho`): for a half-space with
    /// normal `n` and distance `d = cos(theta)`,
    ///
    /// * the whole cap is inside  when `angle(n,c) + rho <= theta`,
    /// * the whole cap is outside when `angle(n,c) - rho >  theta`.
    pub fn classify(&self, trixel: &Trixel) -> Coverage {
        let c = trixel.center();
        let rho = trixel.bounding_radius_deg() * DEG;
        let mut full = true;
        for h in &self.halfspaces {
            let theta = h.distance.clamp(-1.0, 1.0).acos();
            let gamma = h.normal.dot(c).clamp(-1.0, 1.0).acos();
            if gamma - rho > theta {
                return Coverage::Outside;
            }
            if gamma + rho > theta {
                full = false;
            }
        }
        if full {
            Coverage::Full
        } else {
            Coverage::Partial
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trixel::root_trixels;

    #[test]
    fn cap_contains_its_center_and_excludes_antipode() {
        let h = Halfspace::cap(185.0, -0.5, 1.0);
        assert!(h.contains(Vec3::from_radec(185.0, -0.5)));
        assert!(!h.contains(Vec3::from_radec(5.0, 0.5)));
        assert!((h.radius_deg() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn circle_contains_points_within_radius_only() {
        let c = Convex::circle(100.0, 30.0, 0.5);
        assert!(c.contains_radec(100.0, 30.0));
        assert!(c.contains_radec(100.0, 30.4));
        assert!(!c.contains_radec(100.0, 30.6));
        assert!(!c.contains_radec(101.0, 30.0));
    }

    #[test]
    fn circle_arcmin_matches_degrees() {
        let a = Convex::circle(10.0, 10.0, 0.25);
        let b = Convex::circle_arcmin(10.0, 10.0, 15.0);
        assert!(a.contains_radec(10.0, 10.2) == b.contains_radec(10.0, 10.2));
        assert!(a.contains_radec(10.0, 10.3) == b.contains_radec(10.0, 10.3));
    }

    #[test]
    fn rect_contains_interior_excludes_exterior() {
        let r = Convex::rect(180.0, 190.0, -5.0, 5.0);
        assert!(r.contains_radec(185.0, 0.0));
        assert!(r.contains_radec(180.5, -4.5));
        assert!(!r.contains_radec(179.0, 0.0));
        assert!(!r.contains_radec(191.0, 0.0));
        assert!(!r.contains_radec(185.0, 6.0));
        assert!(!r.contains_radec(185.0, -6.0));
    }

    #[test]
    fn polygon_contains_centroid() {
        let p = Convex::polygon(&[(10.0, 10.0), (20.0, 10.0), (20.0, 20.0), (10.0, 20.0)]);
        assert!(p.contains_radec(15.0, 15.0));
        assert!(!p.contains_radec(25.0, 15.0));
        assert!(!p.contains_radec(15.0, 25.0));
    }

    #[test]
    fn classify_small_circle_against_roots() {
        let region = Convex::circle(45.0, 45.0, 0.1);
        let roots = root_trixels();
        let mut partial = 0;
        let mut outside = 0;
        for t in &roots {
            match region.classify(t) {
                Coverage::Full => panic!("a root trixel cannot be inside a 0.1 deg circle"),
                Coverage::Partial => partial += 1,
                Coverage::Outside => outside += 1,
            }
        }
        assert!(partial >= 1);
        assert!(outside >= 4, "most roots are far from the circle");
    }

    #[test]
    fn classify_full_when_trixel_deep_inside_big_circle() {
        // A 60-degree cap around the north pole fully contains small trixels
        // near the pole.
        let region = Convex::circle(0.0, 90.0, 60.0);
        let mut t = root_trixels()[7]; // N3 touches the pole
        for _ in 0..6 {
            t = t.children()[0]; // child 0 keeps corner 0 = near the pole side
        }
        // Find a deep trixel whose center is near the pole.
        let c = t.center();
        let (_, dec) = c.to_radec();
        if dec > 40.0 {
            assert_eq!(region.classify(&t), Coverage::Full);
        }
    }

    #[test]
    fn classification_is_conservative() {
        // For random trixels and a mid-size circle, Full implies all corners
        // inside and Outside implies all corners outside.
        let region = Convex::circle(200.0, -20.0, 5.0);
        let mut stack: Vec<Trixel> = root_trixels().to_vec();
        let mut checked = 0;
        while let Some(t) = stack.pop() {
            if t.depth() < 4 {
                stack.extend(t.children());
            }
            match region.classify(&t) {
                Coverage::Full => {
                    for v in &t.v {
                        assert!(region.contains(*v));
                    }
                }
                Coverage::Outside => {
                    for v in &t.v {
                        assert!(!region.contains(*v));
                    }
                }
                Coverage::Partial => {}
            }
            checked += 1;
        }
        assert!(checked > 8);
    }
}
