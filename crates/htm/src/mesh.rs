//! Point-to-trixel lookup: the core HTM operation.
//!
//! `lookup_id(ra, dec, depth)` walks the mesh from the octahedron root down
//! to `depth` levels, returning the 64-bit id of the trixel containing the
//! point.  At the SDSS depth of 20 the triangles are ~0.1 arcseconds on a
//! side, so the id is effectively a spatial hash with locality: nearby points
//! share long id prefixes and therefore sit close together in a B-tree.

use crate::trixel::{root_trixels, Trixel, MAX_DEPTH};
use crate::vector::Vec3;

/// Find the trixel of `depth` containing the unit vector `p`.
pub fn lookup_trixel_vec(p: Vec3, depth: u8) -> Trixel {
    assert!(depth <= MAX_DEPTH, "depth {depth} exceeds MAX_DEPTH");
    let p = p.normalized();
    let roots = root_trixels();
    // Pick the containing root; fall back to the closest one by centre to be
    // robust against points exactly on shared edges.
    let mut current = *roots.iter().find(|t| t.contains(p)).unwrap_or_else(|| {
        roots
            .iter()
            .min_by(|a, b| {
                a.center()
                    .arc_angle_deg(p)
                    .partial_cmp(&b.center().arc_angle_deg(p))
                    .unwrap()
            })
            .expect("there are always 8 roots")
    });
    for _ in 0..depth {
        let children = current.children();
        current = *children.iter().find(|t| t.contains(p)).unwrap_or_else(|| {
            children
                .iter()
                .min_by(|a, b| {
                    a.center()
                        .arc_angle_deg(p)
                        .partial_cmp(&b.center().arc_angle_deg(p))
                        .unwrap()
                })
                .expect("a trixel always has 4 children")
        });
    }
    current
}

/// Find the trixel of `depth` containing the `(ra, dec)` point (degrees).
pub fn lookup_trixel(ra_deg: f64, dec_deg: f64, depth: u8) -> Trixel {
    lookup_trixel_vec(Vec3::from_radec(ra_deg, dec_deg), depth)
}

/// HTM id of `(ra, dec)` at `depth`.  This is the value stored in the
/// `htmID` column of `PhotoObj` and `SpecObj`.
pub fn lookup_id(ra_deg: f64, dec_deg: f64, depth: u8) -> u64 {
    lookup_trixel(ra_deg, dec_deg, depth).id
}

/// HTM id of a unit vector at `depth`.
pub fn lookup_id_vec(p: Vec3, depth: u8) -> u64 {
    lookup_trixel_vec(p, depth).id
}

/// Reconstruct the trixel (with vertices) for an HTM id by replaying the
/// subdivision path encoded in the id.
pub fn trixel_of_id(id: u64) -> Trixel {
    assert!(crate::trixel::is_valid_id(id), "invalid HTM id {id}");
    let depth = crate::trixel::depth_of_id(id);
    // Extract the path: root index then child digits, most-significant first.
    let mut digits = Vec::with_capacity(depth as usize);
    let mut cur = id;
    for _ in 0..depth {
        digits.push((cur & 3) as usize);
        cur >>= 2;
    }
    let root_index = (cur - 8) as usize;
    let mut t = root_trixels()[root_index];
    for &d in digits.iter().rev() {
        t = t.children()[d];
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trixel::{depth_of_id, SDSS_DEPTH};

    #[test]
    fn lookup_depth_zero_gives_root() {
        let id = lookup_id(45.0, 45.0, 0);
        assert!((8..=15).contains(&id));
    }

    #[test]
    fn lookup_id_has_requested_depth() {
        for depth in [0u8, 1, 5, 10, 20] {
            let id = lookup_id(185.0, -0.5, depth);
            assert_eq!(depth_of_id(id), depth);
        }
    }

    #[test]
    fn containing_trixel_really_contains_the_point() {
        for &(ra, dec) in &[
            (0.1, 0.1),
            (185.0, -0.5),
            (359.0, 80.0),
            (90.0, -45.0),
            (123.456, 7.89),
            (271.0, -89.0),
        ] {
            let p = Vec3::from_radec(ra, dec);
            let t = lookup_trixel(ra, dec, 12);
            assert!(
                t.contains(p),
                "trixel {} does not contain ({ra},{dec})",
                t.name()
            );
        }
    }

    #[test]
    fn nearby_points_share_id_prefixes() {
        let a = lookup_id(185.0, -0.5, SDSS_DEPTH);
        let b = lookup_id(185.0 + 1e-4, -0.5 + 1e-4, SDSS_DEPTH);
        let far = lookup_id(5.0, 60.0, SDSS_DEPTH);
        // Shared prefix length in 2-bit digits (negative when the points do
        // not even share a root trixel).
        let shared = |x: u64, y: u64| {
            let mut x = x;
            let mut y = y;
            let mut lvl = i32::from(SDSS_DEPTH);
            while x != y {
                x >>= 2;
                y >>= 2;
                lvl -= 1;
            }
            lvl
        };
        assert!(shared(a, b) > shared(a, far));
    }

    #[test]
    fn id_difference_bounds_distance() {
        // Objects in the same depth-20 trixel are within ~0.2 arcsec.
        let t = lookup_trixel(200.0, 10.0, SDSS_DEPTH);
        assert!(t.bounding_radius_deg() * 3600.0 < 1.0);
    }

    #[test]
    fn trixel_of_id_round_trips() {
        for &(ra, dec) in &[(10.0, 10.0), (185.0, -0.5), (300.0, 60.0)] {
            for depth in [3u8, 8, 14, 20] {
                let t = lookup_trixel(ra, dec, depth);
                let rebuilt = trixel_of_id(t.id);
                assert_eq!(rebuilt.id, t.id);
                for (a, b) in rebuilt.v.iter().zip(t.v.iter()) {
                    assert!((*a - *b).norm() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn deeper_lookup_descends_from_shallower() {
        let shallow = lookup_id(42.0, 17.0, 6);
        let deep = lookup_id(42.0, 17.0, 12);
        assert_eq!(deep >> (2 * 6), shallow);
    }
}
