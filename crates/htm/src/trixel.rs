//! Trixels: the spherical triangles of the Hierarchical Triangular Mesh.
//!
//! The mesh starts from the 8 faces of an octahedron inscribed in the
//! celestial sphere (4 "north" and 4 "south" trixels).  Each trixel is
//! recursively split into 4 children by the midpoints of its edges.  A
//! trixel's id is a 64-bit integer: the level-0 ids are 8..=15
//! (`0b1000`..`0b1111`), and each level appends two bits (the child index
//! 0..=3), i.e. `child_id = parent_id * 4 + k`.  Consequently **all
//! descendants of a trixel occupy a contiguous id range**, which is what lets
//! a plain B-tree on the HTM id answer spatial range queries -- the trick the
//! SkyServer grafts onto SQL Server.

use crate::vector::Vec3;
use std::fmt;

/// Maximum subdivision depth supported by the 64-bit id encoding.
/// (4 bits for the root + 2 bits per level; the paper uses depth 20.)
pub const MAX_DEPTH: u8 = 28;

/// The depth used by the SDSS SkyServer for object ids (triangles ~0.1" on a
/// side).
pub const SDSS_DEPTH: u8 = 20;

/// A trixel: a spherical triangle at some depth of the mesh, identified by
/// its HTM id and carrying its three unit-vector corners.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Trixel {
    /// HTM id of this trixel (encodes the depth).
    pub id: u64,
    /// Corner vertices (unit vectors), in the conventional HTM order.
    pub v: [Vec3; 3],
}

/// The six octahedron vertices used to seed the mesh.
fn octahedron() -> [Vec3; 6] {
    [
        Vec3::new(0.0, 0.0, 1.0),  // v0: north pole
        Vec3::new(1.0, 0.0, 0.0),  // v1: ra=0
        Vec3::new(0.0, 1.0, 0.0),  // v2: ra=90
        Vec3::new(-1.0, 0.0, 0.0), // v3: ra=180
        Vec3::new(0.0, -1.0, 0.0), // v4: ra=270
        Vec3::new(0.0, 0.0, -1.0), // v5: south pole
    ]
}

/// The 8 level-0 trixels, ids 8..=15, in the canonical S0..S3, N0..N3 order.
pub fn root_trixels() -> [Trixel; 8] {
    let o = octahedron();
    [
        Trixel {
            id: 8,
            v: [o[1], o[5], o[2]],
        }, // S0
        Trixel {
            id: 9,
            v: [o[2], o[5], o[3]],
        }, // S1
        Trixel {
            id: 10,
            v: [o[3], o[5], o[4]],
        }, // S2
        Trixel {
            id: 11,
            v: [o[4], o[5], o[1]],
        }, // S3
        Trixel {
            id: 12,
            v: [o[1], o[0], o[4]],
        }, // N0
        Trixel {
            id: 13,
            v: [o[4], o[0], o[3]],
        }, // N1
        Trixel {
            id: 14,
            v: [o[3], o[0], o[2]],
        }, // N2
        Trixel {
            id: 15,
            v: [o[2], o[0], o[1]],
        }, // N3
    ]
}

impl Trixel {
    /// Depth of this trixel (0 for the 8 octahedron faces).
    pub fn depth(&self) -> u8 {
        depth_of_id(self.id)
    }

    /// Split into the 4 child trixels using edge midpoints.
    ///
    /// The child ordering follows the original JHU HTM library:
    /// child 0 keeps corner 0, child 1 keeps corner 1, child 2 keeps corner 2
    /// and child 3 is the central triangle of the three midpoints.
    pub fn children(&self) -> [Trixel; 4] {
        let w0 = self.v[1].midpoint(self.v[2]);
        let w1 = self.v[0].midpoint(self.v[2]);
        let w2 = self.v[0].midpoint(self.v[1]);
        let base = self.id << 2;
        [
            Trixel {
                id: base,
                v: [self.v[0], w2, w1],
            },
            Trixel {
                id: base + 1,
                v: [self.v[1], w0, w2],
            },
            Trixel {
                id: base + 2,
                v: [self.v[2], w1, w0],
            },
            Trixel {
                id: base + 3,
                v: [w0, w1, w2],
            },
        ]
    }

    /// True if the unit vector `p` lies inside (or on the boundary of) this
    /// spherical triangle.
    ///
    /// A point is inside when it is on the non-negative side of the three
    /// great-circle planes through consecutive corner pairs (corners are
    /// ordered counter-clockwise as seen from outside the sphere).
    pub fn contains(&self, p: Vec3) -> bool {
        const EPS: f64 = -1e-12;
        self.v[0].cross(self.v[1]).dot(p) >= EPS
            && self.v[1].cross(self.v[2]).dot(p) >= EPS
            && self.v[2].cross(self.v[0]).dot(p) >= EPS
    }

    /// Geometric centre of the trixel, projected onto the sphere.
    pub fn center(&self) -> Vec3 {
        (self.v[0] + self.v[1] + self.v[2]).normalized()
    }

    /// Angular radius (degrees) of the bounding cap around [`Trixel::center`].
    pub fn bounding_radius_deg(&self) -> f64 {
        let c = self.center();
        self.v
            .iter()
            .map(|&v| c.arc_angle_deg(v))
            .fold(0.0, f64::max)
    }

    /// Approximate solid-angle area of the trixel in square degrees, using
    /// Girard's theorem (spherical excess).
    pub fn area_sq_deg(&self) -> f64 {
        let a = self.v[1].arc_angle_deg(self.v[2]).to_radians();
        let b = self.v[0].arc_angle_deg(self.v[2]).to_radians();
        let c = self.v[0].arc_angle_deg(self.v[1]).to_radians();
        let s = (a + b + c) / 2.0;
        let t = ((s / 2.0).tan()
            * ((s - a) / 2.0).tan()
            * ((s - b) / 2.0).tan()
            * ((s - c) / 2.0).tan())
        .max(0.0);
        let excess = 4.0 * t.sqrt().atan();
        excess * crate::vector::RAD * crate::vector::RAD
    }

    /// The contiguous range of descendant ids at `depth` (exclusive upper
    /// bound).  Requires `depth >= self.depth()`.
    pub fn id_range_at_depth(&self, depth: u8) -> (u64, u64) {
        id_range_at_depth(self.id, depth)
    }

    /// Human-readable HTM name, e.g. `N32` or `S0123`.
    pub fn name(&self) -> String {
        id_to_name(self.id)
    }
}

/// Depth encoded in an HTM id (0 = root trixel).  Panics on ids below 8.
pub fn depth_of_id(id: u64) -> u8 {
    assert!(id >= 8, "HTM ids start at 8 (got {id})");
    let bits = 64 - id.leading_zeros();
    ((bits - 4) / 2) as u8
}

/// True if `id` is a syntactically valid HTM id (root prefix in 8..=15).
pub fn is_valid_id(id: u64) -> bool {
    if id < 8 {
        return false;
    }
    let bits = 64 - id.leading_zeros();
    (bits - 4).is_multiple_of(2) && ((bits - 4) / 2) as u8 <= MAX_DEPTH
}

/// Contiguous descendant id range `[lo, hi)` of `id` at the given `depth`.
pub fn id_range_at_depth(id: u64, depth: u8) -> (u64, u64) {
    let d = depth_of_id(id);
    assert!(
        depth >= d,
        "requested depth {depth} is above the trixel depth {d}"
    );
    let shift = 2 * u32::from(depth - d);
    (id << shift, (id + 1) << shift)
}

/// Parent id of a (non-root) trixel id.
pub fn parent_id(id: u64) -> Option<u64> {
    if depth_of_id(id) == 0 {
        None
    } else {
        Some(id >> 2)
    }
}

/// Convert an HTM id to its conventional name: `N`/`S` plus the root index
/// and one digit (0-3) per level.
pub fn id_to_name(id: u64) -> String {
    assert!(is_valid_id(id), "invalid HTM id {id}");
    let depth = depth_of_id(id);
    let mut digits = Vec::with_capacity(depth as usize + 1);
    let mut cur = id;
    for _ in 0..depth {
        digits.push((cur & 3) as u8);
        cur >>= 2;
    }
    // cur is now 8..=15
    let root = cur - 8;
    let (hemi, idx) = if root < 4 {
        ('S', root)
    } else {
        ('N', root - 4)
    };
    let mut s = String::with_capacity(depth as usize + 2);
    s.push(hemi);
    s.push(char::from(b'0' + idx as u8));
    for d in digits.iter().rev() {
        s.push(char::from(b'0' + d));
    }
    s
}

/// Parse a conventional HTM name (e.g. `N012`) back to its id.
pub fn name_to_id(name: &str) -> Result<u64, HtmNameError> {
    let bytes = name.as_bytes();
    if bytes.len() < 2 {
        return Err(HtmNameError::TooShort);
    }
    let hemi = bytes[0];
    let root_idx = match bytes[1] {
        b'0'..=b'3' => u64::from(bytes[1] - b'0'),
        _ => return Err(HtmNameError::BadDigit(bytes[1] as char)),
    };
    let mut id = match hemi {
        b'S' | b's' => 8 + root_idx,
        b'N' | b'n' => 12 + root_idx,
        other => return Err(HtmNameError::BadHemisphere(other as char)),
    };
    for &b in &bytes[2..] {
        match b {
            b'0'..=b'3' => id = (id << 2) | u64::from(b - b'0'),
            _ => return Err(HtmNameError::BadDigit(b as char)),
        }
    }
    if !is_valid_id(id) {
        return Err(HtmNameError::TooDeep);
    }
    Ok(id)
}

/// Errors from [`name_to_id`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HtmNameError {
    /// Name is shorter than the minimum `N0` / `S0` form.
    TooShort,
    /// First character is not `N` or `S`.
    BadHemisphere(char),
    /// A level digit was not in `0..=3`.
    BadDigit(char),
    /// The name encodes a depth beyond [`MAX_DEPTH`].
    TooDeep,
}

impl fmt::Display for HtmNameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HtmNameError::TooShort => write!(f, "HTM name too short"),
            HtmNameError::BadHemisphere(c) => write!(f, "bad hemisphere letter {c:?}"),
            HtmNameError::BadDigit(c) => write!(f, "bad HTM digit {c:?}"),
            HtmNameError::TooDeep => write!(f, "HTM name deeper than MAX_DEPTH"),
        }
    }
}

impl std::error::Error for HtmNameError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::Vec3;

    #[test]
    fn eight_roots_cover_octahedron_vertices() {
        let roots = root_trixels();
        assert_eq!(roots.len(), 8);
        for r in &roots {
            assert_eq!(r.depth(), 0);
            for v in &r.v {
                assert!((v.norm() - 1.0).abs() < 1e-12);
            }
        }
        let ids: Vec<u64> = roots.iter().map(|t| t.id).collect();
        assert_eq!(ids, vec![8, 9, 10, 11, 12, 13, 14, 15]);
    }

    #[test]
    fn every_point_is_in_exactly_one_root_interiorwise() {
        // Points well inside faces should belong to exactly one root; points
        // on edges may belong to two (boundary inclusive).
        let p = Vec3::from_radec(45.0, 45.0);
        let n: usize = root_trixels().iter().filter(|t| t.contains(p)).count();
        assert!(n >= 1);
    }

    #[test]
    fn children_partition_parent() {
        let root = root_trixels()[7]; // N3
        let kids = root.children();
        assert_eq!(kids.len(), 4);
        // Sample points inside the parent must be inside at least one child.
        for i in 0..20 {
            for j in 0..20 {
                let ra = 0.5 + (i as f64) * 4.4;
                let dec = 0.5 + (j as f64) * 4.4;
                let p = Vec3::from_radec(ra, dec);
                if root.contains(p) {
                    assert!(
                        kids.iter().any(|k| k.contains(p)),
                        "point ({ra},{dec}) lost during subdivision"
                    );
                }
            }
        }
    }

    #[test]
    fn child_ids_are_contiguous() {
        let root = root_trixels()[0];
        let kids = root.children();
        assert_eq!(kids[0].id, 32);
        assert_eq!(kids[1].id, 33);
        assert_eq!(kids[2].id, 34);
        assert_eq!(kids[3].id, 35);
        for k in &kids {
            assert_eq!(k.depth(), 1);
            assert_eq!(parent_id(k.id), Some(root.id));
        }
    }

    #[test]
    fn depth_of_id_matches_construction() {
        let mut t = root_trixels()[4];
        for level in 1..=10u8 {
            t = t.children()[3];
            assert_eq!(depth_of_id(t.id), level);
        }
    }

    #[test]
    fn id_range_nests() {
        let root = root_trixels()[2];
        let (lo, hi) = root.id_range_at_depth(SDSS_DEPTH);
        for k in root.children() {
            let (klo, khi) = k.id_range_at_depth(SDSS_DEPTH);
            assert!(lo <= klo && khi <= hi);
        }
        assert_eq!(hi - lo, 4u64.pow(u32::from(SDSS_DEPTH)));
    }

    #[test]
    fn name_round_trip() {
        for name in ["N0", "S3", "N012", "S3210", "N3333333", "S0123012301"] {
            let id = name_to_id(name).unwrap();
            assert_eq!(id_to_name(id), name);
        }
    }

    #[test]
    fn name_errors() {
        assert_eq!(name_to_id("X0"), Err(HtmNameError::BadHemisphere('X')));
        assert_eq!(name_to_id("N"), Err(HtmNameError::TooShort));
        assert_eq!(name_to_id("N4"), Err(HtmNameError::BadDigit('4')));
        assert_eq!(name_to_id("N05"), Err(HtmNameError::BadDigit('5')));
    }

    #[test]
    fn area_decreases_by_factor_four_per_level() {
        let root = root_trixels()[5];
        let root_area = root.area_sq_deg();
        let child_area: f64 = root.children().iter().map(|c| c.area_sq_deg()).sum();
        // Children tile the parent, so their areas sum to the parent's.
        assert!((child_area - root_area).abs() / root_area < 1e-6);
    }

    #[test]
    fn bounding_radius_contains_all_vertices() {
        let t = root_trixels()[1].children()[2].children()[0];
        let c = t.center();
        let r = t.bounding_radius_deg();
        for v in &t.v {
            assert!(c.arc_angle_deg(*v) <= r + 1e-12);
        }
    }

    #[test]
    fn invalid_ids_rejected() {
        assert!(!is_valid_id(0));
        assert!(!is_valid_id(7));
        assert!(is_valid_id(8));
        assert!(is_valid_id(15));
        assert!(!is_valid_id(16)); // 5 bits: not a whole number of levels
        assert!(is_valid_id(32));
    }
}
