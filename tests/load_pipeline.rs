//! Integration test of the load pipeline (§9.4): CSV export → DTS-style
//! steps → journal → UNDO → reload, against the full schema.

use skyserver::loader::{load_csv_step, read_events, undo_step, LoadStatus};
use skyserver::schema::create_engine;
use skyserver::skygen::{export_survey, Survey, SurveyConfig};

#[test]
fn survey_load_journal_undo_and_reload() {
    let survey = Survey::generate(SurveyConfig {
        target_objects: 1200,
        ..SurveyConfig::tiny()
    })
    .unwrap();
    let mut engine = create_engine("load_test").unwrap();
    let report = skyserver::loader::load_survey(&mut engine, &survey).unwrap();
    assert!(
        report.is_clean(),
        "fk violations: {:?}",
        report.fk_violations
    );
    assert_eq!(report.events.len(), 13);

    // The loadEvents journal is queryable and complete.
    let events = read_events(engine.db()).unwrap();
    assert_eq!(events.len(), 13);
    assert!(events.iter().all(|e| e.status == LoadStatus::Success));
    let photo_event = events.iter().find(|e| e.table_name == "PhotoObj").unwrap();
    assert_eq!(
        photo_event.rows_inserted as usize,
        survey.counts().photo_obj
    );

    // UNDO one step and verify only that table shrank.
    let spec_lines_before = engine
        .query("select count(*) from SpecLine")
        .unwrap()
        .scalar()
        .unwrap()
        .as_i64()
        .unwrap();
    assert!(spec_lines_before > 0);
    let spec_event = events.iter().find(|e| e.table_name == "SpecLine").unwrap();
    let removed = undo_step(engine.db_mut(), spec_event.event_id).unwrap();
    assert_eq!(removed as u64, spec_event.rows_inserted);
    let after = engine
        .query("select count(*) from SpecLine")
        .unwrap()
        .scalar()
        .unwrap()
        .as_i64()
        .unwrap();
    assert_eq!(after, 0);
    let photo_after = engine
        .query("select count(*) from PhotoObj")
        .unwrap()
        .scalar()
        .unwrap()
        .as_i64()
        .unwrap();
    assert_eq!(photo_after as usize, survey.counts().photo_obj);

    // Re-run the failed table's load from its CSV: the operator's
    // undo → fix → re-execute loop.
    let csv = export_survey(&survey);
    let spec_line_csv = csv.iter().find(|t| t.name == "SpecLine").unwrap();
    let result = load_csv_step(engine.db_mut(), "SpecLine", &spec_line_csv.to_document()).unwrap();
    assert_eq!(result.event.status, LoadStatus::Success);
    let reloaded = engine
        .query("select count(*) from SpecLine")
        .unwrap()
        .scalar()
        .unwrap()
        .as_i64()
        .unwrap();
    assert_eq!(reloaded, spec_lines_before);
    // The journal now shows the undone step plus the new successful one.
    let events = read_events(engine.db()).unwrap();
    assert_eq!(events.len(), 14);
    assert!(events.iter().any(|e| e.status == LoadStatus::Undone));
}
