//! Integration test: the paper's headline queries behave as §11 describes
//! on a freshly built synthetic catalog.

use skyserver::{PlanClass, SkyServerBuilder};
use skyserver_queries::{astronomer_queries, run_all, twenty_queries};

#[test]
fn query1_is_an_index_lookup_join_and_q15_is_a_scan() {
    let mut sky = SkyServerBuilder::new().tiny().build().unwrap();
    let queries = twenty_queries();

    // Q1 (Figure 10): nested-loop join of the table-valued spatial function
    // with the photoObj primary key.
    let q1 = queries.iter().find(|q| q.id == "Q1").unwrap();
    let plan = sky.explain(&q1.sql).unwrap();
    assert!(
        plan.contains("TableFunction(fGetNearbyObjEq"),
        "plan:\n{plan}"
    );
    assert!(plan.contains("index lookup"), "plan:\n{plan}");
    assert_eq!(sky.plan_class(&q1.sql).unwrap(), PlanClass::IndexSeek);
    let outcome = sky.execute(&q1.sql).unwrap();
    // Small result, sorted by distance -- the 19-galaxies-in-0.19s shape.
    assert!(outcome.result.len() < 200);
    let d = outcome.result.column_values("distance");
    for w in d.windows(2) {
        assert!(w[0] <= w[1]);
    }

    // Q15A (Figure 11): a table scan over PhotoObj evaluating the velocity
    // predicate, rare candidates.
    let q15 = queries.iter().find(|q| q.id == "Q15A").unwrap();
    assert_eq!(sky.plan_class(&q15.sql).unwrap(), PlanClass::Scan);
    let outcome = sky.execute(&q15.sql).unwrap();
    let total = sky
        .query("select count(*) from PhotoObj")
        .unwrap()
        .scalar()
        .unwrap()
        .as_i64()
        .unwrap() as f64;
    let fraction = outcome.result.len() as f64 / total;
    assert!(
        fraction < 0.01,
        "asteroids are a rare population, got {fraction}"
    );
    assert!(!outcome.result.is_empty());

    // Q15B (Figure 12): the fast-mover pair query finds the planted NEO
    // pairs (the paper finds 4 pairs).
    let q15b = queries.iter().find(|q| q.id == "Q15B").unwrap();
    let outcome = sky.execute(&q15b.sql).unwrap();
    assert!(
        (1..=16).contains(&outcome.result.len()),
        "expected a handful of NEO pairs, got {}",
        outcome.result.len()
    );
}

#[test]
fn the_two_query_families_run_clean() {
    let mut sky = SkyServerBuilder::new().tiny().build().unwrap();
    let mining = run_all(&mut sky, &twenty_queries()).unwrap();
    assert_eq!(mining.len(), 21);
    let astronomer = run_all(&mut sky, &astronomer_queries()).unwrap();
    assert_eq!(astronomer.len(), 15);
    for report in mining.iter().chain(astronomer.iter()) {
        assert!(
            report.violations.is_empty(),
            "{} violated its invariants: {:?}",
            report.id,
            report.violations
        );
    }
    // The astronomer queries are "much simpler and run more quickly":
    // compare mean measured wall time.
    let mean = |rs: &[skyserver_queries::QueryReport]| {
        rs.iter().map(|r| r.wall_seconds).sum::<f64>() / rs.len() as f64
    };
    assert!(mean(&astronomer) <= mean(&mining) * 2.0);
}
