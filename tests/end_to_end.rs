//! End-to-end integration test: generate → load → query → web, the full
//! SkyServer pipeline in one flow.

use skyserver::{SkyServerBuilder, SurveyConfig};
use skyserver_web::{http_get, OutputFormat, SkyServerSite};

fn tiny_server() -> skyserver::SkyServer {
    SkyServerBuilder::new()
        .with_config(SurveyConfig {
            target_objects: 1500,
            seed: 7,
            ..SurveyConfig::tiny()
        })
        .build()
        .expect("build")
}

#[test]
fn full_pipeline_generate_load_query_web() {
    let sky = tiny_server();
    assert!(sky.load_report().is_clean());
    let counts = sky.counts().clone();

    // SQL layer agrees with the generator.
    let sky = sky;
    let photo = sky.query("select count(*) from PhotoObj").unwrap();
    assert_eq!(
        photo.scalar().unwrap().as_i64().unwrap() as usize,
        counts.photo_obj
    );

    // The three views nest: Galaxy + Star <= PhotoPrimary <= PhotoObj.
    let primary = sky.query("select count(*) from PhotoPrimary").unwrap();
    let galaxy = sky.query("select count(*) from Galaxy").unwrap();
    let star = sky.query("select count(*) from Star").unwrap();
    let p = primary.scalar().unwrap().as_i64().unwrap();
    let g = galaxy.scalar().unwrap().as_i64().unwrap();
    let s = star.scalar().unwrap().as_i64().unwrap();
    assert!(g + s <= p);
    assert!(p <= counts.photo_obj as i64);
    // ~80% primary.
    let fraction = p as f64 / counts.photo_obj as f64;
    assert!(
        (0.7..0.95).contains(&fraction),
        "primary fraction {fraction}"
    );

    // Spatial search through SQL and through the API agree.
    let via_sql = sky
        .query("select count(*) from fGetNearbyObjEq(181.0, -0.8, 10)")
        .unwrap()
        .scalar()
        .unwrap()
        .as_i64()
        .unwrap();
    let via_api = sky.nearby_objects(181.0, -0.8, 10.0).unwrap().len() as i64;
    assert_eq!(via_sql, via_api);

    // The web site serves the same database over HTTP.
    let site = SkyServerSite::new(sky);
    let server = site.serve(0).unwrap();
    let (status, body) = http_get(
        server.addr(),
        "/en/tools/search/x_sql?cmd=select+count(*)+as+n+from+PhotoObj&format=json",
    )
    .unwrap();
    assert_eq!(status, 200);
    let json: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(
        json["rows"][0][0].as_i64().unwrap() as usize,
        counts.photo_obj
    );
    // Formats round-trip over the wire.
    let (status, csv) = http_get(
        server.addr(),
        "/en/tools/search/x_sql?cmd=select+top+3+objID,ra+from+PhotoObj&format=csv",
    )
    .unwrap();
    assert_eq!(status, 200);
    assert_eq!(csv.lines().next().unwrap(), "objID,ra");
    assert_eq!(csv.lines().count(), 4);
    server.stop();
}

#[test]
fn explorer_schema_browser_and_formats_are_consistent() {
    let sky = tiny_server();
    // Schema browser metadata matches the live catalog.
    let description = sky.schema_description();
    assert!(description
        .tables
        .iter()
        .any(|t| t.name == "PhotoObj" && t.rows > 0));
    assert!(description.views.iter().any(|v| v.name == "Galaxy"));
    assert!(description
        .functions
        .iter()
        .any(|f| f.contains("fgetnearbyobjeq")));

    // The explorer returns the same attribute count as the schema.
    let photo_columns = description
        .tables
        .iter()
        .find(|t| t.name == "PhotoObj")
        .unwrap()
        .columns
        .len();
    let obj_id = sky
        .query("select top 1 objID from PhotoObj")
        .unwrap()
        .scalar()
        .unwrap()
        .as_i64()
        .unwrap();
    let summary = sky.explore(obj_id).unwrap();
    assert_eq!(summary.attributes.len(), photo_columns);

    // Every output format renders the same result without loss of rows.
    let result = sky
        .query("select top 7 objID, ra, dec from PhotoObj order by objID")
        .unwrap();
    for format in [
        OutputFormat::Csv,
        OutputFormat::Json,
        OutputFormat::Xml,
        OutputFormat::Fits,
    ] {
        let rendered = format.render(&result);
        assert!(!rendered.is_empty());
    }
    let json: serde_json::Value =
        serde_json::from_str(&OutputFormat::Json.render(&result)).unwrap();
    assert_eq!(json["rows"].as_array().unwrap().len(), 7);
}

#[test]
fn public_limits_and_errors_behave_like_the_paper_says() {
    let mut sky = tiny_server();
    // 1,000-row truncation on the public interface (§4).
    let outcome = sky.execute_public("select objID from PhotoObj").unwrap();
    assert_eq!(outcome.result.len(), 1000);
    assert!(outcome.result.truncated);
    // The private interface has no such limit.
    let outcome = sky.execute("select objID from PhotoObj").unwrap();
    assert!(outcome.result.len() > 1000);
    // Bad SQL surfaces as an error, not a panic.
    assert!(sky.execute_public("selec * from nowhere").is_err());
    assert!(sky.query("select * from noSuchTable").is_err());
}
