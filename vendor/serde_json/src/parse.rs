//! A strict recursive-descent JSON parser producing [`Value`] trees.

use crate::{Error, Map, Number, Value};

pub(crate) fn parse(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8, Error> {
        let b = self
            .peek()
            .ok_or_else(|| Error::new("unexpected end of input"))?;
        self.pos += 1;
        Ok(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        let got = self.bump()?;
        if got != b {
            return Err(Error::new(format!(
                "expected `{}`, found `{}` at offset {}",
                b as char,
                got as char,
                self.pos - 1
            )));
        }
        Ok(())
    }

    fn keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'n') => self.keyword("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error::new(format!(
                "unexpected character `{}` at offset {}",
                c as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b'}' => return Ok(Value::Object(map)),
                c => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}`, found `{}` at offset {}",
                        c as char,
                        self.pos - 1
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b']' => return Ok(Value::Array(items)),
                c => {
                    return Err(Error::new(format!(
                        "expected `,` or `]`, found `{}` at offset {}",
                        c as char,
                        self.pos - 1
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.bump()?;
            match b {
                b'"' => return Ok(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let first = self.hex4()?;
                        let code = if (0xD800..0xDC00).contains(&first) {
                            // Surrogate pair: require the low half.
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let low = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(Error::new("invalid low surrogate"));
                            }
                            0x10000 + ((first - 0xD800) << 10) + (low - 0xDC00)
                        } else {
                            first
                        };
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error::new("invalid unicode escape"))?,
                        );
                    }
                    c => return Err(Error::new(format!("invalid escape `\\{}`", c as char))),
                },
                c if c < 0x20 => return Err(Error::new("control character inside string")),
                c if c < 0x80 => out.push(c as char),
                _ => {
                    // Re-decode the multi-byte UTF-8 sequence that starts here.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|e| Error::new(e.to_string()))?;
                    let c = s.chars().next().unwrap();
                    self.pos = start + c.len_utf8();
                    out.push(c);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self.bump()? as char;
            v = v * 16
                + c.to_digit(16)
                    .ok_or_else(|| Error::new("invalid hex digit in \\u escape"))?;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::Int(i)));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::UInt(u)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::Float(f)))
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}
