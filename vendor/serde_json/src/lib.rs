//! Offline stand-in for `serde_json`.
//!
//! Implements the slice of the serde_json API this workspace uses: the
//! [`Value`] tree with indexing and `as_*` accessors, a strict JSON parser
//! ([`from_str`] / [`from_slice`]), a compact printer ([`to_string`] /
//! [`to_vec`] and `Display`), the [`json!`] macro, and [`to_value`] /
//! conversion through the stand-in `serde::Content` protocol.

use serde::{Content, Deserialize, Serialize};

mod parse;

/// JSON object representation (sorted keys, like default serde_json).
pub type Map<K, V> = std::collections::BTreeMap<K, V>;

/// A JSON number: integers are kept exact, like serde_json's `Number`.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    Int(i64),
    UInt(u64),
    Float(f64),
}

impl Number {
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::Int(i) => Some(i),
            Number::UInt(u) => i64::try_from(u).ok(),
            Number::Float(_) => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::Int(i) => u64::try_from(i).ok(),
            Number::UInt(u) => Some(u),
            Number::Float(_) => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Number::Int(i) => Some(i as f64),
            Number::UInt(u) => Some(u as f64),
            Number::Float(f) => Some(f),
        }
    }

    fn is_float(&self) -> bool {
        matches!(self, Number::Float(_))
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self.is_float(), other.is_float()) {
            // Integers compare exactly across signedness, floats bit-for-bit
            // by value; an integer never equals a float (serde_json semantics).
            (false, false) => self
                .as_i64()
                .zip(other.as_i64())
                .map(|(a, b)| a == b)
                .or_else(|| self.as_u64().zip(other.as_u64()).map(|(a, b)| a == b))
                .unwrap_or(false),
            (true, true) => self.as_f64() == other.as_f64(),
            _ => false,
        }
    }
}

impl std::fmt::Display for Number {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Number::Int(i) => write!(f, "{i}"),
            Number::UInt(u) => write!(f, "{u}"),
            Number::Float(x) if !x.is_finite() => f.write_str("null"),
            Number::Float(x) if x == x.trunc() && x.abs() < 1e15 => {
                write!(f, "{x:.1}")
            }
            Number::Float(x) => write!(f, "{x}"),
        }
    }
}

/// A parsed or constructed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map<String, Value>),
}

static NULL: Value = Value::Null;

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn is_boolean(&self) -> bool {
        matches!(self, Value::Bool(_))
    }

    pub fn is_number(&self) -> bool {
        matches!(self, Value::Number(_))
    }

    pub fn is_string(&self) -> bool {
        matches!(self, Value::String(_))
    }

    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Object-key or array-index lookup without panicking.
    pub fn get<I: Index>(&self, index: I) -> Option<&Value> {
        index.lookup(self)
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(&n.to_string()),
            Value::String(s) => write_escaped(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Object(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<i64> for Value {
    fn eq(&self, other: &i64) -> bool {
        matches!(self, Value::Number(n) if !n.is_float()) && self.as_i64() == Some(*other)
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        matches!(self, Value::Number(n) if !n.is_float()) && self.as_u64() == Some(*other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        matches!(self, Value::Number(Number::Float(f)) if f == other)
    }
}

/// Types usable with [`Value::get`] and the `value[...]` operators.
pub trait Index {
    fn lookup<'v>(&self, value: &'v Value) -> Option<&'v Value>;
}

impl Index for usize {
    fn lookup<'v>(&self, value: &'v Value) -> Option<&'v Value> {
        value.as_array().and_then(|a| a.get(*self))
    }
}

impl Index for &str {
    fn lookup<'v>(&self, value: &'v Value) -> Option<&'v Value> {
        value.as_object().and_then(|o| o.get(*self))
    }
}

impl Index for String {
    fn lookup<'v>(&self, value: &'v Value) -> Option<&'v Value> {
        value.as_object().and_then(|o| o.get(self.as_str()))
    }
}

impl<I: Index> std::ops::Index<I> for Value {
    type Output = Value;

    /// Missing keys / wrong container kinds yield `Null`, like serde_json.
    fn index(&self, index: I) -> &Value {
        index.lookup(self).unwrap_or(&NULL)
    }
}

impl Serialize for Value {
    fn to_content(&self) -> Content {
        match self {
            Value::Null => Content::Null,
            Value::Bool(b) => Content::Bool(*b),
            Value::Number(Number::Int(i)) => Content::I64(*i),
            Value::Number(Number::UInt(u)) => Content::U64(*u),
            Value::Number(Number::Float(f)) => Content::F64(*f),
            Value::String(s) => Content::Str(s.clone()),
            Value::Array(items) => Content::Seq(items.iter().map(Serialize::to_content).collect()),
            Value::Object(entries) => Content::Map(
                entries
                    .iter()
                    .map(|(k, v)| (k.clone(), v.to_content()))
                    .collect(),
            ),
        }
    }
}

impl Deserialize for Value {
    fn from_content(content: &Content) -> Result<Self, serde::DeError> {
        Ok(content_to_value(content))
    }
}

fn content_to_value(content: &Content) -> Value {
    match content {
        Content::Null => Value::Null,
        Content::Bool(b) => Value::Bool(*b),
        Content::I64(i) => Value::Number(Number::Int(*i)),
        Content::U64(u) => Value::Number(Number::UInt(*u)),
        Content::F64(f) => Value::Number(Number::Float(*f)),
        Content::Str(s) => Value::String(s.clone()),
        Content::Seq(items) => Value::Array(items.iter().map(content_to_value).collect()),
        Content::Map(entries) => Value::Object(
            entries
                .iter()
                .map(|(k, v)| (k.clone(), content_to_value(v)))
                .collect(),
        ),
    }
}

/// Errors from parsing or printing.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.to_string())
    }
}

/// Render any `Serialize` type into a [`Value`].
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    content_to_value(&value.to_content())
}

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(to_value(value).to_string())
}

/// Serialize to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Parse JSON text into any `Deserialize` type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse::parse(s)?;
    Ok(T::from_content(&value.to_content())?)
}

/// Parse JSON bytes into any `Deserialize` type.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(e.to_string()))?;
    from_str(s)
}

#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => { $crate::json_value!($($tt)+) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_value {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([]) => { $crate::Value::Array(::std::vec::Vec::new()) };
    ([ $($tt:tt)+ ]) => { $crate::Value::Array($crate::json_array!(@elems [] () $($tt)+)) };
    ({}) => { $crate::Value::Object($crate::Map::new()) };
    ({ $($tt:tt)+ }) => {{
        let mut object = $crate::Map::new();
        $crate::json_object!(@entries object $($tt)+);
        $crate::Value::Object(object)
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}

// Object body muncher: `"key": <value tts>, ...`.  The value is accumulated
// one token tree at a time until a top-level `,`; groups hide their inner
// commas, so nesting needs no depth tracking.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object {
    (@entries $obj:ident) => {};
    (@entries $obj:ident $key:literal : $($rest:tt)+) => {
        $crate::json_object!(@value $obj $key () $($rest)+)
    };
    (@value $obj:ident $key:literal ($($val:tt)+) , $($rest:tt)*) => {
        $obj.insert($key.to_string(), $crate::json_value!($($val)+));
        $crate::json_object!(@entries $obj $($rest)*)
    };
    (@value $obj:ident $key:literal ($($val:tt)*) $next:tt $($rest:tt)*) => {
        $crate::json_object!(@value $obj $key ($($val)* $next) $($rest)*)
    };
    (@value $obj:ident $key:literal ($($val:tt)+)) => {
        $obj.insert($key.to_string(), $crate::json_value!($($val)+));
    };
}

// Array body muncher, same accumulation scheme.
#[doc(hidden)]
#[macro_export]
macro_rules! json_array {
    (@elems [$($done:expr,)*] ($($val:tt)+) , $($rest:tt)*) => {
        $crate::json_array!(@elems [$($done,)* $crate::json_value!($($val)+),] () $($rest)*)
    };
    (@elems [$($done:expr,)*] ($($val:tt)*) $next:tt $($rest:tt)*) => {
        $crate::json_array!(@elems [$($done,)*] ($($val)* $next) $($rest)*)
    };
    (@elems [$($done:expr,)*] ($($val:tt)+)) => {
        vec![$($done,)* $crate::json_value!($($val)+)]
    };
    (@elems [$($done:expr,)*] ()) => {
        vec![$($done,)*]
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_shapes() {
        let v = json!({
            "name": "skyserver",
            "count": 3,
            "ratio": 0.5,
            "nested": { "ok": true, "items": [1, 2, 3] },
            "computed": 2 + 2,
            "none": null,
        });
        assert_eq!(v["name"].as_str(), Some("skyserver"));
        assert_eq!(v["count"], json!(3));
        assert_eq!(v["nested"]["items"][1].as_i64(), Some(2));
        assert_eq!(v["computed"].as_i64(), Some(4));
        assert!(v["none"].is_null());
        assert!(v["missing"].is_null());
    }

    #[test]
    fn display_round_trips_through_parser() {
        let v = json!({ "a": [1, 2.5, "x\"y", null, true], "b": { "c": -7 } });
        let text = v.to_string();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn integers_and_floats_stay_distinct() {
        assert_eq!(from_str::<Value>("1").unwrap(), json!(1));
        assert_ne!(json!(1), json!(1.0));
        assert_eq!(json!(1.0).to_string(), "1.0");
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
        assert!(from_str::<Value>("1 trailing").is_err());
    }

    #[test]
    fn escapes_round_trip() {
        let v = json!({ "s": "line\nbreak\tand \\ \"quotes\" and ünïcode ☄" });
        let back: Value = from_str(&v.to_string()).unwrap();
        assert_eq!(back, v);
        let unicode: Value = from_str(r#""☄ 😀""#).unwrap();
        assert_eq!(unicode.as_str(), Some("☄ 😀"));
    }
}
