//! Offline stand-in for `rand_chacha`.
//!
//! Only [`ChaCha8Rng`] is provided, and only the `SeedableRng::seed_from_u64`
//! construction path the workspace uses.  The implementation is a real ChaCha
//! block function with 8 rounds, so streams are deterministic, well mixed and
//! platform independent — the properties the synthetic survey generator
//! relies on (exact byte compatibility with the upstream crate is *not*
//! promised and nothing in this workspace depends on it).

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds, exposed through the `rand` traits.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    state: [u32; 16],
    buffer: [u32; 16],
    index: usize,
    counter: u64,
}

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

impl ChaCha8Rng {
    fn from_key(key: [u8; 32]) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONST);
        for (i, chunk) in key.chunks(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaCha8Rng {
            state,
            buffer: [0; 16],
            index: 16,
            counter: 0,
        }
    }

    fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(16);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(12);
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(8);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(7);
    }

    fn refill(&mut self) {
        self.state[12] = self.counter as u32;
        self.state[13] = (self.counter >> 32) as u32;
        let mut working = self.state;
        for _ in 0..4 {
            // Two ChaCha double-rounds per loop iteration → 8 rounds total.
            Self::quarter_round(&mut working, 0, 4, 8, 12);
            Self::quarter_round(&mut working, 1, 5, 9, 13);
            Self::quarter_round(&mut working, 2, 6, 10, 14);
            Self::quarter_round(&mut working, 3, 7, 11, 15);
            Self::quarter_round(&mut working, 0, 5, 10, 15);
            Self::quarter_round(&mut working, 1, 6, 11, 12);
            Self::quarter_round(&mut working, 2, 7, 8, 13);
            Self::quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, base) in working.iter_mut().zip(self.state.iter()) {
            *out = out.wrapping_add(*base);
        }
        self.buffer = working;
        self.index = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(state: u64) -> Self {
        // Expand the 64-bit seed into a 256-bit key with splitmix64, the same
        // expansion rand 0.8 uses for seed_from_u64.
        let mut sm = state;
        let mut key = [0u8; 32];
        for chunk in key.chunks_mut(8) {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            chunk.copy_from_slice(&z.to_le_bytes());
        }
        ChaCha8Rng::from_key(key)
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        if self.index + 2 > 16 {
            self.refill();
        }
        let lo = self.buffer[self.index] as u64;
        let hi = self.buffer[self.index + 1] as u64;
        self.index += 2;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        let mut c = ChaCha8Rng::seed_from_u64(2);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn uniformity_sanity() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let mean: f64 = (0..10_000).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean = {mean}");
    }
}
