//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal, API-compatible subset of `rand` 0.8: [`RngCore`], [`Rng`]
//! (`gen_range` / `gen_bool` / `gen`), and [`SeedableRng`].  The statistical
//! quality comes from the backing generator supplied by the `rand_chacha`
//! stand-in (xoshiro256**), which is more than enough for the deterministic
//! synthetic-survey generation this repository does.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seedable generators (only the `seed_from_u64` entry point is used here).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// A uniform double in `[0, 1)` built from the top 53 bits of a word.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types `Rng::gen_range` can sample uniformly.  The blanket [`SampleRange`]
/// impls below are generic over this trait so that type inference can unify
/// `Range<T> : SampleRange<T>` the way the real rand crate does.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample in `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t, inclusive: bool) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                assert!(span > 0, "gen_range: empty range");
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t, _inclusive: bool) -> $t {
                assert!(lo <= hi, "gen_range: empty range");
                lo + (hi - lo) * unit_f64(rng) as $t
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, *self.start(), *self.end(), true)
    }
}

/// Types `Rng::gen` can produce.
pub trait Standard: Sized {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn generate<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Standard for bool {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        unit_f64(rng) as f32
    }
}

/// The user-facing sampling interface.
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self) < p
    }

    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::generate(self)
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small deterministic generator (splitmix64-seeded xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            SmallRng {
                s: [
                    Self::splitmix(&mut sm),
                    Self::splitmix(&mut sm),
                    Self::splitmix(&mut sm),
                    Self::splitmix(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let i: i64 = rng.gen_range(-5i64..17);
            assert!((-5..17).contains(&i));
            let f: f64 = rng.gen_range(-0.25..0.75);
            assert!((-0.25..0.75).contains(&f));
            let u: usize = rng.gen_range(3usize..=9);
            assert!((3..=9).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits = {hits}");
    }
}
