//! Offline stand-in for `serde_derive`.
//!
//! Generates impls of the stand-in `serde::Serialize` / `serde::Deserialize`
//! traits (the `Content`-tree protocol, see the vendored `serde` crate).
//! Because `syn`/`quote` are unavailable offline, the item is parsed by
//! walking the raw token stream.  Supported shapes — which cover every
//! derive in this workspace — are:
//!
//! * structs with named fields (no generics),
//! * enums whose variants are all unit variants (serialized as the variant
//!   name, matching serde's JSON behaviour).

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Item {
    Struct { name: String, fields: Vec<String> },
    Enum { name: String, variants: Vec<String> },
}

/// Skip attributes (`# [...]`) and visibility (`pub`, `pub(...)`) tokens.
fn skip_decoration(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` then the bracketed attribute body.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_decoration(&tokens, 0);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde stand-in derive: expected struct/enum, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde stand-in derive: expected type name, found {other}"),
    };
    i += 1;
    let body = match &tokens[i] {
        TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!(
            "serde stand-in derive: {name}: generics/tuple bodies are unsupported, found {other}"
        ),
    };
    match kind.as_str() {
        "struct" => Item::Struct {
            name,
            fields: parse_struct_fields(body),
        },
        "enum" => Item::Enum {
            name,
            variants: parse_enum_variants(body),
        },
        other => panic!("serde stand-in derive: unsupported item kind {other}"),
    }
}

fn parse_struct_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_decoration(&tokens, i);
        let Some(TokenTree::Ident(field)) = tokens.get(i) else {
            break;
        };
        fields.push(field.to_string());
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde stand-in derive: expected `:` after field, found {other:?}"),
        }
        // Skip the type tokens up to the next top-level comma.  `,` inside
        // groups is invisible here because a group is one token tree.
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == ',' => {
                    i += 1;
                    break;
                }
                // A `<` opens a generic argument list the walker must not
                // mistake a nested `,` in (e.g. `BTreeMap<String, u64>`).
                TokenTree::Punct(p) if p.as_char() == '<' => {
                    let mut depth = 1usize;
                    i += 1;
                    while i < tokens.len() && depth > 0 {
                        if let TokenTree::Punct(p) = &tokens[i] {
                            match p.as_char() {
                                '<' => depth += 1,
                                '>' => depth -= 1,
                                _ => {}
                            }
                        }
                        i += 1;
                    }
                }
                _ => i += 1,
            }
        }
    }
    fields
}

fn parse_enum_variants(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_decoration(&tokens, i);
        let Some(TokenTree::Ident(variant)) = tokens.get(i) else {
            break;
        };
        variants.push(variant.to_string());
        i += 1;
        match tokens.get(i) {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(other) => panic!(
                "serde stand-in derive: only unit enum variants are supported, found {other}"
            ),
        }
    }
    variants
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::Struct { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!("(\"{f}\".to_string(), ::serde::Serialize::to_content(&self.{f})),")
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_content(&self) -> ::serde::Content {{\n\
                         ::serde::Content::Map(vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => \"{v}\","))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_content(&self) -> ::serde::Content {{\n\
                         ::serde::Content::Str(match self {{ {arms} }}.to_string())\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("serde stand-in derive: generated invalid Rust")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: match map.iter().find(|(k, _)| k == \"{f}\") {{\n\
                             Some((_, v)) => ::serde::Deserialize::from_content(v)?,\n\
                             None => return Err(::serde::DeError::custom(\n\
                                 \"missing field `{f}` of struct {name}\")),\n\
                         }},"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_content(content: &::serde::Content)\n\
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         let map = match content {{\n\
                             ::serde::Content::Map(m) => m,\n\
                             _ => return Err(::serde::DeError::custom(\n\
                                 \"expected a map for struct {name}\")),\n\
                         }};\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => Ok({name}::{v}),"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_content(content: &::serde::Content)\n\
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         let s = match content {{\n\
                             ::serde::Content::Str(s) => s.as_str(),\n\
                             _ => return Err(::serde::DeError::custom(\n\
                                 \"expected a string for enum {name}\")),\n\
                         }};\n\
                         match s {{\n\
                             {arms}\n\
                             other => Err(::serde::DeError::custom(format!(\n\
                                 \"unknown {name} variant {{other}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("serde stand-in derive: generated invalid Rust")
}
