//! Offline stand-in for `proptest`.
//!
//! Supports the subset this workspace's property tests use: the [`Strategy`]
//! trait with `prop_map` / `prop_filter`, range and tuple strategies,
//! `any::<T>()`, `Just`, `prop_oneof!`, simple character-class string
//! strategies, `proptest::collection::vec`, and the `proptest!` /
//! `prop_assert*` macros.  Cases are sampled from a seed derived from the
//! test's path, so runs are deterministic; there is **no shrinking** — a
//! failing case simply panics with the regular assert message.

use rand::{Rng, SeedableRng};

pub use rand_chacha::ChaCha8Rng as TestRng;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// FNV-1a over the test path: a stable per-test base seed.
#[doc(hidden)]
pub fn fnv(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[doc(hidden)]
pub fn new_rng(base: u64, case: u32) -> TestRng {
    TestRng::seed_from_u64(base ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

/// A source of random values of one type.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> strategy::Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        strategy::Map { inner: self, f }
    }

    fn prop_filter<F>(self, reason: &'static str, predicate: F) -> strategy::Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        strategy::Filter {
            inner: self,
            reason,
            predicate,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// A constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `any::<T>()`: the full value range of a primitive type.
pub fn any<T: Arbitrary>() -> arbitrary::Any<T> {
    arbitrary::Any(std::marker::PhantomData)
}

/// Primitive types `any::<T>()` supports.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.gen::<$t>()
            }
        }
    )*};
}

arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen::<bool>()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Mix magnitudes so both small and astronomical values appear.
        let exp = rng.gen_range(-64i32..64);
        let mantissa = rng.gen_range(-1.0f64..1.0);
        mantissa * (exp as f64).exp2()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

pub mod arbitrary {
    use super::{Arbitrary, Strategy, TestRng};

    pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod strategy {
    use super::{Strategy, TestRng};
    use rand::Rng;

    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) reason: &'static str,
        pub(crate) predicate: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.predicate)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter `{}` rejected 1000 samples in a row",
                self.reason
            );
        }
    }

    /// Uniform choice between boxed strategies (`prop_oneof!`).
    pub struct Union<V> {
        options: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// `&str` as a strategy: a character-class pattern of the shape
/// `[chars]{lo,hi}` (the only regex shape this workspace uses).  Anything
/// else falls back to short alphanumeric strings.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (chars, lo, hi) = parse_char_class(self).unwrap_or_else(|| {
            (
                ('a'..='z').chain('A'..='Z').chain('0'..='9').collect(),
                0,
                16,
            )
        });
        let len = rng.gen_range(lo..=hi);
        (0..len)
            .map(|_| chars[rng.gen_range(0..chars.len())])
            .collect()
    }
}

fn parse_char_class(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let (class, counts) = rest.split_once(']')?;
    let counts = counts.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = counts.split_once(',')?;
    let lo: usize = lo.trim().parse().ok()?;
    let hi: usize = hi.trim().parse().ok()?;
    let mut chars = Vec::new();
    let mut iter = class.chars().peekable();
    while let Some(c) = iter.next() {
        if iter.peek() == Some(&'-') {
            let mut look = iter.clone();
            look.next();
            if let Some(&end) = look.peek() {
                // `a-z` style range; a trailing `-` stays literal.
                iter.next();
                iter.next();
                for v in (c as u32)..=(end as u32) {
                    if let Some(ch) = char::from_u32(v) {
                        chars.push(ch);
                    }
                }
                continue;
            }
        }
        chars.push(c);
    }
    if chars.is_empty() || lo > hi {
        return None;
    }
    Some((chars, lo, hi))
}

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($s)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// The test-definition macro.  Each `fn name(pat in strategy, ...) { body }`
/// becomes a plain `#[test]` fn running `config.cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let base = $crate::fnv(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let mut rng = $crate::new_rng(base, case);
                $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Tuple + range strategies stay in bounds.
        #[test]
        fn ranges_in_bounds((a, b) in (0i64..10, -1.0..1.0f64), n in 1usize..5) {
            prop_assert!((0..10).contains(&a));
            prop_assert!((-1.0..1.0).contains(&b));
            prop_assert!((1..5).contains(&n));
        }

        /// collection::vec respects the length range.
        #[test]
        fn vec_lengths(v in crate::collection::vec(any::<u8>(), 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
        }

        /// Character-class string strategies match their class.
        #[test]
        fn string_class(s in "[a-c]{1,4}") {
            prop_assert!((1..=4).contains(&s.len()), "len {}", s.len());
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        /// prop_oneof + Just + prop_map compose.
        #[test]
        fn oneof_composes(x in prop_oneof![Just(1i64), 10i64..20, Just(5i64).prop_map(|v| v * 2)]) {
            prop_assert!(x == 1 || x == 10 || (10..20).contains(&x));
        }
    }
}
