//! Offline stand-in for `serde`.
//!
//! The real serde models serialization as a visitor protocol between a
//! `Serializer` and the data type.  This workspace only ever serializes to
//! and from JSON (via the vendored `serde_json` stand-in), so the stand-in
//! collapses the protocol into one self-describing value tree, [`Content`]:
//! `Serialize` renders a type into a `Content`, `Deserialize` rebuilds the
//! type from one.  The derive macros (re-exported from the vendored
//! `serde_derive`) generate those two impls for named-field structs and
//! unit-variant enums — exactly the shapes this repository derives.

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing value tree, the interchange format between `Serialize`,
/// `Deserialize` and the `serde_json` stand-in.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    /// Field order is preserved, like a struct's declaration order.
    Map(Vec<(String, Content)>),
}

/// Error produced when rebuilding a type from a [`Content`] tree.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(String);

impl DeError {
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into a [`Content`] tree.
pub trait Serialize {
    fn to_content(&self) -> Content;
}

/// Types that can be rebuilt from a [`Content`] tree.
pub trait Deserialize: Sized {
    fn from_content(content: &Content) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

macro_rules! serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
    )*};
}

serialize_signed!(i8, i16, i32, i64, isize);

macro_rules! serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
    )*};
}

serialize_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl Serialize for std::sync::Arc<str> {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

macro_rules! tuple_impls {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
    )*};
}

tuple_impls! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

macro_rules! deserialize_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let wide: i128 = match content {
                    Content::I64(i) => i128::from(*i),
                    Content::U64(u) => i128::from(*u),
                    other => {
                        return Err(DeError::custom(format!(
                            "expected integer, found {other:?}"
                        )))
                    }
                };
                <$t>::try_from(wide).map_err(|_| {
                    DeError::custom(format!(
                        "integer {wide} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

deserialize_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Deserialize for f64 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::F64(f) => Ok(*f),
            Content::I64(i) => Ok(*i as f64),
            Content::U64(u) => Ok(*u as f64),
            other => Err(DeError::custom(format!("expected number, found {other:?}"))),
        }
    }
}

impl Deserialize for f32 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        f64::from_content(content).map(|f| f as f32)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!("expected string, found {other:?}"))),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(DeError::custom(format!("expected array, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(42i64.to_content(), Content::I64(42));
        assert_eq!(i64::from_content(&Content::I64(42)).unwrap(), 42);
        assert_eq!(u32::from_content(&Content::U64(7)).unwrap(), 7);
        assert!(u8::from_content(&Content::I64(-1)).is_err());
        assert_eq!(
            Option::<String>::from_content(&Content::Null).unwrap(),
            None
        );
        assert_eq!(
            Vec::<i64>::from_content(&Content::Seq(vec![Content::I64(1), Content::U64(2)]))
                .unwrap(),
            vec![1, 2]
        );
    }
}
