//! Offline stand-in for `criterion`.
//!
//! Exposes the definition API the workspace's benches use — [`Criterion`],
//! `bench_function`, `benchmark_group` / `sample_size` / `finish`,
//! [`black_box`], `criterion_group!`, `criterion_main!` — backed by a simple
//! timing loop: each benchmark is warmed up briefly, then timed over a fixed
//! number of samples, and the per-iteration mean / min / max are printed.
//! There is no statistical analysis, HTML report or comparison baseline.

use std::time::{Duration, Instant};

/// Re-export of the standard optimization barrier.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: 30,
        }
    }

    /// Accepted for API compatibility; command-line options are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_bench(&full, self.sample_size, &mut f);
        self
    }

    pub fn finish(self) {}
}

/// Passed to the benchmark closure; `iter` times one sample.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, samples: usize, f: &mut F) {
    // Calibrate: find an iteration count that takes ≳1 ms per sample, so
    // sub-microsecond benchmarks still measure something.
    let mut iterations = 1u64;
    loop {
        let mut b = Bencher {
            iterations,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(1) || iterations >= 1 << 20 {
            break;
        }
        iterations *= 4;
    }
    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iterations,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter.push(b.elapsed.as_secs_f64() / iterations as f64);
    }
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let min = per_iter.iter().copied().fold(f64::INFINITY, f64::min);
    let max = per_iter.iter().copied().fold(0.0f64, f64::max);
    println!(
        "{name:<40} mean {:>12}  min {:>12}  max {:>12}  ({} samples x {} iters)",
        format_time(mean),
        format_time(min),
        format_time(max),
        per_iter.len(),
        iterations
    );
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn harness_runs_a_bench() {
        let mut c = Criterion::default();
        sample_bench(&mut c);
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function("inner", |b| b.iter(|| black_box(2 * 2)));
        group.finish();
    }
}
