//! The asteroid hunt of §11: run the paper's Query 15 (slow movers) and the
//! modified fast-mover query (Figures 11 and 12), show their plans, and look
//! at the discovered objects through the explorer.
//!
//! Run with: `cargo run --release --example asteroid_hunt`

use skyserver::SkyServerBuilder;

const SLOW_MOVERS: &str =
    "select objID, sqrt(rowv*rowv + colv*colv) as velocity, dbo.fGetUrlExpId(objID) as Url
     into ##results
     from PhotoObj
     where (rowv*rowv + colv*colv) between 50 and 1000 and rowv >= 0 and colv >= 0";

const FAST_MOVERS: &str = "select r.objID as rId, g.objId as gId
     from PhotoObj r, PhotoObj g
     where r.run = g.run and r.camcol = g.camcol
       and abs(g.field - r.field) <= 1 and r.objID <> g.objID
       and ((power(r.q_r,2) + power(r.u_r,2)) > 0.111111)
       and r.fiberMag_r between 6 and 22
       and r.fiberMag_r < r.fiberMag_u and r.fiberMag_r < r.fiberMag_g
       and r.fiberMag_r < r.fiberMag_i and r.fiberMag_r < r.fiberMag_z
       and r.parentID = 0 and r.isoA_r / r.isoB_r > 1.5 and r.isoA_r > 2.0
       and ((power(g.q_g,2) + power(g.u_g,2)) > 0.111111)
       and g.fiberMag_g between 6 and 22
       and g.fiberMag_g < g.fiberMag_u and g.fiberMag_g < g.fiberMag_r
       and g.fiberMag_g < g.fiberMag_i and g.fiberMag_g < g.fiberMag_z
       and g.parentID = 0 and g.isoA_g / g.isoB_g > 1.5 and g.isoA_g > 2.0
       and sqrt(power(r.cx - g.cx, 2) + power(r.cy - g.cy, 2) + power(r.cz - g.cz, 2)) * (180 * 60 / pi()) < 4.0
       and abs(r.fiberMag_r - g.fiberMag_g) < 2.0";

fn main() {
    let mut sky = SkyServerBuilder::new()
        .tiny()
        .build()
        .expect("build SkyServer");

    println!("== Query 15: slow-moving asteroids (Figure 11) ==");
    println!("{}", sky.explain(SLOW_MOVERS).expect("plan"));
    let outcome = sky.execute(SLOW_MOVERS).expect("query 15 runs");
    println!(
        "found {} slow movers in {:.3}s (the paper finds 1,303 in 14M objects)",
        outcome.result.len(),
        outcome.stats.wall_seconds
    );
    for row in outcome.result.rows.iter().take(5) {
        println!("  objID {}  velocity {:.2}  {}", row[0], row[1], row[2]);
    }

    println!("\n== Modified Query 15: fast-moving near-earth objects (Figure 12) ==");
    println!("{}", sky.explain(FAST_MOVERS).expect("plan"));
    let fast = sky.execute(FAST_MOVERS).expect("fast mover query runs");
    println!(
        "found {} candidate pairs in {:.3}s (the paper finds 4 pairs, 3 of them genuine NEOs)",
        fast.result.len(),
        fast.stats.wall_seconds
    );

    // Drill into the first discovery like the web explorer would.
    if let Some(first) = outcome.result.rows.first() {
        let obj_id = first[0].as_i64().unwrap_or(0);
        let summary = sky.explore(obj_id).expect("explore runs");
        println!(
            "\nExplorer view of objID {obj_id}: type {} at ({:.4}, {:.4}), {} neighbours, spectrum: {}",
            summary.obj_type,
            summary.ra,
            summary.dec,
            summary.neighbors.len(),
            summary.spectrum.is_some()
        );
        println!("  {}", summary.url);
    }
}
