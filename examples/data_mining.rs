//! Data mining the SkyServer: run the paper's 20 astronomy queries (plus the
//! 15 astronomer queries) and print the Figure 13 style timing table.
//!
//! Run with: `cargo run --release --example data_mining`

use skyserver::SkyServerBuilder;
use skyserver_queries::{all_queries, render_figure13, run_all};

fn main() {
    println!("Building the synthetic SkyServer (this generates and loads the catalog)...");
    let mut sky = SkyServerBuilder::new()
        .tiny()
        .build()
        .expect("build SkyServer");
    println!(
        "{} photo objects loaded; projecting timings to the paper's 14M-object scale (x{:.0}).\n",
        sky.counts().photo_obj,
        sky.paper_scale_factor()
    );

    // Show the plan of the paper's Query 1 (Figure 10).
    let queries = all_queries();
    let q1 = queries.iter().find(|q| q.id == "Q1").expect("Q1 exists");
    println!(
        "Query 1 ({}):\n{}",
        q1.title,
        sky.explain(&q1.sql).expect("plan")
    );

    // Run everything and print the Figure 13 table.
    println!("Running all {} queries...", queries.len());
    let reports = run_all(&mut sky, &queries).expect("queries run");
    println!("\n{}", render_figure13(&reports));

    // Summarise by plan class, the way the paper's discussion does.
    for class in ["index", "scan", "join-scan", "function"] {
        let of_class: Vec<_> = reports
            .iter()
            .filter(|r| r.plan_class.to_string() == class)
            .collect();
        if of_class.is_empty() {
            continue;
        }
        let mean_elapsed: f64 = of_class
            .iter()
            .map(|r| r.paper_elapsed_seconds)
            .sum::<f64>()
            / of_class.len() as f64;
        println!(
            "{:<10} {:>2} queries, mean projected elapsed {:.1}s",
            class,
            of_class.len(),
            mean_elapsed
        );
    }
}
