//! The education project of §6: "discover" the expanding universe by making
//! a Hubble diagram — the magnitude (a distance proxy) of galaxies against
//! their spectroscopic redshift, like the student plot in Figure 4.
//!
//! Run with: `cargo run --release --example hubble_diagram`

use skyserver::SkyServerBuilder;

fn main() {
    let sky = SkyServerBuilder::new()
        .tiny()
        .build()
        .expect("build SkyServer");

    // The classroom query: galaxies with measured spectra, their apparent
    // magnitude and redshift.
    let result = sky
        .query(
            "select P.modelMag_r as magnitude, S.z as redshift
             from Galaxy P
             join SpecObj S on S.objID = P.objID
             where S.specClass = 2 and S.z > 0.003
             order by S.z",
        )
        .expect("query runs");
    println!(
        "{} galaxies with spectra. A student's Hubble diagram (redshift vs magnitude):\n",
        result.len()
    );

    // Bin by redshift and print an ASCII scatter: fainter (more distant)
    // galaxies should sit at higher redshift.
    let mut bins: Vec<(f64, Vec<f64>)> =
        (0..10).map(|i| (0.05 * f64::from(i), Vec::new())).collect();
    for row in &result.rows {
        let mag = row[0].as_f64().unwrap_or(0.0);
        let z = row[1].as_f64().unwrap_or(0.0);
        let bin = ((z / 0.05) as usize).min(9);
        bins[bin].1.push(mag);
    }
    println!("redshift   mean r magnitude   (each * = one galaxy)");
    for (z_lo, mags) in &bins {
        if mags.is_empty() {
            continue;
        }
        let mean = mags.iter().sum::<f64>() / mags.len() as f64;
        println!(
            "{:>5.2}-{:<5.2} {:>8.2}            {}",
            z_lo,
            z_lo + 0.05,
            mean,
            "*".repeat(mags.len().min(60))
        );
    }

    // The "discovery": the correlation between distance (magnitude) and
    // recession (redshift).
    let pairs: Vec<(f64, f64)> = result
        .rows
        .iter()
        .map(|r| (r[0].as_f64().unwrap_or(0.0), r[1].as_f64().unwrap_or(0.0)))
        .collect();
    if pairs.len() > 2 {
        let n = pairs.len() as f64;
        let (mx, my) = (
            pairs.iter().map(|p| p.0).sum::<f64>() / n,
            pairs.iter().map(|p| p.1).sum::<f64>() / n,
        );
        let cov = pairs.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum::<f64>();
        let vx = pairs.iter().map(|p| (p.0 - mx).powi(2)).sum::<f64>();
        let vy = pairs.iter().map(|p| (p.1 - my).powi(2)).sum::<f64>();
        let r = cov / (vx.sqrt() * vy.sqrt()).max(1e-12);
        println!(
            "\nCorrelation between magnitude and redshift: r = {r:.2} (positive: fainter galaxies recede faster — the expanding universe)"
        );
    }
}
