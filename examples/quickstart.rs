//! Quickstart: build a synthetic SkyServer and ask it the questions the
//! paper's introduction promises ("find gravitational lens candidates",
//! "find other objects like this one").
//!
//! Run with: `cargo run --release --example quickstart`

use skyserver::SkyServerBuilder;

fn main() {
    // Build a small survey (a few thousand objects) so the example runs in
    // seconds.  Use `SkyServerBuilder::new().build()` for the Personal
    // SkyServer scale (~60k objects).
    println!("Generating and loading a synthetic Sloan survey...");
    let sky = SkyServerBuilder::new()
        .tiny()
        .build()
        .expect("build SkyServer");
    let report = sky.load_report();
    println!(
        "Loaded {} rows ({} tables) in {:.2}s; {} neighbour pairs precomputed.\n",
        report.total_rows,
        report.events.len(),
        report.wall_seconds,
        report.neighbors.pairs
    );

    // How big is the catalog? (the live version of the paper's Table 1)
    println!("Largest tables:");
    let mut summaries = sky.table_summaries();
    summaries.sort_by_key(|s| std::cmp::Reverse(s.rows));
    for s in summaries.iter().take(5) {
        println!(
            "  {:<14} {:>8} rows  {:>10} bytes",
            s.name, s.rows, s.data_bytes
        );
    }

    // A simple SQL question: the brightest galaxies.
    let bright = sky
        .query("select top 5 objID, ra, dec, modelMag_r from Galaxy order by modelMag_r")
        .expect("query runs");
    println!("\nThe five brightest galaxies:");
    println!("{}", bright.to_grid());

    // A spatial question: what is near the first of them?
    let (ra, dec) = (
        bright
            .cell(0, "ra")
            .and_then(|v| v.as_f64())
            .unwrap_or(181.0),
        bright
            .cell(0, "dec")
            .and_then(|v| v.as_f64())
            .unwrap_or(-0.8),
    );
    let nearby = sky
        .nearby_objects(ra, dec, 2.0)
        .expect("spatial query runs");
    println!(
        "Objects within 2 arcminutes of ({ra:.4}, {dec:.4}): {}",
        nearby.len()
    );

    // And the public interface: the same query under the 1,000-row limit.
    let public = sky
        .execute_public("select objID from PhotoObj")
        .expect("public query runs");
    println!(
        "\nPublic interface returned {} rows (truncated = {}), as §4 of the paper requires.",
        public.result.len(),
        public.result.truncated
    );
}
