//! The "Personal SkyServer" of §10: a laptop-scale copy of the database plus
//! the web site, served over HTTP on localhost so a classroom (or a single
//! student) has their own SkyServer.
//!
//! Run with: `cargo run --release --example personal_skyserver`
//!
//! Then try, in another terminal:
//!   curl 'http://127.0.0.1:8642/en/tools/search/x_sql?cmd=select+top+5+objID,ra,dec+from+Galaxy&format=csv'
//!   curl 'http://127.0.0.1:8642/en/tools/navi?ra=181&dec=-0.8&zoom=2'

use skyserver::SkyServerBuilder;
use skyserver_web::{analyze_traffic, http_get, SkyServerSite, TrafficConfig};

fn main() {
    println!("Building the Personal SkyServer (1%-scale survey)...");
    let sky = SkyServerBuilder::new()
        .tiny()
        .build()
        .expect("build SkyServer");
    println!(
        "{} objects, {} spectra loaded.",
        sky.counts().photo_obj,
        sky.counts().spec_obj
    );

    let site = SkyServerSite::new(sky);
    let server = site
        .serve(8642)
        .or_else(|_| site.serve(0))
        .expect("bind a port");
    println!(
        "SkyServer web interface listening on http://{}/",
        server.addr()
    );

    // Exercise the site the way a visitor would (this doubles as a smoke
    // test when the example runs unattended).
    for path in [
        "/en/",
        "/en/tools/places",
        "/en/tools/navi?ra=181&dec=-0.8&zoom=1",
        "/en/tools/search/x_sql?cmd=select+count(*)+as+n+from+PhotoObj&format=json",
        "/skyserverqa/metadata",
    ] {
        let (status, body) = http_get(server.addr(), path).expect("request succeeds");
        println!("GET {path:<60} -> {status} ({} bytes)", body.len());
    }

    // Show what the site's own request log looks like through the Figure 5
    // analyser (a real deployment would accumulate this over months).
    let config = TrafficConfig {
        days: 1,
        ..TrafficConfig::default()
    };
    let report = analyze_traffic(&site.request_log(), &config);
    println!(
        "\nRequest log so far: {} hits across {} sections today.",
        report.total_hits, 5
    );

    // Keep serving if the operator asked for it.
    if std::env::args().any(|a| a == "--serve") {
        println!("Serving until Ctrl-C (pass no flag to exit immediately).");
        loop {
            std::thread::sleep(std::time::Duration::from_secs(60));
        }
    }
    server.stop();
    println!("Done.");
}
